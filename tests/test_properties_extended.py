"""Extended property-based tests over the newer subsystems.

Covers: class-collapsed reduction, manual redundancy pruning, the
forward/reverse automaton pair, predicated queries, modulo-schedule
expansion, and MDL round-trips of reduced machines.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import mdl
from repro.analysis import manually_optimize
from repro.automata import PairedAutomatonQueryModule
from repro.core import (
    MachineDescription,
    matrices_equal,
    reduce_machine,
    schedule_is_contention_free,
)
from repro.query import DiscreteQueryModule
from repro.query.predicated import (
    TRUE,
    PredicatedDiscreteQueryModule,
    PredicateSpace,
)

RESOURCES = ["r0", "r1", "r2"]
OPS = ["opA", "opB", "opC"]


@st.composite
def machines(draw):
    num_ops = draw(st.integers(1, 3))
    operations = {}
    for index in range(num_ops):
        usages = {}
        for _ in range(draw(st.integers(0, 4))):
            resource = draw(st.sampled_from(RESOURCES))
            cycle = draw(st.integers(0, 5))
            usages.setdefault(resource, set()).add(cycle)
        operations[OPS[index]] = usages
    machine = MachineDescription("random", operations)
    if all(machine.table(op).is_empty for op in machine.operation_names):
        machine = MachineDescription("random", {"opA": {"r0": [0]}})
    return machine


@given(machines())
@settings(max_examples=50, deadline=None)
def test_class_collapsed_reduction_is_exact(machine):
    reduction = reduce_machine(machine, collapse_classes=True)
    assert matrices_equal(machine, reduction.reduced)


@given(machines())
@settings(max_examples=50, deadline=None)
def test_manual_pruning_is_exact(machine):
    """Row pruning is always exact and never keeps a removed row.

    (The full reduction usually also dominates the pruned machine in
    usage count — asserted for the study machines in test_analysis —
    but NOT universally: hypothesis found 7-usage machines whose greedy
    cover takes 8 usages, so no dominance claim here.)
    """
    pruned, removed = manually_optimize(machine)
    assert matrices_equal(machine, pruned)
    assert set(removed).isdisjoint(pruned.resources)
    full = reduce_machine(machine).reduced
    assert matrices_equal(machine, full)


@given(machines(), st.integers(0, 2**32))
@settings(max_examples=25, deadline=None)
def test_paired_automata_match_oracle(machine, seed):
    from hypothesis import assume

    from repro.automata import AutomatonTooLarge

    rng = random.Random(seed)
    try:
        # Reject the (documented) exponential-state machines rather
        # than fail on a size limitation.
        paired = PairedAutomatonQueryModule(machine, max_states=20_000)
    except AutomatonTooLarge:
        assume(False)
    placed = []
    for _step in range(7):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 9)
        expected = schedule_is_contention_free(
            machine, placed + [(op, cycle)]
        )
        assert paired.check(op, cycle) == expected
        if expected:
            paired.assign(op, cycle)
            placed.append((op, cycle))


@given(machines(), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_predicated_module_with_true_equals_plain(machine, seed):
    """Under the always-true predicate the predicated module must behave
    exactly like the plain discrete module."""
    rng = random.Random(seed)
    plain = DiscreteQueryModule(machine)
    predicated = PredicatedDiscreteQueryModule(machine)
    for _step in range(8):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 9)
        a = plain.check(op, cycle)
        b = predicated.check(op, cycle, predicate=TRUE)
        assert a == b
        if a:
            plain.assign(op, cycle)
            predicated.assign(op, cycle, predicate=TRUE)


@given(machines(), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_disjoint_predicates_never_conflict(machine, seed):
    """Two copies of the *same schedule* under complementary predicates
    always coexist."""
    rng = random.Random(seed)
    space = PredicateSpace()
    not_p = space.complement("p")
    module = PredicatedDiscreteQueryModule(machine, predicates=space)
    placed = []
    for _step in range(6):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 8)
        if schedule_is_contention_free(machine, placed + [(op, cycle)]):
            module.assign(op, cycle, predicate="p")
            placed.append((op, cycle))
    for op, cycle in placed:
        assert module.check(op, cycle, predicate=not_p)


@given(st.integers(0, 5_000), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_generated_loops_expand_conflict_free(seed, iterations):
    from repro.machines import cydra5_subset
    from repro.scheduler import IterativeModuloScheduler, expand
    from repro.workloads import generate_loop

    scheduler = IterativeModuloScheduler(cydra5_subset())
    result = scheduler.schedule(generate_loop(seed))
    expanded = expand(result, iterations=iterations)
    assert len(expanded.placements) == iterations * result.num_operations


@given(machines())
@settings(max_examples=40, deadline=None)
def test_reduced_machines_round_trip_mdl(machine):
    reduced = reduce_machine(machine).reduced
    again = mdl.loads(mdl.dumps(reduced))
    assert again == reduced
    assert matrices_equal(machine, again)


@given(machines(), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_legal_schedules_simulate_cleanly(machine, seed):
    """Any contention-free placement set simulates with zero stalls and
    zero corruption events — the simulator agrees with the oracle."""
    from repro.simulate import simulate

    rng = random.Random(seed)
    placed = []
    for _step in range(6):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 10)
        if schedule_is_contention_free(machine, placed + [(op, cycle)]):
            placed.append((op, cycle))
    assert simulate(machine, placed).clean
    assert simulate(machine, placed, interlock=False).clean


@given(machines(), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_interlocked_simulation_always_resolves(machine, seed):
    """Whatever (possibly conflicting) placements are fed in, the
    interlocked simulator produces a final issue assignment that is
    itself contention-free."""
    from repro.simulate import simulate

    rng = random.Random(seed)
    placements = [
        (rng.choice(machine.operation_names), rng.randint(0, 6))
        for _ in range(6)
    ]
    report = simulate(machine, placements)
    final = [
        (placements[index][0], cycle)
        for index, cycle in report.issue_cycles.items()
    ]
    assert schedule_is_contention_free(machine, final)


@given(machines(), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_snapshot_restore_round_trip(machine, seed):
    """restore(snapshot()) is an identity on observable query behaviour."""
    rng = random.Random(seed)
    module = DiscreteQueryModule(machine)
    for _step in range(4):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 6)
        if module.check(op, cycle):
            module.assign(op, cycle)
    checkpoint = module.snapshot()
    before = [
        module.check(op, c)
        for op in machine.operation_names
        for c in range(8)
    ]
    for _step in range(4):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 6)
        if module.check(op, cycle):
            module.assign(op, cycle)
    module.restore(checkpoint)
    after = [
        module.check(op, c)
        for op in machine.operation_names
        for c in range(8)
    ]
    assert before == after
