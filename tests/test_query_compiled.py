"""The compiled query module: equivalence, kernels, and accounting.

The compiled representation answers every query with packed big-int
masks and precompiled pairwise collision bitsets; these tests pin it to
the discrete representation (the reference interpreter of reservation
tables) over random machines and random call sequences — including
negative cycles, modulo wrap-around, backtracking via ``assign_free``,
and both batched-scan directions — and to the scheduler trajectories the
other backends produce.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MachineDescription, reduce_machine
from repro.errors import QueryError
from repro.machines import (
    STUDY_MACHINES,
    alternatives_machine,
    dense_conflict_machine,
    example_machine,
)
from repro.query import (
    CHECK_RANGE,
    COMPILE,
    COMPILED,
    CompiledQueryModule,
    DiscreteQueryModule,
    REPRESENTATIONS,
    clear_kernel_cache,
    compiled_kernel,
    make_query_module,
)
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import loop_suite

RESOURCES = ["r0", "r1", "r2"]
OPS = ["opA", "opB"]


@st.composite
def machines(draw):
    """Small random machines: 1-2 ops over 1-3 resources, cycles 0-5."""
    operations = {}
    for index in range(draw(st.integers(1, 2))):
        usages = {}
        for _ in range(draw(st.integers(0, 4))):
            usages.setdefault(
                draw(st.sampled_from(RESOURCES)), set()
            ).add(draw(st.integers(0, 5)))
        operations[OPS[index]] = usages
    return MachineDescription("random", operations)


@st.composite
def call_sequences(draw):
    """Random basic-function sequences driving both representations."""
    sequence = []
    for _ in range(draw(st.integers(1, 25))):
        kind = draw(
            st.sampled_from(
                ("check", "assign", "assign_free", "free", "range", "first")
            )
        )
        cycle = draw(st.integers(-6, 20))
        width = draw(st.integers(0, 12))
        direction = draw(st.sampled_from((1, -1)))
        sequence.append((kind, cycle, width, direction))
    return sequence


def _drive(machine, module, reference, sequence, use_assign_free):
    """Run one call sequence against both modules, asserting agreement."""
    ops = machine.operation_names
    mine, theirs = [], []
    for index, (kind, cycle, width, direction) in enumerate(sequence):
        op = ops[index % len(ops)]
        if kind == "check":
            assert module.check(op, cycle) == reference.check(op, cycle)
        elif kind == "range":
            assert module.check_range(op, cycle, cycle + width) == (
                reference.check_range(op, cycle, cycle + width)
            )
        elif kind == "first":
            assert module.first_free(
                op, cycle, cycle + width, direction
            ) == reference.first_free(op, cycle, cycle + width, direction)
        elif kind == "free" and mine:
            module.free(mine.pop())
            reference.free(theirs.pop())
        elif kind in ("assign", "assign_free"):
            # One placement model per partial schedule (mixing raises).
            if use_assign_free:
                token, evicted = module.assign_free(op, cycle)
                ref_token, ref_evicted = reference.assign_free(op, cycle)
                assert [(t.op, t.cycle) for t in evicted] == (
                    [(t.op, t.cycle) for t in ref_evicted]
                )
                gone = {t.ident for t in evicted}
                mine[:] = [t for t in mine if t.ident not in gone]
                theirs[:] = [
                    t for t in theirs
                    if t.ident not in {x.ident for x in ref_evicted}
                ]
                mine.append(token)
                theirs.append(ref_token)
            elif module.check(op, cycle):
                mine.append(module.assign(op, cycle))
                theirs.append(reference.assign(op, cycle))


class TestPropertyEquivalence:
    @given(machines(), call_sequences(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_scalar_sequences_match_discrete(
        self, machine, sequence, use_assign_free
    ):
        _drive(
            machine,
            CompiledQueryModule(machine),
            DiscreteQueryModule(machine),
            sequence,
            use_assign_free,
        )

    @given(
        machines(), call_sequences(), st.integers(1, 9), st.booleans()
    )
    @settings(max_examples=60, deadline=None)
    def test_modulo_sequences_match_discrete(
        self, machine, sequence, ii, use_assign_free
    ):
        _drive(
            machine,
            CompiledQueryModule(machine, modulo=ii),
            DiscreteQueryModule(machine, modulo=ii),
            sequence,
            use_assign_free,
        )


class TestBuiltinMachines:
    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_probe_sweep_matches_discrete(self, name):
        machine = STUDY_MACHINES[name]()
        rng = random.Random(hash(name) & 0xFFFF)
        for modulo in (None, 3, 7):
            compiled = CompiledQueryModule(machine, modulo=modulo)
            discrete = DiscreteQueryModule(machine, modulo=modulo)
            placed = 0
            for _step in range(120):
                op = rng.choice(machine.operation_names)
                cycle = rng.randint(-4, 30)
                free = discrete.check(op, cycle)
                assert compiled.check(op, cycle) == free
                if free and placed < 25 and rng.random() < 0.5:
                    compiled.assign(op, cycle)
                    discrete.assign(op, cycle)
                    placed += 1
                start = rng.randint(-4, 25)
                stop = start + rng.randint(0, 14)
                assert compiled.check_range(op, start, stop) == (
                    discrete.check_range(op, start, stop)
                )
                for direction in (1, -1):
                    assert compiled.first_free(
                        op, start, stop, direction
                    ) == discrete.first_free(op, start, stop, direction)

    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_reduced_machine_agrees(self, name):
        """Original + reduced answer identically through the kernels."""
        machine = STUDY_MACHINES[name]()
        reduced = reduce_machine(machine).reduced
        original = CompiledQueryModule(machine)
        compact = CompiledQueryModule(reduced)
        rng = random.Random(7)
        for _step in range(80):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(-3, 20)
            if original.check(op, cycle):
                original.assign(op, cycle)
                compact.assign(op, cycle)
            start, stop = cycle, cycle + rng.randint(0, 10)
            assert original.check_range(op, start, stop) == (
                compact.check_range(op, start, stop)
            )


class TestSchedulerTrajectories:
    @pytest.mark.parametrize("machine_name", ("example", "cydra5-subset"))
    def test_ims_matches_discrete(self, machine_name):
        machine = (
            example_machine()
            if machine_name == "example"
            else STUDY_MACHINES[machine_name]()
        )
        suite = [
            graph for graph in loop_suite(4)
            if all(
                op in machine or machine.alternatives
                for op in graph.opcodes()
            )
        ]
        for graph in suite:
            results = {}
            for representation in ("discrete", "compiled"):
                scheduler = IterativeModuloScheduler(
                    machine, representation=representation
                )
                try:
                    result = scheduler.schedule(graph)
                except Exception:
                    results[representation] = None
                    continue
                results[representation] = (result.ii, result.times)
            assert results["discrete"] == results["compiled"]

    def test_lifetime_policy_matches_discrete(self):
        machine = example_machine()
        graphs = loop_suite(4)
        for graph in graphs:
            if not all(op in machine for op in graph.opcodes()):
                continue
            outcomes = {}
            for representation in ("discrete", "compiled"):
                scheduler = IterativeModuloScheduler(
                    machine,
                    representation=representation,
                    placement_policy="lifetime",
                )
                result = scheduler.schedule(graph)
                outcomes[representation] = (result.ii, result.times)
            assert outcomes["discrete"] == outcomes["compiled"]

    def test_alternatives_choices_match_discrete(self):
        machine = alternatives_machine()
        for graph in loop_suite(4):
            if not all(
                any(
                    group_op == op
                    for group in machine.alternatives.values()
                    for group_op in group
                )
                or op in machine
                for op in graph.opcodes()
            ):
                continue
            chosen = {}
            for representation in ("discrete", "compiled"):
                scheduler = IterativeModuloScheduler(
                    machine, representation=representation
                )
                result = scheduler.schedule(graph)
                chosen[representation] = (
                    result.ii, result.times, result.chosen_opcodes
                )
            assert chosen["discrete"] == chosen["compiled"]


class TestKernelAndAccounting:
    def test_factory_builds_compiled(self):
        assert COMPILED in REPRESENTATIONS
        module = make_query_module(example_machine(), COMPILED, modulo=4)
        assert isinstance(module, CompiledQueryModule)
        assert module.modulo == 4

    def test_kernel_is_memoized_per_machine(self):
        clear_kernel_cache()
        machine = example_machine()
        first = compiled_kernel(machine)
        second = compiled_kernel(example_machine())
        assert first is second

    def test_compile_charge_is_cache_warmth_independent(self):
        """Bench determinism: memo hits charge the same compile units."""
        clear_kernel_cache()
        machine = dense_conflict_machine()
        cold = CompiledQueryModule(machine)
        warm = CompiledQueryModule(machine)
        assert cold.work.units[COMPILE] == warm.work.units[COMPILE]
        assert cold.work.calls[COMPILE] == warm.work.calls[COMPILE] == 1

    def test_batched_scan_charges_check_range(self):
        machine = example_machine()
        module = CompiledQueryModule(machine)
        op = machine.operation_names[0]
        module.first_free(op, 0, 10)
        module.check_range(op, 0, 10)
        assert module.work.calls[CHECK_RANGE] == 2
        assert module.work.calls["check"] == 0

    def test_batched_scan_cost_is_per_class_not_per_cycle(self):
        """The kernel's promise: window width does not multiply cost."""
        machine = example_machine()
        module = CompiledQueryModule(machine)
        op = machine.operation_names[0]
        module.assign(op, 0)
        module.first_free(op, 1, 11)
        narrow = module.work.units[CHECK_RANGE]
        module.first_free(op, 1, 101)
        wide = module.work.units[CHECK_RANGE] - narrow
        assert wide == narrow

    def test_unknown_operation_raises(self):
        module = CompiledQueryModule(example_machine())
        with pytest.raises(Exception):
            module.check("no-such-op", 0)
        with pytest.raises(Exception):
            module.first_free("no-such-op", 0, 5)

    def test_mixing_assign_models_raises(self):
        machine = example_machine()
        module = CompiledQueryModule(machine)
        op = machine.operation_names[0]
        module.assign(op, 0)
        with pytest.raises(QueryError):
            module.assign_free(op, 50)

    def test_snapshot_restore_round_trip(self):
        machine = example_machine()
        module = CompiledQueryModule(machine, modulo=6)
        reference = DiscreteQueryModule(machine, modulo=6)
        op = machine.operation_names[0]
        module.assign(op, 0)
        reference.assign(op, 0)
        snap = module.snapshot()
        probe = [(o, c) for o in machine.operation_names for c in range(8)]
        before = [module.check(o, c) for o, c in probe]
        if module.check(op, 3):
            module.assign(op, 3)
        module.restore(snap)
        assert [module.check(o, c) for o, c in probe] == before
        assert before == [reference.check(o, c) for o, c in probe]

    def test_wide_downward_modulo_window(self):
        """direction=-1 over a window wider than II picks the latest slot."""
        machine = example_machine()
        for ii in (2, 3, 5):
            compiled = CompiledQueryModule(machine, modulo=ii)
            discrete = DiscreteQueryModule(machine, modulo=ii)
            op = machine.operation_names[0]
            compiled.assign(op, 0)
            discrete.assign(op, 0)
            for start in (-2, 0, 1):
                stop = start + 3 * ii + 1
                assert compiled.first_free(op, start, stop, -1) == (
                    discrete.first_free(op, start, stop, -1)
                )
