"""Tests for the ``repro lint`` command: exit codes, JSON output, the
baseline round trip, and the corrupted fixture."""

import json
import os

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CORRUPTED = os.path.join(FIXTURES, "corrupted.mdl")
CORRUPTED_REF = os.path.join(FIXTURES, "corrupted_ref.mdl")
ILLFORMED = os.path.join(FIXTURES, "illformed.mdl")


def lint_json(capsys, argv):
    """Run ``repro lint ... --format json`` and return (exit, report)."""
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


class TestExitCodes:
    def test_clean_builtin_exits_0(self, capsys):
        assert main(["lint", "cydra5"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_all_builtins_exit_0(self, capsys):
        for name in (
            "cydra5",
            "cydra5-subset",
            "alpha21064",
            "mips-r3000",
            "playdoh",
            "example",
        ):
            assert main(["lint", name]) == 0, name
            capsys.readouterr()

    def test_fail_on_info_flips_exit(self, capsys):
        # The example machine has info findings (redundant rows) but no
        # warnings or errors: only --fail-on info makes it fail.
        assert main(["lint", "example"]) == 0
        capsys.readouterr()
        assert main(["lint", "example", "--fail-on", "info"]) == 1

    def test_corrupted_against_reference_exits_1(self, capsys):
        assert (
            main(["lint", CORRUPTED, "--against", CORRUPTED_REF]) == 1
        )
        out = capsys.readouterr().out
        assert "equivalence-mismatch" in out

    def test_unknown_machine_exits_2(self, capsys):
        assert main(["lint", "no-such-machine"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err
        assert "cydra5" in err

    def test_missing_machine_argument_exits_2(self, capsys):
        assert main(["lint"]) == 2
        assert "needs a machine" in capsys.readouterr().err

    def test_non_utf8_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "binary.mdl"
        path.write_bytes(b"\xdc\xfe\x00garbage")
        assert main(["lint", str(path)]) == 2
        assert "cannot read machine file" in capsys.readouterr().err

    def test_unwritable_baseline_path_exits_2(self, tmp_path, capsys):
        missing_dir = str(tmp_path / "no-such-dir" / "base.json")
        assert (
            main(["lint", "example", "--write-baseline", missing_dir]) == 2
        )
        assert "cannot write baseline" in capsys.readouterr().err

    def test_trailing_comma_in_rules_tolerated(self, capsys):
        assert main(["lint", "example", "--rules", "unused-resource,"]) == 0


class TestJsonOutput:
    def test_schema_of_clean_run(self, capsys):
        code, report = lint_json(
            capsys, ["lint", "cydra5", "--format", "json"]
        )
        assert code == 0
        assert report["version"] == 1
        assert report["machine"] == "cydra5"
        assert report["against"] is None
        assert report["summary"]["error"] == 0
        assert report["summary"]["warning"] == 0
        assert "equivalence-mismatch" not in report["rules"]
        for diag in report["diagnostics"]:
            assert diag["severity"] == "info"

    def test_corrupted_fixture_reports_each_defect(self, capsys):
        code, report = lint_json(
            capsys,
            [
                "lint",
                CORRUPTED,
                "--against",
                CORRUPTED_REF,
                "--format",
                "json",
            ],
        )
        assert code == 1
        assert report["against"] == "corrupted-reference"
        fired = {d["rule"] for d in report["diagnostics"]}
        assert {
            "redundant-resource",
            "collapsible-operations",
            "equivalence-mismatch",
        } <= fired
        by_rule = {}
        for diag in report["diagnostics"]:
            by_rule.setdefault(diag["rule"], []).append(diag)
        assert [
            d["location"]["resource"]
            for d in by_rule["redundant-resource"]
        ] == ["alu.mirror"]
        assert by_rule["collapsible-operations"][0]["evidence"][
            "class"
        ] == ["add", "sub"]
        # File-based findings carry real source lines.
        assert any(
            "line" in d["location"] for d in report["diagnostics"]
        )
        # The first mismatch carries a concrete witness schedule.
        witness = by_rule["equivalence-mismatch"][0]["evidence"]["witness"]
        assert witness["conflicts_on"] == "corrupted-reference"
        assert witness["legal_on"] == "corrupted"

    def test_illformed_file_reports_instead_of_crashing(self, capsys):
        code, report = lint_json(
            capsys, ["lint", ILLFORMED, "--format", "json"]
        )
        assert code == 1
        fired = {d["rule"]: d for d in report["diagnostics"]}
        assert fired["negative-cycle"]["location"]["line"] == 6
        assert fired["negative-cycle"]["location"]["cycle"] == -2
        assert fired["cycle-overflow"]["location"]["cycle"] == 9999
        assert fired["invalid-machine"]["severity"] == "error"


class TestBaselineFlow:
    def test_write_then_suppress(self, tmp_path, capsys):
        path = str(tmp_path / "baseline.json")
        assert main(["lint", "example", "--write-baseline", path]) == 0
        capsys.readouterr()
        code, report = lint_json(
            capsys,
            [
                "lint",
                "example",
                "--baseline",
                path,
                "--fail-on",
                "info",
                "--format",
                "json",
            ],
        )
        assert code == 0
        assert report["diagnostics"] == []
        assert report["summary"]["suppressed"] > 0

    def test_repo_baseline_keeps_builtins_quiet(self, capsys):
        repo_baseline = os.path.join(
            os.path.dirname(__file__), os.pardir, "lint-baseline.json"
        )
        for name in ("cydra5", "example", "playdoh"):
            assert (
                main(
                    [
                        "lint",
                        name,
                        "--baseline",
                        repo_baseline,
                        "--fail-on",
                        "info",
                    ]
                )
                == 0
            ), name
            capsys.readouterr()

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        assert main(["lint", "example", "--baseline", str(path)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "equivalence-mismatch" in out
        assert "redundant-resource" in out

    def test_rule_subset(self, capsys):
        code, report = lint_json(
            capsys,
            [
                "lint",
                "example",
                "--rules",
                "unused-resource,empty-operation",
                "--format",
                "json",
            ],
        )
        assert code == 0
        assert report["rules"] == ["unused-resource", "empty-operation"]
        assert report["diagnostics"] == []

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "example", "--rules", "bogus"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_severity_override(self, capsys):
        assert (
            main(
                [
                    "lint",
                    "example",
                    "--severity",
                    "redundant-resource=error",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "error[redundant-resource]" in out

    def test_bad_severity_syntax_exits_2(self, capsys):
        assert main(["lint", "example", "--severity", "nonsense"]) == 2
        assert "RULE=LEVEL" in capsys.readouterr().err

    def test_show_info_lists_info_findings(self, capsys):
        assert main(["lint", "example", "--show-info"]) == 0
        out = capsys.readouterr().out
        assert "info[redundant-resource]" in out

    def test_max_cycle_option(self, tmp_path, capsys):
        path = str(tmp_path / "deep.mdl")
        with open(path, "w") as handle:
            handle.write("machine deep\noperation a\n  r: 0 600\n")
        code, report = lint_json(
            capsys, ["lint", path, "--format", "json"]
        )
        assert code == 0  # warning, and default --fail-on is error
        assert any(
            d["rule"] == "cycle-overflow" for d in report["diagnostics"]
        )
        capsys.readouterr()
        code, report = lint_json(
            capsys,
            ["lint", path, "--max-cycle", "1000", "--format", "json"],
        )
        assert not any(
            d["rule"] == "cycle-overflow" for d in report["diagnostics"]
        )

    def test_against_builtin_reduced_round_trip(self, tmp_path, capsys):
        reduced_path = str(tmp_path / "reduced.mdl")
        assert main(["reduce", "example", "-o", reduced_path]) == 0
        capsys.readouterr()
        code, report = lint_json(
            capsys,
            [
                "lint",
                reduced_path,
                "--against",
                "example",
                "--format",
                "json",
            ],
        )
        assert code == 0
        assert "equivalence-mismatch" in report["rules"]
        assert not any(
            d["rule"] == "equivalence-mismatch"
            for d in report["diagnostics"]
        )
