"""The code-plane analyzer: rule fixtures, determinism, baseline, CLI."""

import json
import textwrap

import pytest

from repro.lint import Baseline, lint_code_paths
from repro.lint.code import CODE_REPORT_NAME, iter_python_files


def _lint_snippet(tmp_path, source, name="repro/core/snippet.py", **kwargs):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_code_paths(
        paths=[str(path)], root=str(tmp_path), **kwargs
    )


def _rules(report):
    return [d.rule for d in report.diagnostics]


class TestUnorderedIteration:
    def test_for_loop_over_set_literal_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def pick(items):
                for item in {1, 2, 3}:
                    yield item
            """,
        )
        assert _rules(report) == ["code-unordered-iteration"]
        diag = report.diagnostics[0]
        assert diag.location.file == "repro/core/snippet.py"
        assert diag.location.symbol == "pick"
        assert diag.location.line is not None

    def test_list_of_set_call_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def order(names):
                return list(set(names))
            """,
        )
        assert _rules(report) == ["code-unordered-iteration"]

    def test_comprehension_over_set_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def squares(names):
                return [n * n for n in set(names)]
            """,
        )
        assert _rules(report) == ["code-unordered-iteration"]

    def test_sorted_and_reductions_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def fine(names):
                ordered = sorted(set(names))
                total = sum(n for n in {1, 2, 3})
                count = len({1, 2})
                biggest = max(set(names))
                unique = {n for n in set(names)}
                return ordered, total, count, biggest, unique
            """,
        )
        assert _rules(report) == []

    def test_for_loop_over_sorted_set_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def fine(names):
                for name in sorted(set(names)):
                    yield name
            """,
        )
        assert _rules(report) == []


class TestUnchargedLoop:
    def test_query_loop_without_charge_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            class Backend:
                def scan(self, cycles):
                    hits = []
                    for cycle in cycles:
                        hits.append(cycle)
                    return hits
            """,
            name="repro/query/backend.py",
        )
        assert _rules(report) == ["code-uncharged-loop"]
        assert report.diagnostics[0].location.symbol == "Backend.scan"

    def test_charging_loop_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            class Backend:
                def scan(self, cycles):
                    units = 0
                    for cycle in cycles:
                        units += 1
                    self.work.charge("check", units)
            """,
            name="repro/query/backend.py",
        )
        assert _rules(report) == []

    def test_delegating_loop_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            class Backend:
                def first(self, op, cycles):
                    for cycle in cycles:
                        if self.check(op, cycle):
                            return cycle
                    return None
            """,
            name="repro/query/backend.py",
        )
        assert _rules(report) == []

    def test_rule_only_applies_to_query_subsystem(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def scan(cycles):
                hits = []
                for cycle in cycles:
                    hits.append(cycle)
                return hits
            """,
            name="repro/stats/backend.py",
        )
        assert _rules(report) == []


class TestMissingBudgetCheckpoint:
    def test_budget_loop_without_checkpoint_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def search(items, budget):
                best = None
                for item in items:
                    best = item
                return best
            """,
        )
        assert _rules(report) == ["code-missing-budget-checkpoint"]
        assert report.diagnostics[0].location.symbol == "search"

    def test_checkpointing_loop_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def search(items, budget):
                for index, item in enumerate(items):
                    if budget is not None:
                        budget.checkpoint("search", units=1, progress=index)
                return None
            """,
        )
        assert _rules(report) == []

    def test_forwarding_budget_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def outer(items, budget):
                for item in items:
                    inner(item, budget=budget)
            """,
        )
        assert _rules(report) == []

    def test_rule_only_applies_to_core_and_scheduler(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def search(items, budget):
                for item in items:
                    pass
            """,
            name="repro/workloads/search.py",
        )
        assert _rules(report) == []


class TestNonatomicWrite:
    def test_open_for_write_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def dump(path, text):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
            """,
        )
        assert _rules(report) == ["code-nonatomic-write"]

    def test_write_text_method_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def dump(path, text):
                path.write_text(text)
            """,
        )
        assert _rules(report) == ["code-nonatomic-write"]

    def test_reads_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()

            def load_default_mode(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert _rules(report) == []

    def test_atomic_module_is_exempt(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def atomic_write_text(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            name="repro/_atomic.py",
        )
        assert _rules(report) == []


class TestBroadExcept:
    def test_bare_except_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def run(task):
                try:
                    task()
                except:
                    pass
            """,
        )
        assert _rules(report) == ["code-broad-except"]

    def test_except_exception_without_reraise_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def run(task):
                try:
                    task()
                except Exception:
                    return None
            """,
        )
        assert _rules(report) == ["code-broad-except"]

    def test_reraising_handler_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def run(task, cleanup):
                try:
                    task()
                except BaseException:
                    cleanup()
                    raise
            """,
        )
        assert _rules(report) == []

    def test_narrow_handler_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def run(task):
                try:
                    task()
                except ValueError:
                    return None
            """,
        )
        assert _rules(report) == []


class TestUnseededRandom:
    def test_global_rng_draw_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random() * 0.5
            """,
        )
        assert "code-unseeded-random" in _rules(report)

    def test_module_level_shuffle_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            import random

            def scramble(items):
                random.shuffle(items)
                return items
            """,
        )
        assert "code-unseeded-random" in _rules(report)

    def test_unseeded_constructor_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            import random

            def fresh():
                return random.Random()
            """,
        )
        assert _rules(report) == ["code-unseeded-random"]

    def test_system_random_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            import random

            def entropy():
                return random.SystemRandom().random()
            """,
        )
        assert "code-unseeded-random" in _rules(report)

    def test_seeded_instance_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            import random

            def stream(seed):
                rng = random.Random("mdlgen:%d" % seed)
                return rng.random()
            """,
        )
        assert "code-unseeded-random" not in _rules(report)

    def test_instance_draws_not_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            import random

            def draws(rng: random.Random):
                return [rng.random(), rng.choice([1, 2])]
            """,
        )
        assert "code-unseeded-random" not in _rules(report)


class TestDriver:
    def test_invalid_source_reported_not_raised(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def broken(:
                pass
            """,
        )
        assert _rules(report) == ["invalid-source"]
        assert report.diagnostics[0].severity == "error"

    def test_directory_discovery_is_sorted_and_skips_pycache(
        self, tmp_path
    ):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("")
        (tmp_path / "pkg" / "b.py").write_text("")
        (tmp_path / "pkg" / "a.py").write_text("")
        files = iter_python_files([str(tmp_path / "pkg")])
        assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py"]

    def test_unknown_path_is_a_config_error(self):
        from repro.errors import LintConfigError

        with pytest.raises(LintConfigError):
            iter_python_files(["/nonexistent/nowhere.py"])

    def test_repo_package_is_clean_under_checked_in_baseline(self):
        baseline = Baseline.load("lint-code-baseline.json")
        report = lint_code_paths(baseline=baseline)
        offenders = [str(d.location) for d in report.at_or_above("info")]
        assert offenders == []
        assert report.suppressed == len(baseline)

    def test_baseline_suppression_matches_file_and_symbol(self, tmp_path):
        source = """
        def run(task):
            try:
                task()
            except:
                pass
        """
        report = _lint_snippet(tmp_path, source)
        baseline = Baseline()
        baseline.add_report(report)
        suppressed = _lint_snippet(tmp_path, source, baseline=baseline)
        assert suppressed.diagnostics == []
        assert suppressed.suppressed == 1


class TestDeterminism:
    SOURCE = """
    def messy(names, budget):
        for item in {1, 2}:
            pass
        for name in list(set(names)):
            try:
                name()
            except Exception:
                continue
        with open("out", "w") as handle:
            handle.write("x")
    """

    def test_json_output_is_byte_deterministic(self, tmp_path):
        """Two runs over identical inputs render identical bytes — the
        regression test for the stable diagnostic ordering."""
        renders = []
        for _ in range(2):
            report = _lint_snippet(tmp_path, self.SOURCE)
            renders.append(
                json.dumps(report.to_dict(), indent=2, sort_keys=True)
            )
        assert renders[0] == renders[1]
        # Multiple findings on one line sort on the full key including
        # message, so the order is never dict- or discovery-dependent.
        parsed = json.loads(renders[0])
        assert parsed["machine"] == CODE_REPORT_NAME
        assert len(parsed["diagnostics"]) >= 4

    def test_sorted_key_covers_file_line_and_message(self, tmp_path):
        report = _lint_snippet(tmp_path, self.SOURCE)
        ordered = report.sorted().diagnostics
        keys = [
            (
                -d.rank,
                d.location.file or "",
                d.rule,
                d.location.symbol or "",
                d.location.line or -1,
                d.message,
            )
            for d in ordered
        ]
        assert keys == sorted(keys)


class TestUnregisteredCurrency:
    RULE = ["code-unregistered-currency"]

    def test_string_literal_off_registry_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def probe(qm):
                qm.work.charge("chekc", 4)
            """,
            rules=self.RULE,
        )
        assert _rules(report) == ["code-unregistered-currency"]
        assert "'chekc'" in report.diagnostics[0].message

    def test_unknown_constant_flagged(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            SAMPEL = "sampel"

            def probe(counters):
                counters.charge(SAMPEL, 1)
            """,
            rules=self.RULE,
        )
        assert _rules(report) == ["code-unregistered-currency"]

    def test_registered_string_and_constant_clean(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            from repro.query.work import CHECK, SAMPLE

            def probe(self, work):
                work.charge("check", 4)
                work.charge(CHECK, 2)
                self.work.charge(SAMPLE, 1)
            """,
            rules=self.RULE,
        )
        assert _rules(report) == []

    def test_dynamic_currency_is_unresolvable_and_skipped(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def probe(work, name):
                work.charge(name, 4)
                work.charge(name.lower(), 4)
            """,
            rules=self.RULE,
        )
        assert _rules(report) == []

    def test_non_counter_receivers_ignored(self, tmp_path):
        report = _lint_snippet(
            tmp_path,
            """
            def probe(battery):
                battery.charge("overnight", 8)
            """,
            rules=self.RULE,
        )
        assert _rules(report) == []
