"""Tests for the Iterative Modulo Scheduler."""

import pytest

from repro.core import ForbiddenLatencyMatrix, MachineDescription
from repro.errors import ScheduleError
from repro.scheduler import (
    DependenceGraph,
    IterativeModuloScheduler,
    compute_heights,
)
from repro.workloads import KERNELS, loop_suite


@pytest.fixture(scope="module")
def subset_scheduler():
    from repro.machines import cydra5_subset

    md = cydra5_subset()
    return IterativeModuloScheduler(
        md, matrix=ForbiddenLatencyMatrix.from_machine(md)
    )


class TestHeights:
    def test_sink_has_zero_height(self):
        g = DependenceGraph("g")
        g.add_operation("a", "op")
        g.add_operation("b", "op")
        g.add_dependence("a", "b", 3)
        heights = compute_heights(g, ii=2)
        assert heights == {"a": 3, "b": 0}

    def test_carried_edges_discounted_by_ii(self):
        g = DependenceGraph("g")
        g.add_operation("a", "op")
        g.add_operation("b", "op")
        g.add_dependence("a", "b", 2)
        g.add_dependence("b", "a", 4, distance=1)
        # At II=6 the back edge contributes 4 - 6 = -2 (ignored).
        assert compute_heights(g, ii=6)["a"] == 2

    def test_positive_cycle_raises(self):
        g = DependenceGraph("g")
        g.add_operation("a", "op")
        g.add_dependence("a", "a", 5, distance=1)
        with pytest.raises(ScheduleError):
            compute_heights(g, ii=2)


class TestKernels:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_kernels_schedule_at_mii(self, subset_scheduler, kernel):
        result = subset_scheduler.schedule(KERNELS[kernel]())
        assert result.ii == result.mii
        assert result.optimal

    def test_result_schedule_is_verified(self, subset_scheduler):
        result = subset_scheduler.schedule(KERNELS["daxpy"]())
        # verify_schedule ran inside; re-run here for belt and braces.
        result.graph.verify_schedule(result.times, ii=result.ii)

    def test_alternatives_resolved(self, subset_scheduler):
        result = subset_scheduler.schedule(KERNELS["hydro"]())
        loads = [
            chosen
            for name, chosen in result.chosen_opcodes.items()
            if name.startswith("ld")
        ]
        assert all(op.startswith("load_s.") for op in loads)

    def test_recurrence_bounds_ii(self, subset_scheduler):
        result = subset_scheduler.schedule(KERNELS["inner-product"]())
        assert result.mii >= 5  # fadd_s latency on the accumulator


class TestRepresentationsAgree:
    """The paper verified identical schedules regardless of description;
    we verify identical IIs across representations and machines."""

    def test_all_representations_same_ii(self):
        from repro.core import reduce_machine
        from repro.machines import cydra5_subset

        md = cydra5_subset()
        reduced = reduce_machine(md).reduced
        configs = [
            (md, "discrete", 1),
            (md, "bitvector", 2),
            (reduced, "discrete", 1),
            (reduced, "bitvector", 4),
        ]
        graphs = [KERNELS["daxpy"](), KERNELS["tridiagonal"]()]
        for graph_builder in (KERNELS["daxpy"], KERNELS["tridiagonal"]):
            iis = set()
            for machine, representation, k in configs:
                scheduler = IterativeModuloScheduler(
                    machine, representation=representation, word_cycles=k
                )
                iis.add(scheduler.schedule(graph_builder()).ii)
            assert len(iis) == 1


class TestBudgetAndFailure:
    def test_budget_exceeded_bumps_ii(self):
        """A machine where II=1 is infeasible for two ops of one unit."""
        md = MachineDescription("tiny", {"u": {"unit": [0]}})
        scheduler = IterativeModuloScheduler(md)
        g = DependenceGraph("two")
        g.add_operation("a", "u")
        g.add_operation("b", "u")
        result = scheduler.schedule(g)
        assert result.ii == 2  # ResMII counts both unit usages

    def test_unschedulable_raises(self):
        md = MachineDescription("tiny", {"u": {"unit": [0]}})
        scheduler = IterativeModuloScheduler(md, max_ii_slack=0)
        g = DependenceGraph("hard")
        g.add_operation("a", "u")
        g.add_operation("b", "u")
        g.add_dependence("a", "b", 1)
        g.add_dependence("b", "a", 1, distance=1)
        # RecMII = 2 == ResMII; schedulable at 2 actually - so loosen:
        result = scheduler.schedule(g)
        assert result.ii == 2

    def test_zero_distance_cycle_raises(self):
        md = MachineDescription("tiny", {"u": {"unit": [0]}})
        scheduler = IterativeModuloScheduler(md)
        g = DependenceGraph("bad")
        g.add_operation("a", "u")
        g.add_operation("b", "u")
        g.add_dependence("a", "b", 1)
        g.add_dependence("b", "a", 1)
        with pytest.raises(ScheduleError):
            scheduler.schedule(g)


class TestStatistics:
    def test_attempt_stats_recorded(self, subset_scheduler):
        result = subset_scheduler.schedule(KERNELS["state"]())
        assert result.attempts
        assert result.attempts[-1].succeeded
        assert result.total_decisions >= result.num_operations

    def test_decisions_per_op_at_least_one(self, subset_scheduler):
        result = subset_scheduler.schedule(KERNELS["hydro"]())
        assert result.decisions_per_op >= 1.0

    def test_work_counters_populated(self, subset_scheduler):
        result = subset_scheduler.schedule(KERNELS["daxpy"]())
        assert result.work.total_calls > 0

    def test_suite_smoke(self, subset_scheduler):
        for graph in loop_suite(15, seed=3):
            result = subset_scheduler.schedule(graph)
            assert result.ii >= result.mii


class TestPlacementPolicies:
    def test_unknown_policy_rejected(self):
        from repro.machines import cydra5_subset

        with pytest.raises(ScheduleError):
            IterativeModuloScheduler(
                cydra5_subset(), placement_policy="bogus"
            )

    @pytest.mark.parametrize("policy", ["earliest", "lifetime"])
    def test_policies_produce_legal_schedules(self, policy):
        from repro.machines import cydra5_subset
        from repro.workloads import loop_suite

        scheduler = IterativeModuloScheduler(
            cydra5_subset(), placement_policy=policy
        )
        for graph in loop_suite(10, seed=7):
            result = scheduler.schedule(graph)
            result.graph.verify_schedule(result.times, ii=result.ii)

    def test_lifetime_scans_downward_when_consumer_pinned(self):
        """Construct the case directly: a consumer scheduled first (a
        recurrence head), then its producer placed — the lifetime policy
        must choose a later slot than the earliest policy."""
        from repro.machines import cydra5_subset

        machine = cydra5_subset()
        graph_builder = lambda: _producer_consumer_graph()  # noqa: E731

        def _producer_consumer_graph():
            g = DependenceGraph("pinned")
            g.add_operation("head", "fadd_s")
            g.add_operation("tail", "fadd_s")
            # head -> tail (flow), tail -> head carried: the recurrence
            # makes 'head' highest priority, so 'tail' is placed while
            # its consumer 'head' (next iteration) is already fixed.
            g.add_dependence("head", "tail", 5)
            g.add_dependence("tail", "head", 5, distance=1)
            return g

        early = IterativeModuloScheduler(
            machine, placement_policy="earliest"
        ).schedule(_producer_consumer_graph())
        late = IterativeModuloScheduler(
            machine, placement_policy="lifetime"
        ).schedule(_producer_consumer_graph())
        assert early.ii == late.ii
        # With slack both are legal; lifetime never places earlier.
        assert late.times["tail"] >= early.times["tail"]
