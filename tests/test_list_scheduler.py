"""Tests for the operation-driven (critical-path-first) block scheduler."""

import pytest

from repro.core import MachineDescription, schedule_is_contention_free
from repro.errors import ScheduleError
from repro.scheduler import DependenceGraph, OperationDrivenScheduler, chain
from repro.machines import example_machine


@pytest.fixture
def machine():
    return example_machine()


@pytest.fixture
def scheduler(machine):
    return OperationDrivenScheduler(machine)


def _resource_check(machine, result):
    placements = [
        (result.chosen_opcodes[name], time)
        for name, time in result.times.items()
    ]
    assert schedule_is_contention_free(machine, placements)


class TestBasics:
    def test_chain_schedules_in_order(self, scheduler, machine):
        g = chain("c", ["A", "A", "A"], latency=2)
        result = scheduler.schedule(g)
        assert result.times["n0"] < result.times["n1"] < result.times["n2"]
        result.graph.verify_schedule(result.times)
        _resource_check(machine, result)

    def test_resource_conflicts_avoided(self, scheduler, machine):
        g = DependenceGraph("par")
        for i in range(4):
            g.add_operation("b%d" % i, "B")
        result = scheduler.schedule(g)
        _resource_check(machine, result)
        # B self-conflicts at distances 0..3, so issues are >=4 apart.
        times = sorted(result.times.values())
        assert all(b - a >= 4 for a, b in zip(times, times[1:]))

    def test_length_property(self, scheduler):
        g = chain("c", ["A"], latency=1)
        result = scheduler.schedule(g)
        assert result.length == result.times["n0"] + 1

    def test_critical_path_first_order(self, scheduler):
        """A successor can be placed before a late predecessor is; the
        predecessor must then respect the successor's deadline."""
        g = DependenceGraph("v")
        g.add_operation("late", "A")
        g.add_operation("deep1", "A")
        g.add_operation("deep2", "A")
        g.add_operation("join", "A")
        g.add_dependence("deep1", "deep2", 5)
        g.add_dependence("deep2", "join", 5)
        g.add_dependence("late", "join", 1)
        result = scheduler.schedule(g)
        result.graph.verify_schedule(result.times)

    def test_cyclic_block_rejected(self, scheduler):
        g = DependenceGraph("cyc")
        g.add_operation("a", "A")
        g.add_operation("b", "A")
        g.add_dependence("a", "b", 1)
        g.add_dependence("b", "a", 1)
        with pytest.raises(ScheduleError):
            scheduler.schedule(g)


class TestBoundaryConditions:
    def test_dangling_requirements_respected(self, scheduler, machine):
        """A B issued at cycle -6 by a predecessor block still holds r4
        in cycles 0..1 of this block, pushing our B out of cycle -5..-3
        equivalents."""
        g = DependenceGraph("blk")
        g.add_operation("b", "B")
        clean = scheduler.schedule(g)
        dangling = scheduler.schedule(g, boundary=[("B", -3)])
        assert clean.times["b"] == 0
        assert dangling.times["b"] >= 1  # 0..3 would clash at distance <=3

    def test_boundary_at_positive_cycle(self, scheduler):
        g = DependenceGraph("blk")
        g.add_operation("a", "A")
        result = scheduler.schedule(g, boundary=[("A", 0)])
        assert result.times["a"] != 0

    def test_multiple_boundary_ops(self, scheduler):
        g = DependenceGraph("blk")
        g.add_operation("b", "B")
        result = scheduler.schedule(
            g, boundary=[("B", -2), ("B", -6)]
        )
        # B conflicts with B at distances -3..3: earliest legal is 2.
        assert result.times["b"] >= 2


class TestAlternativesAndRepresentations:
    def test_alternatives_split_across_pipes(self, dual_pipe):
        scheduler = OperationDrivenScheduler(dual_pipe)
        g = DependenceGraph("movs")
        g.add_operation("m1", "mov")
        g.add_operation("m2", "mov")
        result = scheduler.schedule(g)
        chosen = sorted(result.chosen_opcodes.values())
        times = result.times
        if times["m1"] == times["m2"]:
            assert chosen == ["mov.0", "mov.1"]

    def test_bitvector_representation_matches(self, machine):
        g = chain("c", ["B", "A", "B"], latency=1)
        discrete = OperationDrivenScheduler(machine).schedule(g)
        bitvec = OperationDrivenScheduler(
            machine, representation="bitvector", word_cycles=4
        ).schedule(g)
        assert discrete.times == bitvec.times

    def test_reduced_machine_same_schedule(self, machine):
        from repro.core import reduce_machine

        g = chain("c", ["B", "B", "A", "A"], latency=2)
        original = OperationDrivenScheduler(machine).schedule(g)
        reduced = OperationDrivenScheduler(
            reduce_machine(machine).reduced
        ).schedule(g)
        assert original.times == reduced.times
