"""Tests for the command-line interface."""

from repro import mdl
from repro.cli import main
from repro.machines import example_machine


class TestReduce:
    def test_reduce_builtin(self, capsys):
        assert main(["reduce", "example"]) == 0
        out = capsys.readouterr().out
        assert "5 -> 2 resources" in out

    def test_reduce_writes_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "reduced.mdl")
        assert main(["reduce", "example", "-o", out_path]) == 0
        reduced = mdl.load_file(out_path)
        assert reduced.num_resources == 2

    def test_reduce_word_objective(self, capsys):
        assert main(
            ["reduce", "example", "--objective", "word-uses",
             "--word-cycles", "4"]
        ) == 0
        assert "k=4" in capsys.readouterr().out

    def test_reduce_mdl_file(self, tmp_path, capsys):
        path = str(tmp_path / "m.mdl")
        mdl.dump_file(example_machine(), path)
        assert main(["reduce", path]) == 0


class TestVerify:
    def test_equivalent(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.mdl")
        main(["reduce", "example", "-o", out_path])
        assert main(["verify", "example", out_path]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_not_equivalent(self, tmp_path, capsys):
        path = str(tmp_path / "broken.mdl")
        with open(path, "w") as handle:
            handle.write("machine broken\noperation A\n  r0: 0\n"
                         "operation B\n  r0: 0\n")
        assert main(["verify", "example", path]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out


class TestStats:
    def test_stats_output(self, capsys):
        assert main(["stats", "mips-r3000", "--word-cycles", "1", "9"]) == 0
        out = capsys.readouterr().out
        assert "operation classes:      15" in out
        assert "9-cycle-word" in out


class TestShow:
    def test_show_dumps_mdl(self, capsys):
        assert main(["show", "example"]) == 0
        out = capsys.readouterr().out
        assert "machine paper-example" in out
        assert "operation B" in out

    def test_show_round_trips(self, capsys):
        main(["show", "cydra5-subset"])
        out = capsys.readouterr().out
        assert mdl.loads(out).num_operations == 12


class TestSchedule:
    def test_kernel(self, capsys):
        assert main(
            ["schedule", "cydra5-subset", "--kernel", "daxpy"]
        ) == 0
        out = capsys.readouterr().out
        assert "daxpy" in out
        assert "scheduled at MII" in out

    def test_generated_loops(self, capsys):
        assert main(
            ["schedule", "cydra5-subset", "--loops", "3",
             "--representation", "bitvector", "--word-cycles", "4"]
        ) == 0

    def test_missing_machine_file_exits_2(self, capsys):
        assert main(["stats", "/nonexistent/machine.mdl"]) == 2
        err = capsys.readouterr().err
        assert "cannot read machine file" in err

    def test_unknown_machine_name_exits_2(self, capsys):
        assert main(["stats", "no-such-machine"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine" in err
        assert "cydra5" in err  # the error lists the built-ins


class TestReport:
    def test_report_basic(self, capsys):
        assert main(["report", "example"]) == 0
        out = capsys.readouterr().out
        assert "forbidden latencies: 6 (max 3)" in out

    def test_report_with_reduction(self, capsys):
        assert main(["report", "example", "--reduce"]) == 0
        out = capsys.readouterr().out
        assert "state bits/cycle: 5 -> 2" in out


class TestDiff:
    def test_diff_equivalent(self, tmp_path, capsys):
        path = str(tmp_path / "copy.mdl")
        mdl.dump_file(example_machine(), path)
        assert main(["diff", "example", path]) == 0

    def test_diff_not_equivalent(self, tmp_path, capsys):
        path = str(tmp_path / "other.mdl")
        with open(path, "w") as handle:
            handle.write("machine o\noperation A\n r: 0\noperation B\n r: 0\n")
        assert main(["diff", "example", path]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out


class TestExpand:
    def test_expand_kernel(self, capsys):
        assert main(
            ["expand", "cydra5-subset", "--kernel", "daxpy",
             "--iterations", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "kernel (II=" in out
        assert "[2]" in out  # third iteration appears in the timeline


class TestAutomata:
    def test_automata_report(self, capsys):
        assert main(["automata", "example"]) == 0
        out = capsys.readouterr().out
        assert "monolithic automaton: 116 states" in out
        assert "reserved bits per cycle" in out

    def test_automata_cap(self, capsys):
        assert main(
            ["automata", "mips-r3000", "--max-states", "2000",
             "--factor", "resource"]
        ) == 0
        out = capsys.readouterr().out
        assert "exceeds 2000 states" in out


class TestPlayDohBuiltin:
    def test_playdoh_available(self, capsys):
        assert main(["stats", "playdoh", "--word-cycles", "1"]) == 0
        assert "playdoh" in capsys.readouterr().out


class TestExitCodes:
    def test_budget_exceeded_exits_3(self, capsys):
        assert main(["reduce", "example", "--deadline", "0"]) == 3
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "Traceback" not in err

    def test_budget_exceeded_schedule_exits_3(self, capsys):
        assert main(
            ["schedule", "cydra5-subset", "--kernel", "daxpy",
             "--max-units", "0"]
        ) == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli_module

        def interrupt(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "reduce_machine", interrupt)
        assert main(["reduce", "example"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_interrupt_leaves_no_partial_output(self, tmp_path, capsys,
                                                monkeypatch):
        from repro._atomic import atomic_write_text as real_write

        def interrupted_write(path, text, encoding="utf-8"):
            raise KeyboardInterrupt

        import repro.resilience.artifacts as artifacts_module

        monkeypatch.setattr(
            artifacts_module, "atomic_write_text", interrupted_write
        )
        out_path = tmp_path / "r.mdl"
        assert main(["reduce", "example", "-o", str(out_path)]) == 130
        assert not out_path.exists()
        assert list(tmp_path.iterdir()) == []
        assert real_write  # silence unused-import linters

    def test_fallback_converts_budget_failure_to_success(self, capsys):
        assert main(
            ["reduce", "example", "--deadline", "0", "--fallback"]
        ) == 0
        out = capsys.readouterr().out
        assert "rung 'original'" in out
        assert "verified" in out

    def test_usage_error_still_exits_2(self, capsys):
        assert main(["reduce", "no-such-machine"]) == 2


class TestChaosCommand:
    def test_chaos_ok_exits_0(self, capsys, tmp_path):
        assert main(
            ["chaos", "example", "--seed", "0",
             "--workdir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "result: OK (6/6 faults handled)" in out

    def test_chaos_fault_subset(self, capsys, tmp_path):
        assert main(
            ["chaos", "example", "--faults", "truncate-write",
             "--workdir", str(tmp_path)]
        ) == 0
        assert "1/1 faults handled" in capsys.readouterr().out

    def test_chaos_report_artifact(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "report.json"
        assert main(
            ["chaos", "example", "--seed", "3", "--out", str(out_file),
             "--workdir", str(tmp_path / "work")]
        ) == 0
        document = json.loads(out_file.read_text())
        assert document["schema"] == "repro-chaos-report"
        assert document["ok"] is True
        # The report itself is a checksummed artifact.
        assert (tmp_path / "report.json.sum.json").exists()


class TestArtifactOutput:
    def test_reduce_output_has_sidecar(self, tmp_path, capsys):
        from repro.resilience import artifacts

        out_path = str(tmp_path / "reduced.mdl")
        assert main(["reduce", "example", "-o", out_path]) == 0
        assert artifacts.has_sidecar(out_path)
        loaded = artifacts.load_machine(out_path)
        assert loaded.num_resources == 2

    def test_schedule_fallback_flag(self, capsys):
        assert main(
            ["schedule", "cydra5-subset", "--kernel", "daxpy",
             "--fallback"]
        ) == 0
        out = capsys.readouterr().out
        assert "rung" in out and "ims" in out
