"""Shared fixtures: machines, matrices, and reduction results.

Session-scoped fixtures cache the expensive artifacts (full Cydra 5
reduction, automata) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.core import ForbiddenLatencyMatrix, reduce_machine
from repro.machines import (
    alpha21064,
    alternatives_machine,
    cydra5,
    cydra5_subset,
    example_machine,
    mips_r3000,
)


@pytest.fixture
def example():
    return example_machine()


@pytest.fixture
def example_matrix(example):
    return ForbiddenLatencyMatrix.from_machine(example)


@pytest.fixture(scope="session")
def mips():
    return mips_r3000()


@pytest.fixture(scope="session")
def alpha():
    return alpha21064()


@pytest.fixture(scope="session")
def cydra_full():
    return cydra5()


@pytest.fixture(scope="session")
def cydra_sub():
    return cydra5_subset()


@pytest.fixture(scope="session")
def mips_reduction(mips):
    return reduce_machine(mips)


@pytest.fixture(scope="session")
def subset_reduction(cydra_sub):
    return reduce_machine(cydra_sub)


@pytest.fixture
def dual_pipe():
    return alternatives_machine()
