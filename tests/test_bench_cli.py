"""CLI coverage for ``repro bench run|compare|report`` and the
``repro profile --flamegraph`` export.

The acceptance path for the perf gate lives here: two identical-config
runs compare neutral (exit 0), while a run with the query module wrapped
to do extra work is flagged as a regression (exit 1) by the
deterministic work-unit gate.
"""

import json

from repro.cli import main
from repro.query.discrete import DiscreteQueryModule


def _bench_run(tmp_path, name, extra=()):
    out = tmp_path / ("%s.json" % name)
    argv = [
        "bench", "run", "example",
        "--loops", "2", "--repetitions", "2",
        "-o", str(out),
    ]
    argv.extend(extra)
    assert main(argv) == 0
    return str(out)


class TestBenchRun:
    def test_run_writes_checksummed_result(self, tmp_path, capsys):
        path = _bench_run(tmp_path, "run")
        err = capsys.readouterr().err
        assert "checksum sidecar" in err
        document = json.loads(open(path).read())
        assert document["schema"] == "repro-bench-result"
        assert document["version"] == 1
        sidecar = json.loads(open(path + ".sum.json").read())
        assert sidecar["kind"] == "bench-result"
        case = document["cases"]["paper-example/discrete"]
        assert case["wall"]["n"] == 2
        assert case["work"]["query.check.units"] > 0
        assert case["quality"]["loops"] == 2

    def test_run_text_report_on_stdout(self, tmp_path, capsys):
        _bench_run(tmp_path, "run")
        out = capsys.readouterr().out
        assert "paper-example/discrete" in out
        assert "paper-example/bitvector" in out
        assert "at MII" in out

    def test_run_json_stdout_is_pure_json(self, capsys):
        assert main([
            "bench", "run", "example",
            "--loops", "1", "--repetitions", "1",
            "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-bench-result"

    def test_run_quick_defaults(self, capsys):
        assert main(["bench", "run", "--quick", "--format", "json",
                     "--repetitions", "1", "--loops", "1"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["quick"] is True
        assert set(document["cases"]) == {
            "paper-example/discrete", "paper-example/bitvector",
            "paper-example/compiled",
            "paper-example/corpus-batch", "paper-example/corpus-perloop",
        }
        assert document["config"]["corpus_loops"] == 8

    def test_run_rejects_unknown_representation(self, capsys):
        assert main(["bench", "run", "example",
                     "--representations", "quantum"]) == 2

    def test_run_respects_unit_budget(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert main([
            "bench", "run", "example", "--loops", "4",
            "--repetitions", "3", "--max-units", "1",
            "-o", str(out),
        ]) == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_work_units_bit_identical_across_runs(self, tmp_path):
        first = json.loads(open(_bench_run(tmp_path, "a")).read())
        second = json.loads(open(_bench_run(tmp_path, "b")).read())
        for key, case in first["cases"].items():
            assert case["work"] == second["cases"][key]["work"]
            assert case["quality"] == second["cases"][key]["quality"]
            assert not case["nondeterministic"]


class TestBenchCompare:
    def test_identical_runs_compare_ok(self, tmp_path, capsys):
        base = _bench_run(tmp_path, "base")
        new = _bench_run(tmp_path, "new")
        capsys.readouterr()
        assert main(["bench", "compare", base, new]) == 0
        out = capsys.readouterr().out
        assert out.startswith("verdict: OK")

    def test_injected_slowdown_detected(self, tmp_path, capsys,
                                        monkeypatch):
        base = _bench_run(tmp_path, "base")
        capsys.readouterr()

        # Wrap the discrete query module's check with busywork: every
        # probe charges five extra work units.  The deterministic gate
        # must flag this regardless of wall-clock noise.
        original = DiscreteQueryModule.check

        def slow_check(self, op, cycle, **kwargs):
            self.work.charge("check", 5)
            return original(self, op, cycle, **kwargs)

        monkeypatch.setattr(DiscreteQueryModule, "check", slow_check)
        slowed = _bench_run(tmp_path, "slowed")
        capsys.readouterr()

        assert main(["bench", "compare", base, slowed]) == 1
        out = capsys.readouterr().out
        assert out.startswith("verdict: REGRESSION")
        assert "query.check.units" in out
        # Differential profile attributes the movement to query work.
        assert "differential profile" in out

    def test_compare_writes_artifact(self, tmp_path, capsys):
        base = _bench_run(tmp_path, "base")
        new = _bench_run(tmp_path, "new")
        capsys.readouterr()
        report = tmp_path / "cmp.json"
        assert main(["bench", "compare", base, new,
                     "--format", "json", "-o", str(report)]) == 0
        document = json.loads(report.read_text())
        assert document["schema"] == "repro-bench-compare"
        assert document["ok"] is True
        sidecar = json.loads((tmp_path / "cmp.json.sum.json").read_text())
        assert sidecar["kind"] == "bench-compare"
        # Stdout carried the same JSON.
        stdout_doc = json.loads(capsys.readouterr().out)
        assert stdout_doc["ok"] is True

    def test_compare_schema_mismatch_is_usage_error(self, tmp_path,
                                                    capsys):
        base = _bench_run(tmp_path, "base")
        stale = tmp_path / "stale.json"
        document = json.loads(open(base).read())
        document["version"] = 999
        stale.write_text(json.dumps(document))
        assert main(["bench", "compare", base, str(stale)]) == 2
        err = capsys.readouterr().err
        assert "repro bench run" in err

    def test_compare_missing_file_is_usage_error(self, tmp_path, capsys):
        base = _bench_run(tmp_path, "base")
        assert main(["bench", "compare", base,
                     str(tmp_path / "absent.json")]) == 2


class TestBenchReport:
    def test_report_round_trip(self, tmp_path, capsys):
        path = _bench_run(tmp_path, "run")
        capsys.readouterr()
        assert main(["bench", "report", path]) == 0
        out = capsys.readouterr().out
        assert "paper-example/discrete" in out

    def test_report_json(self, tmp_path, capsys):
        path = _bench_run(tmp_path, "run")
        capsys.readouterr()
        assert main(["bench", "report", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-bench-result"


class TestFlamegraphFlag:
    def test_profile_flamegraph_file(self, tmp_path, capsys):
        out = tmp_path / "flame.txt"
        assert main(["profile", "example", "--loops", "1",
                     "--flamegraph", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            assert int(value) >= 0
        stacks = "\n".join(lines)
        assert "profile.reduce" in stacks
        # Query frames nest under scheduling frames.
        assert "query.check" in stacks and ";query.check" in stacks

    def test_profile_flamegraph_stdout_is_pure(self, capsys):
        assert main(["profile", "example", "--loops", "1",
                     "--flamegraph", "-"]) == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            stack, _, value = line.rpartition(" ")
            int(value)  # collapsed-stack format, nothing else
