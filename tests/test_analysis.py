"""Tests for the analysis utilities (redundancy pruning, reports)."""

import pytest

from repro.analysis import (
    describe_machine,
    describe_reduction,
    diff_constraints,
    drop_resources,
    manually_optimize,
    redundant_resources,
)
from repro.core import (
    MachineDescription,
    matrices_equal,
    reduce_machine,
)
from repro.machines import STUDY_MACHINES, example_machine


class TestRedundantResources:
    def test_duplicate_row_is_redundant(self):
        md = MachineDescription(
            "dup",
            {"A": {"stage": [0], "mirror": [0]}, "B": {"stage": [1]}},
        )
        # 'mirror' duplicates a subset of 'stage' constraints... it is
        # used only by A at 0; stage covers (A,A,0); mirror adds nothing.
        assert "mirror" in redundant_resources(md)

    def test_unique_constraint_row_kept(self, example):
        removed = redundant_resources(example)
        # r3 is the only source of the long B self-latencies.
        assert "r3" not in removed

    def test_manual_optimize_is_exact(self):
        for name, factory in STUDY_MACHINES.items():
            machine = factory()
            pruned, removed = manually_optimize(machine)
            assert matrices_equal(machine, pruned), name
            assert pruned.num_resources == machine.num_resources - len(
                removed
            )

    def test_manual_weaker_than_full_reduction(self):
        """Manual row-dropping keeps more usages than the synthesis —
        the quantitative reason the paper's approach wins."""
        for name, factory in STUDY_MACHINES.items():
            machine = factory()
            pruned, _removed = manually_optimize(machine)
            full = reduce_machine(machine).reduced
            assert full.total_usages <= pruned.total_usages, name

    def test_drop_resources(self, example):
        smaller = drop_resources(example, ["r0"])
        assert "r0" not in smaller.resources
        assert smaller.table("A").usage_count == 2

    def test_drop_preserves_alternatives(self, dual_pipe):
        smaller = drop_resources(dual_pipe, [])
        assert smaller.alternatives_of("mov") == ("mov.0", "mov.1")


class TestReports:
    def test_describe_machine_mentions_key_numbers(self, mips):
        text = describe_machine(mips)
        assert "15 classes" in text
        assert "forbidden latencies" in text

    def test_describe_machine_lists_alternative_groups(self):
        from repro.machines import cydra5

        text = describe_machine(cydra5())
        assert "alternative groups" in text
        assert "load_s" in text

    def test_describe_reduction(self, example):
        text = describe_reduction(reduce_machine(example))
        assert "5 -> 2 resources" in text
        assert "state bits/cycle: 5 -> 2" in text

    def test_diff_equivalent(self, example):
        other = reduce_machine(example).reduced
        assert "EQUIVALENT" in diff_constraints(example, other)

    def test_diff_not_equivalent(self, example):
        broken = MachineDescription(
            "broken", {"A": {"r0": [0]}, "B": {"r1": [0]}}
        )
        text = diff_constraints(example, broken)
        assert "NOT EQUIVALENT" in text
        assert "forbidden only in" in text

    def test_diff_respects_limit(self, example):
        broken = MachineDescription(
            "broken", {"A": {"x": [0]}, "B": {"x": [0]}}
        )
        text = diff_constraints(example, broken, limit=1)
        assert "more pairs" in text
