"""Batched window scans on the predicated and alternatives backends.

``check_range`` / ``first_free`` have kernel overrides on the bitvector
and compiled representations; the loop fallbacks in ``base.py`` (and
their predicate-aware mirror on the predicated module) must agree with
them answer-for-answer on every window and direction.
"""

import pytest

from repro.machines import alternatives_machine, example_machine
from repro.query import (
    BitvectorQueryModule,
    CompiledQueryModule,
    DiscreteQueryModule,
    PredicatedDiscreteQueryModule,
    PredicateSpace,
    clear_kernel_cache,
)

BACKENDS = [DiscreteQueryModule, BitvectorQueryModule, CompiledQueryModule]


@pytest.fixture(autouse=True)
def _fresh_kernels():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


class TestPredicatedFallbacks:
    def test_check_range_matches_pointwise_check(self):
        qm = PredicatedDiscreteQueryModule(example_machine())
        qm.assign("A", 2)
        window = qm.check_range("A", 0, 8)
        assert window == [qm.check("A", c) for c in range(8)]
        assert len(window) == 8
        assert window[2] is False

    def test_check_range_is_predicate_aware(self):
        space = PredicateSpace()
        negated = space.complement("p")
        qm = PredicatedDiscreteQueryModule(
            example_machine(), predicates=space
        )
        qm.assign("A", 2, predicate="p")
        # Under the disjoint predicate the same slots are free; under an
        # unrelated (may-overlap) predicate they are not.
        assert qm.check_range("A", 2, 3, predicate=negated) == [True]
        assert qm.check_range("A", 2, 3, predicate="q") == [False]

    def test_first_free_scans_upward_and_downward(self):
        qm = PredicatedDiscreteQueryModule(example_machine())
        qm.assign("A", 0)
        booleans = qm.check_range("A", 0, 10)
        upward = qm.first_free("A", 0, 10)
        downward = qm.first_free("A", 0, 10, direction=-1)
        assert upward == booleans.index(True)
        assert downward == 9 - booleans[::-1].index(True)
        assert upward != 0  # cycle 0 is taken

    def test_first_free_exhausted_window_returns_none(self):
        qm = PredicatedDiscreteQueryModule(example_machine())
        token = qm.assign("A", 3)
        assert qm.first_free("A", 3, 4) is None
        qm.free(token)
        assert qm.first_free("A", 3, 4) == 3

    def test_first_free_respects_disjoint_predicates(self):
        space = PredicateSpace()
        negated = space.complement("p")
        qm = PredicatedDiscreteQueryModule(
            example_machine(), predicates=space
        )
        qm.assign("A", 0, predicate="p")
        # The disjoint predicate may share cycle 0; true may not.
        assert qm.first_free("A", 0, 4, predicate=negated) == 0
        assert qm.first_free("A", 0, 4) > 0

    def test_batched_scans_charge_like_the_loop(self):
        reference = PredicatedDiscreteQueryModule(example_machine())
        batched = PredicatedDiscreteQueryModule(example_machine())
        for cycle in range(5):
            reference.check("A", cycle)
        batched.check_range("A", 0, 5)
        assert batched.work.total_units == reference.work.total_units
        assert batched.work.total_calls == reference.work.total_calls


class TestAlternativesAcrossBackends:
    def _filled(self, backend):
        qm = backend(alternatives_machine())
        qm.assign("add", 0)
        qm.assign("add", 1)
        return qm

    def test_check_range_agrees_across_backends(self):
        windows = [
            self._filled(backend).check_range("add", 0, 6)
            for backend in BACKENDS
        ]
        assert windows[0] == windows[1] == windows[2]

    @pytest.mark.parametrize("direction", [1, -1])
    def test_first_free_agrees_across_backends(self, direction):
        answers = [
            self._filled(backend).first_free(
                "add", 0, 6, direction=direction
            )
            for backend in BACKENDS
        ]
        assert answers[0] == answers[1] == answers[2]

    @pytest.mark.parametrize("direction", [1, -1])
    def test_first_free_with_alternatives_agrees(self, direction):
        results = []
        for backend in BACKENDS:
            qm = backend(alternatives_machine())
            qm.assign("mov.0", 0)
            results.append(
                qm.first_free_with_alternatives(
                    "mov", 0, 6, direction=direction
                )
            )
        assert results[0] == results[1] == results[2]
        cycle, alternative = results[0]
        assert cycle is not None and alternative is not None

    def test_variant_major_scan_matches_cycle_major(self):
        """The batched by-variant helper must answer exactly like the
        cycle-major loop the base class documents."""
        loop_qm = DiscreteQueryModule(alternatives_machine())
        batched_qm = DiscreteQueryModule(alternatives_machine())
        for qm in (loop_qm, batched_qm):
            qm.assign("mov.0", 0)
            qm.assign("mov.1", 0)
        expected = loop_qm.first_free_with_alternatives("mov", 0, 6)
        actual = batched_qm._first_free_by_variant("mov", 0, 6)
        assert actual == expected
