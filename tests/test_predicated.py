"""Tests for predicate-aware contention queries (EMS extension)."""

import pytest

from repro.errors import QueryError
from repro.machines import example_machine
from repro.query.predicated import (
    TRUE,
    PredicatedDiscreteQueryModule,
    PredicateSpace,
)


@pytest.fixture
def space():
    return PredicateSpace()


@pytest.fixture
def module(space):
    return PredicatedDiscreteQueryModule(example_machine(), predicates=space)


class TestPredicateSpace:
    def test_complement_is_disjoint(self, space):
        other = space.complement("p1")
        assert other == "!p1"
        assert not space.may_overlap("p1", "!p1")

    def test_complement_of_complement(self, space):
        assert space.complement("!p1") == "p1"

    def test_unrelated_predicates_may_overlap(self, space):
        assert space.may_overlap("p1", "p2")

    def test_same_predicate_overlaps_itself(self, space):
        assert space.may_overlap("p1", "p1")

    def test_true_overlaps_everything(self, space):
        space.complement("p1")
        assert space.may_overlap(TRUE, "p1")
        assert space.may_overlap("!p1", TRUE)

    def test_explicit_disjointness(self, space):
        space.declare_disjoint("case_a", "case_b")
        assert not space.may_overlap("case_a", "case_b")
        assert not space.may_overlap("case_b", "case_a")

    def test_true_cannot_be_disjoint(self, space):
        with pytest.raises(QueryError):
            space.declare_disjoint(TRUE, "p")
        with pytest.raises(QueryError):
            space.complement(TRUE)

    def test_self_disjoint_rejected(self, space):
        with pytest.raises(QueryError):
            space.declare_disjoint("p", "p")


class TestPredicatedQueries:
    def test_default_predicate_behaves_like_plain_module(self, module):
        module.assign("B", 0)
        assert not module.check("B", 1)
        assert module.check("B", 4)

    def test_disjoint_predicates_share_slots(self, module, space):
        not_p = space.complement("p")
        module.assign("B", 0, predicate="p")
        # The if-converted else-branch twin fits in the very same cycle.
        assert module.check("B", 0, predicate=not_p)
        module.assign("B", 0, predicate=not_p)
        # A third op under TRUE overlaps both.
        assert not module.check("B", 0, predicate=TRUE)

    def test_overlapping_predicates_conflict(self, module):
        module.assign("B", 0, predicate="p")
        assert not module.check("B", 1, predicate="q")

    def test_holders_recorded(self, module, space):
        not_p = space.complement("p")
        module.assign("A", 0, predicate="p")
        module.assign("A", 0, predicate=not_p)
        holders = module.holders_at("r0", 0)
        assert [pred for pred, _ident in holders] == ["p", "!p"]

    def test_free_removes_only_own_holding(self, module, space):
        not_p = space.complement("p")
        t1 = module.assign("A", 0, predicate="p")
        module.assign("A", 0, predicate=not_p)
        module.free(t1)
        holders = module.holders_at("r0", 0)
        assert [pred for pred, _ident in holders] == ["!p"]

    def test_free_unknown_token(self, module):
        token = module.assign("A", 0)
        module.free(token)
        with pytest.raises(QueryError):
            module.free(token)

    def test_assign_free_evicts_only_overlapping(self, module, space):
        not_p = space.complement("p")
        module.assign_free("B", 0, predicate="p")
        kept, _ = module.assign_free("B", 0, predicate=not_p)
        # TRUE overlaps both: evicts the pair.
        _t, evicted = module.assign_free("B", 0, predicate=TRUE)
        assert len(evicted) == 2
        assert kept in evicted

    def test_assign_free_no_eviction_when_disjoint(self, module, space):
        not_p = space.complement("p")
        module.assign_free("B", 0, predicate="p")
        _t, evicted = module.assign_free("B", 0, predicate=not_p)
        assert evicted == []

    def test_modulo_wrap(self, space):
        module = PredicatedDiscreteQueryModule(
            example_machine(), predicates=space, modulo=5
        )
        not_p = space.complement("p")
        module.assign("A", 0, predicate="p")
        assert not module.check("A", 5, predicate="p")
        assert module.check("A", 5, predicate=not_p)

    def test_modulo_self_collision_still_detected(self, space):
        module = PredicatedDiscreteQueryModule(
            example_machine(), predicates=space, modulo=2
        )
        assert not module.check("B", 0, predicate="p")

    def test_work_counts_holders(self, module, space):
        not_p = space.complement("p")
        module.assign("B", 0, predicate="p")
        module.assign("B", 0, predicate=not_p)
        before = module.work.units["check"]
        module.check("B", 0, predicate="q")
        # First slot has two holders: 1 slot + 2 holders = 3 units.
        assert module.work.units["check"] - before == 3
