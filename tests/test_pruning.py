"""Tests for covered-resource pruning (Section 5, step 1)."""

from repro.core import (
    build_generating_set,
    generated_instances,
    is_maximal,
    prune_covered_resources,
)
from repro.core.pruning import coverage_map


class TestPruneCovered:
    def test_example_prunes_to_the_two_maximal_resources(
        self, example_matrix
    ):
        resources = build_generating_set(example_matrix)
        pruned = prune_covered_resources(resources)
        assert set(pruned) == {
            frozenset({("B", 0), ("A", 1)}),
            frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}),
        }

    def test_subset_coverage_removed(self):
        big = frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)})
        small = frozenset({("B", 0), ("B", 1)})
        assert prune_covered_resources([small, big]) == [big]

    def test_duplicates_collapse(self):
        r = frozenset({("A", 0), ("B", 1)})
        assert prune_covered_resources([r, r, r]) == [r]

    def test_coverage_dominance_not_just_subset(self):
        # {A@0, A@1, A@3} covers self-latencies {0,1,2,3}, strictly more
        # than {A@0, A@1, A@2}'s {0,1,2}, without being a superset of it.
        smaller = frozenset({("A", 0), ("A", 1), ("A", 2)})
        larger = frozenset({("A", 0), ("A", 1), ("A", 3)})
        assert generated_instances(smaller) < generated_instances(larger)
        assert prune_covered_resources([smaller, larger]) == [larger]

    def test_union_coverage_preserved(self, example_matrix):
        resources = build_generating_set(example_matrix)
        pruned = prune_covered_resources(resources)
        before = set()
        for r in resources:
            before |= generated_instances(r)
        after = set()
        for r in pruned:
            after |= generated_instances(r)
        assert before == after

    def test_incomparable_resources_both_kept(self):
        a = frozenset({("A", 0), ("A", 1)})
        b = frozenset({("B", 0), ("B", 2)})
        assert set(prune_covered_resources([a, b])) == {a, b}

    def test_pruned_set_is_maximal_on_study_machine(self, mips):
        from repro.core import ForbiddenLatencyMatrix

        matrix = ForbiddenLatencyMatrix.from_machine(mips)
        pruned = prune_covered_resources(build_generating_set(matrix))
        # No pruned resource's coverage is contained in another's.
        coverages = coverage_map(pruned)
        for r in pruned:
            for other in pruned:
                if r != other:
                    assert not coverages[r] <= coverages[other]


class TestCoverageMap:
    def test_maps_every_resource(self):
        a = frozenset({("A", 0)})
        b = frozenset({("B", 0), ("B", 1)})
        cov = coverage_map([a, b])
        assert cov[a] == {("A", "A", 0)}
        assert ("B", "B", 1) in cov[b]
