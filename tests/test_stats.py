"""Tests for the Tables 1-4 metrics."""

import pytest

from repro.core import MachineDescription, ReservationTable
from repro.stats import (
    average_usages_per_op,
    average_word_usages,
    cycles_per_word,
    describe,
    reserved_bits_per_cycle,
    word_usage_count,
)


class TestWordUsageCount:
    def test_single_cycle_words(self):
        table = ReservationTable({"r": [0, 3], "s": [3, 5]})
        assert word_usage_count(table, 1, 0) == 3  # cycles 0, 3, 5

    def test_packed_words(self):
        table = ReservationTable({"r": [0, 3], "s": [5]})
        # k=4: cycles {0,3} -> word 0, {5} -> word 1.
        assert word_usage_count(table, 4, 0) == 2

    def test_alignment_can_split_words(self):
        table = ReservationTable({"r": [0, 3]})
        assert word_usage_count(table, 4, 0) == 1
        assert word_usage_count(table, 4, 2) == 2  # 2//4=0, 5//4=1

    def test_empty_table(self):
        assert word_usage_count(ReservationTable({}), 4, 0) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            word_usage_count(ReservationTable({"r": [0]}), 0, 0)


class TestAverages:
    @pytest.fixture
    def machine(self):
        return MachineDescription(
            "m",
            {"A": {"r": [0], "s": [1]}, "B": {"r": [0, 1, 2, 3]}},
        )

    def test_average_usages(self, machine):
        assert average_usages_per_op(machine) == 3.0

    def test_average_word_usages_k1(self, machine):
        # A: cycles {0,1} -> 2 words; B: {0..3} -> 4 words; avg 3.0.
        assert average_word_usages(machine, 1) == 3.0

    def test_average_word_usages_k4(self, machine):
        # Alignment 0: A->1, B->1. Alignment 1: A->1, B->{1,4}->2.
        # Alignments 2,3 similar; average over 4 alignments and 2 ops.
        value = average_word_usages(machine, 4)
        assert 1.0 < value < 2.0

    def test_example_machine_words(self, example):
        # B spans cycles 0..7: with k=4 and alignment 0 that is 2 words.
        assert word_usage_count(example.table("B"), 4, 0) == 2


class TestHelpers:
    def test_cycles_per_word(self):
        assert cycles_per_word(15, 64) == 4  # the paper's Cydra 5 case
        assert cycles_per_word(15, 32) == 2
        assert cycles_per_word(7, 64) == 9  # MIPS/Alpha case
        assert cycles_per_word(100, 64) == 1  # never below 1

    def test_reserved_bits_per_cycle(self, example):
        assert reserved_bits_per_cycle(example) == 5

    def test_describe_row(self, example):
        stats = describe(example, word_cycles=(1, 4))
        assert stats.num_resources == 5
        row = stats.row((1, 4))
        assert row[0] == "paper-example"
        assert len(row) == 5


class TestWeightedAverages:
    def test_frequencies_normalized(self):
        from repro.stats import operation_frequencies

        freq = operation_frequencies(["a", "a", "b", "c"])
        assert freq == {"a": 0.5, "b": 0.25, "c": 0.25}
        assert operation_frequencies([]) == {}

    def test_weighted_usages_pessimism(self, example):
        """Weighting toward the simple op A lowers the average — the
        paper's remark that equal frequencies are pessimistic."""
        from repro.stats import average_usages_per_op

        unweighted = average_usages_per_op(example)
        weighted = average_usages_per_op(
            example, weights={"A": 0.9, "B": 0.1}
        )
        assert weighted < unweighted

    def test_weighted_word_usages(self, example):
        from repro.stats import average_word_usages

        equal = average_word_usages(example, 4)
        mostly_a = average_word_usages(
            example, 4, weights={"A": 1.0, "B": 0.0}
        )
        assert mostly_a <= equal

    def test_zero_weights(self, example):
        from repro.stats import average_usages_per_op

        assert average_usages_per_op(example, weights={}) == 0.0

    def test_workload_driven_weighting(self):
        """Dynamic frequencies from the loop suite give the benchmark's
        own view of the machine's usage cost."""
        from repro.core import reduce_machine
        from repro.machines import cydra5_subset
        from repro.stats import (
            average_usages_per_op,
            operation_frequencies,
        )
        from repro.workloads import loop_suite

        machine = cydra5_subset()
        opcodes = []
        for graph in loop_suite(50):
            for opcode in graph.opcodes():
                variants = machine.alternatives_of(opcode)
                opcodes.append(variants[0])
        weights = operation_frequencies(opcodes)
        reduced = reduce_machine(machine).reduced
        weighted = average_usages_per_op(reduced, weights=weights)
        assert 0 < weighted < 20
