"""CLI coverage for ``repro profile`` and the ``--trace``/``--metrics``
flags on ``reduce``, ``schedule``, and ``automata``."""

import json

import pytest

from repro import obs
from repro.cli import main


class TestProfileCommand:
    def test_profile_prints_breakdown(self, capsys):
        assert main(["profile", "cydra5-subset", "--kernel", "daxpy"]) == 0
        out = capsys.readouterr().out
        assert "phases" in out
        assert "reduce.generating_set" in out
        assert "query functions" in out
        assert "check" in out

    def test_profile_example_native_fallback(self, capsys):
        # The example machine lacks the Cydra-5 repertoire; profiling must
        # fall back to machine-native loops (this is the CI smoke test).
        assert main(["profile", "example", "--loops", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile.loops" in out

    def test_profile_metrics_stdout_is_pure_json(self, capsys):
        assert main(["profile", "example", "--loops", "1",
                     "--metrics", "-"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["schema"] == "repro-obs-metrics"
        assert document["version"] == obs.METRICS_SCHEMA_VERSION
        assert document["meta"]["machine"] == "paper-example"

    def test_profile_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        assert main([
            "profile", "cydra5-subset", "--kernel", "daxpy",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]) == 0
        trace = json.loads(trace_path.read_text())
        categories = {e["cat"] for e in trace["traceEvents"]}
        assert {"profile", "reduce", "sched", "query"} <= categories
        metrics = json.loads(metrics_path.read_text())
        assert metrics["queries"]["check"]["calls"] > 0
        err = capsys.readouterr().err
        assert "perfetto" in err

    def test_profile_reduced(self, capsys):
        assert main(["profile", "cydra5-subset", "--kernel", "daxpy",
                     "--reduced"]) == 0
        out = capsys.readouterr().out
        assert "scheduled_on=reduced" in out

    def test_profile_leaves_tracing_disabled(self, capsys):
        assert main(["profile", "example", "--loops", "1"]) == 0
        assert obs.current() is None


class TestObservabilityFlags:
    def test_schedule_trace_has_sched_and_query_spans(self, tmp_path,
                                                      capsys):
        trace_path = tmp_path / "t.json"
        assert main([
            "schedule", "cydra5-subset", "--kernel", "daxpy",
            "--trace", str(trace_path),
        ]) == 0
        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        categories = {e["cat"] for e in events}
        assert {"sched", "query"} <= categories
        names = {e["name"] for e in events}
        assert "ims.schedule" in names
        assert "ims.attempt" in names
        assert "check" in names  # per-call query spans
        assert trace["otherData"]["producer"] == "repro.obs"

    def test_schedule_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        assert main([
            "schedule", "cydra5-subset", "--kernel", "daxpy",
            "--metrics", str(metrics_path),
        ]) == 0
        document = json.loads(metrics_path.read_text())
        assert document["schema"] == "repro-obs-metrics"
        assert document["meta"]["command"] == "schedule"
        assert document["queries"]["check"]["units"] >= \
            document["queries"]["check"]["calls"]

    def test_reduce_metrics_and_trace(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        assert main([
            "reduce", "example",
            "--metrics", str(metrics_path), "--trace", str(trace_path),
        ]) == 0
        document = json.loads(metrics_path.read_text())
        assert document["counters"]["reduce.algorithm1.pairs"] > 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"forbidden_matrix", "generating_set", "selection",
                "verify"} <= names

    def test_automata_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main(["automata", "example", "--trace", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "build_monolithic" in names
        assert "build_factored" in names

    def test_metrics_stdout_moves_report_to_stderr(self, capsys):
        # With ``--metrics -`` stdout must be pure JSON on every
        # observability-enabled command, not just ``profile``.
        assert main(["schedule", "cydra5-subset", "--kernel", "daxpy",
                     "--metrics", "-"]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["schema"] == "repro-obs-metrics"
        assert "scheduled at MII" in captured.err

    def test_unwritable_export_path_exits_2(self, capsys):
        code = main(["schedule", "cydra5-subset", "--kernel", "daxpy",
                     "--trace", "/nonexistent-dir/t.json"])
        assert code == 2
        assert "cannot write trace" in capsys.readouterr().err

    def test_no_flags_no_files(self, capsys):
        # Without --trace/--metrics nothing activates tracing.
        assert main(["reduce", "example"]) == 0
        assert obs.current() is None


class TestLintListRules:
    def test_text_listing(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "empty-operation" in out

    def test_json_listing(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        rules = json.loads(capsys.readouterr().out)
        assert isinstance(rules, list) and rules
        for rule in rules:
            assert set(rule) == {"id", "severity", "summary"}
        assert any(r["id"] == "empty-operation" for r in rules)


@pytest.fixture(autouse=True)
def _tracing_disabled_after_each_test():
    yield
    assert obs.current() is None


class TestFlamegraphNoSpans:
    def test_profile_flamegraph_no_span_run(
        self, tmp_path, monkeypatch, capsys
    ):
        """A run that records no spans still writes a clean (empty) file.

        ``flamegraph.pl``/speedscope treat a blank line as a malformed
        frame, so the no-span export must be zero bytes, not "\\n".
        """
        from repro.obs import profile as obs_profile

        monkeypatch.setattr(
            obs_profile, "profile_machine",
            lambda machine, tracer=None, **kwargs: tracer,
        )
        out = tmp_path / "flame.txt"
        rc = main(
            ["profile", "example", "--flamegraph", str(out)]
        )
        assert rc == 0
        assert out.read_text() == ""
        assert "wrote collapsed stacks" in capsys.readouterr().err
