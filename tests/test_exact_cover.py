"""Tests for the exact minimum-cover solver and heuristic quality."""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    SearchExhausted,
    build_generating_set,
    exact_minimum_cover,
    generated_instances,
    machine_from_selection,
    matrices_equal,
    prune_covered_resources,
    select_resources,
)
from repro.machines import (
    alternatives_machine,
    dense_conflict_machine,
    example_machine,
    single_op_machine,
)


def _setup(machine):
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    pool = prune_covered_resources(build_generating_set(matrix))
    return matrix, pool


class TestExactCover:
    def test_example_optimum_is_five_usages(self):
        """The paper's Figure 1d cover (5 usages) is provably optimal."""
        machine = example_machine()
        matrix, pool = _setup(machine)
        exact = exact_minimum_cover(matrix, pool)
        assert exact.total_usages == 5

    def test_heuristic_matches_optimum_on_example(self):
        machine = example_machine()
        matrix, pool = _setup(machine)
        heuristic = select_resources(matrix, pool)
        exact = exact_minimum_cover(matrix, pool)
        assert heuristic.total_usages == exact.total_usages

    def test_exact_solution_covers_everything(self):
        machine = dense_conflict_machine()
        matrix, pool = _setup(machine)
        exact = exact_minimum_cover(matrix, pool)
        covered = set()
        for usages in exact.resources:
            covered |= generated_instances(usages)
        assert covered >= set(matrix.instances())

    def test_exact_reduction_is_equivalent(self):
        machine = dense_conflict_machine()
        matrix, pool = _setup(machine)
        exact = exact_minimum_cover(matrix, pool)
        reduced = machine_from_selection(machine, exact)
        assert matrices_equal(machine, reduced)

    @pytest.mark.parametrize(
        "factory",
        [example_machine, single_op_machine, alternatives_machine,
         dense_conflict_machine],
    )
    def test_exact_never_beats_by_construction(self, factory):
        """Exact optimum <= heuristic, always (when search completes)."""
        machine = factory()
        matrix, pool = _setup(machine)
        heuristic = select_resources(matrix, pool)
        exact = exact_minimum_cover(
            matrix, pool, upper_bound=heuristic.total_usages + 1
        )
        assert exact.total_usages <= heuristic.total_usages

    def test_upper_bound_priming(self):
        machine = example_machine()
        matrix, pool = _setup(machine)
        exact = exact_minimum_cover(matrix, pool, upper_bound=6)
        assert exact.total_usages == 5

    def test_node_limit_raises(self):
        machine = dense_conflict_machine()
        matrix, pool = _setup(machine)
        with pytest.raises(SearchExhausted):
            exact_minimum_cover(matrix, pool, node_limit=2)

    def test_unreachable_upper_bound(self):
        from repro.errors import ReductionError

        machine = example_machine()
        matrix, pool = _setup(machine)
        with pytest.raises(ReductionError):
            exact_minimum_cover(matrix, pool, upper_bound=1)
