"""Tests for value lifetimes and register-pressure metrics."""

import pytest

from repro.machines import cydra5_subset
from repro.scheduler import (
    DependenceGraph,
    IterativeModuloScheduler,
    lifetime_report,
    max_live,
    register_requirement,
    value_lifetimes,
)
from repro.workloads import KERNELS, loop_suite


@pytest.fixture(scope="module")
def scheduler():
    return IterativeModuloScheduler(cydra5_subset())


@pytest.fixture(scope="module")
def inner_product(scheduler):
    return scheduler.schedule(KERNELS["inner-product"]())


class TestValueLifetimes:
    def test_only_flow_producers_counted(self, scheduler):
        """Operations without flow successors produce no value; in the
        daxpy kernel every op anchors something (the store feeds the
        loop control), so add a true sink and check it is skipped."""
        graph = KERNELS["daxpy"]()
        graph.add_operation("dead_store", "store_s")
        result = scheduler.schedule(graph)
        producers = {lt.producer for lt in value_lifetimes(result)}
        assert "dead_store" not in producers
        assert all(lt.length >= 0 for lt in value_lifetimes(result))

    def test_accumulator_lifetime_spans_ii(self, inner_product):
        """The accumulator is consumed by itself one iteration later:
        its lifetime is exactly II."""
        acc = next(
            lt
            for lt in value_lifetimes(inner_product)
            if lt.producer == "acc"
        )
        assert acc.length == inner_product.ii
        assert acc.registers == 1

    def test_long_latency_values_need_multiple_registers(
        self, inner_product
    ):
        loads = [
            lt
            for lt in value_lifetimes(inner_product)
            if lt.producer.startswith("ld_")
        ]
        assert loads
        # Memory latency 18 over a small II forces overlapped copies.
        assert all(lt.registers >= 2 for lt in loads)

    def test_registers_formula(self, inner_product):
        for lt in value_lifetimes(inner_product):
            assert lt.registers == max(
                1, -(-lt.length // inner_product.ii)
            )

    def test_lifetimes_sorted(self, inner_product):
        starts = [lt.start for lt in value_lifetimes(inner_product)]
        assert starts == sorted(starts)


class TestAggregates:
    def test_register_requirement_is_sum(self, inner_product):
        assert register_requirement(inner_product) == sum(
            lt.registers for lt in value_lifetimes(inner_product)
        )

    def test_max_live_bounded_by_total(self, inner_product):
        assert 1 <= max_live(inner_product) <= register_requirement(
            inner_product
        )

    def test_max_live_counts_overlap(self, scheduler):
        """A single self-recurrent op whose value lives exactly II has
        one value live in every slot."""
        graph = DependenceGraph("one")
        graph.add_operation("x", "iadd")
        graph.add_dependence("x", "x", 2, distance=1)
        result = scheduler.schedule(graph)
        assert max_live(result) == 1

    def test_suite_metrics_are_finite_and_positive(self, scheduler):
        for graph in loop_suite(15, seed=9):
            result = scheduler.schedule(graph)
            assert register_requirement(result) >= 1
            assert max_live(result) >= 1

    def test_report_mentions_totals(self, inner_product):
        text = lifetime_report(inner_product)
        assert "MaxLive" in text
        assert "rotating registers" in text
        assert "acc" in text
