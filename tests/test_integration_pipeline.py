"""End-to-end integration: MDL text -> reduction -> scheduling ->
expansion -> bundling -> simulation -> serialization.

One walk through the whole toolchain, checking each stage's artifact
against the previous stage's guarantees.  This is the test a downstream
adopter would read first.
"""

import pytest

from repro import mdl
from repro.analysis import describe_reduction, has_collision
from repro.core import assert_equivalent, reduce_machine
from repro.machines import cydra5_subset
from repro.scheduler import (
    IterativeModuloScheduler,
    OperationDrivenScheduler,
    TraceScheduler,
    bundle,
    expand,
    max_live,
    register_requirement,
    serialize,
)
from repro.simulate import simulate
from repro.workloads import KERNELS, block_suite


@pytest.fixture(scope="module")
def machine_text():
    return mdl.dumps(cydra5_subset())


@pytest.fixture(scope="module")
def toolchain(machine_text):
    """Run the full pipeline once; stages assert as they go."""
    # 1. Parse the architects' description.
    original = mdl.loads(machine_text)

    # 2. Reduce it for the compiler, verified exact.
    reduction = reduce_machine(
        original, objective="word-uses", word_cycles=7
    )
    assert_equivalent(original, reduction.reduced)

    # 3. Software-pipeline a kernel with the reduced description.
    scheduler = IterativeModuloScheduler(
        reduction.reduced, representation="bitvector", word_cycles=7
    )
    result = scheduler.schedule(KERNELS["hydro"]())
    return original, reduction, result


class TestPipeline:
    def test_reduction_stage(self, toolchain):
        original, reduction, _result = toolchain
        assert reduction.reduced.num_resources < original.num_resources
        assert "state bits/cycle" in describe_reduction(reduction)

    def test_schedule_stage(self, toolchain):
        _original, _reduction, result = toolchain
        assert result.optimal
        result.graph.verify_schedule(result.times, ii=result.ii)

    def test_expansion_runs_on_original_hardware(self, toolchain):
        """Expanded overlapped iterations simulate cleanly on the
        ORIGINAL machine even though scheduling used the reduced one."""
        original, _reduction, result = toolchain
        expanded = expand(result, iterations=5)
        placements = [
            (result.chosen_opcodes[name], cycle)
            for (name, _iteration), cycle in expanded.placements.items()
        ]
        report = simulate(original, placements)
        assert report.clean
        assert not has_collision(original, placements)

    def test_bundling_stage(self, toolchain):
        original, _reduction, result = toolchain
        bundling = bundle(
            original, result.times, result.chosen_opcodes, modulo=result.ii
        )
        assert bundling.num_words == result.ii
        assert 0 < bundling.density <= 1

    def test_register_metrics_stage(self, toolchain):
        _original, _reduction, result = toolchain
        assert register_requirement(result) >= max_live(result) // 2
        assert max_live(result) >= 1

    def test_serialization_stage(self, toolchain):
        _original, _reduction, result = toolchain
        payload = serialize.modulo_result_to_json(result)
        text = serialize.dumps(payload)
        data = serialize.loads(text)
        graph = serialize.graph_from_json(data["graph"])
        graph.verify_schedule(data["times"], ii=data["ii"])

    def test_mdl_round_trip_of_reduced(self, toolchain):
        original, reduction, _result = toolchain
        text = mdl.dumps(reduction.reduced)
        assert_equivalent(original, mdl.loads(text))


class TestTraceIntegration:
    def test_blocks_then_simulation(self, machine_text):
        original = mdl.loads(machine_text)
        reduced = reduce_machine(original).reduced
        trace = TraceScheduler(reduced).schedule(block_suite(4, seed=3))
        report = simulate(original, trace.flat_placements())
        assert report.clean

    def test_block_schedules_identical_across_descriptions(
        self, machine_text
    ):
        original = mdl.loads(machine_text)
        reduced = reduce_machine(original).reduced
        for graph_a, graph_b in zip(
            block_suite(5, seed=8), block_suite(5, seed=8)
        ):
            first = OperationDrivenScheduler(original).schedule(graph_a)
            second = OperationDrivenScheduler(reduced).schedule(graph_b)
            assert first.times == second.times
            assert first.chosen_opcodes == second.chosen_opcodes
