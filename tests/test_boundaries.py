"""Tests for dangling requirements and trace scheduling."""

import pytest

from repro.core import schedule_is_contention_free
from repro.errors import ScheduleError
from repro.machines import example_machine, mips_r3000
from repro.scheduler import (
    DependenceGraph,
    OperationDrivenScheduler,
    TraceScheduler,
    chain,
    dangling_requirements,
)


@pytest.fixture
def machine():
    return example_machine()


@pytest.fixture
def scheduler(machine):
    return OperationDrivenScheduler(machine)


def _single_op_block(opcode, name="blk"):
    graph = DependenceGraph(name)
    graph.add_operation("x", opcode)
    return graph


class TestDanglingRequirements:
    def test_op_contained_in_block_does_not_dangle(self, scheduler):
        result = scheduler.schedule(_single_op_block("A"))
        # A's table spans 3 cycles; with block_length >= 3 nothing hangs.
        assert dangling_requirements(result, block_length=3) == []

    def test_long_tail_dangles(self, scheduler):
        result = scheduler.schedule(_single_op_block("B"))
        # B spans 8 cycles; cutting the block at 5 leaves a 3-cycle tail.
        dangling = dangling_requirements(result, block_length=5)
        assert dangling == [("B", -5)]

    def test_default_block_length_is_schedule_length(self, scheduler):
        result = scheduler.schedule(_single_op_block("B"))
        # Block ends right after the last *issue*: B@0 -> length 1, its
        # reservation tail of 7 cycles dangles.
        assert dangling_requirements(result) == [("B", -1)]

    def test_dangling_sorted_by_cycle(self, scheduler):
        graph = DependenceGraph("blk")
        graph.add_operation("b1", "B")
        graph.add_operation("b2", "B")
        result = scheduler.schedule(graph)
        dangling = dangling_requirements(result, block_length=6)
        cycles = [cycle for _op, cycle in dangling]
        assert cycles == sorted(cycles)

    def test_mips_divide_dangles_across_blocks(self):
        machine = mips_r3000()
        result = OperationDrivenScheduler(machine).schedule(
            _single_op_block("div")
        )
        dangling = dangling_requirements(result, block_length=4)
        assert ("div", -4) in dangling


class TestTraceScheduler:
    def test_empty_trace_rejected(self, machine):
        with pytest.raises(ScheduleError):
            TraceScheduler(machine).schedule([])

    def test_single_block_matches_plain_scheduler(self, machine):
        graph = chain("c", ["A", "B"], latency=1)
        plain = OperationDrivenScheduler(machine).schedule(
            chain("c", ["A", "B"], latency=1)
        )
        trace = TraceScheduler(machine).schedule([graph])
        assert trace.blocks[0].times == plain.times

    def test_boundary_threads_into_next_block(self, machine):
        first = _single_op_block("B", "first")
        second = _single_op_block("B", "second")
        trace = TraceScheduler(machine).schedule([first, second])
        # Block 1 is 1 cycle long (single issue at 0), so B@-1 dangles;
        # the second block's B must dodge distances -3..3 from it.
        assert trace.boundaries[0] == [("B", -1)]
        assert trace.blocks[1].times["x"] >= 3

    def test_flat_trace_is_contention_free(self, machine):
        blocks = [
            _single_op_block("B", "b0"),
            chain("b1", ["A", "B"], latency=1),
            _single_op_block("B", "b2"),
        ]
        trace = TraceScheduler(machine).schedule(blocks)
        assert schedule_is_contention_free(
            machine, trace.flat_placements()
        )

    def test_requirements_reach_through_short_blocks(self):
        """A 34-cycle MIPS divide tail must constrain a block two hops
        downstream when the middle block is short."""
        machine = mips_r3000()
        trace = TraceScheduler(machine).schedule(
            [
                _single_op_block("div", "head"),
                _single_op_block("jump", "middle"),
                _single_op_block("div", "tail"),
            ]
        )
        assert any(op == "div" for op, _c in trace.boundaries[1])
        assert trace.blocks[2].times["x"] > 20
        assert schedule_is_contention_free(
            machine, trace.flat_placements()
        )

    def test_block_start_offsets(self, machine):
        blocks = [chain("b0", ["A", "A"], latency=1), _single_op_block("A")]
        trace = TraceScheduler(machine).schedule(blocks)
        assert trace.block_start(0) == 0
        assert trace.block_start(1) == trace.blocks[0].length


class TestWitness:
    def test_witness_for_weakened_machine(self, machine):
        from repro.core import MachineDescription, find_witness

        weak = MachineDescription(
            "weak",
            {"A": {"r0": [0]}, "B": {"r3": [2, 3, 4, 5], "r4": [6, 7]}},
        )
        witness = find_witness(machine, weak)
        assert witness is not None
        assert witness.conflicts_on == machine.name
        assert schedule_is_contention_free(weak, witness.placements)
        assert not schedule_is_contention_free(
            machine, witness.placements
        )

    def test_no_witness_for_equivalent(self, machine):
        from repro.core import find_witness, reduce_machine

        assert find_witness(machine, reduce_machine(machine).reduced) is None

    def test_describe_mentions_both_machines(self, machine):
        from repro.core import MachineDescription, find_witness

        other = MachineDescription("other", {"A": {"x": [0]}, "B": {"x": [0]}})
        witness = find_witness(machine, other)
        text = witness.describe()
        assert machine.name in text and "other" in text
