"""Tests for the usage-selection heuristic (paper Step 3)."""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    build_generating_set,
    generated_instances,
    prune_covered_resources,
    select_resources,
)
from repro.core.selection import RES_USES, WORD_USES
from repro.errors import ReductionError


def _pipeline(md, objective=RES_USES, word_cycles=1):
    matrix = ForbiddenLatencyMatrix.from_machine(md)
    pool = prune_covered_resources(build_generating_set(matrix))
    return matrix, select_resources(
        matrix, pool, objective=objective, word_cycles=word_cycles
    )


class TestResUsesObjective:
    def test_example_reaches_paper_minimum(self, example):
        """Figure 1d: 2 resources, 1 usage for A, 4 for B."""
        _matrix, selection = _pipeline(example)
        assert len(selection.resources) == 2
        assert selection.total_usages == 5
        per_op = {"A": 0, "B": 0}
        for usages in selection.resources:
            for op, _cycle in usages:
                per_op[op] += 1
        assert per_op == {"A": 1, "B": 4}

    def test_selection_covers_every_instance(self, example):
        matrix, selection = _pipeline(example)
        covered = set()
        for usages in selection.resources:
            covered |= generated_instances(usages)
        assert covered >= set(matrix.instances())

    def test_selected_usages_come_from_origins(self, example):
        _matrix, selection = _pipeline(example)
        for usages, origin in zip(selection.resources, selection.origins):
            assert usages <= origin

    def test_no_empty_resources(self, mips):
        _matrix, selection = _pipeline(mips)
        assert all(selection.resources)


class TestWordUsesObjective:
    def test_free_fill_adds_word_mates(self):
        """With k=4 the word objective may select extra usages that cost
        no additional words; usage count can only grow vs what covering
        strictly requires, never the word count."""
        md = MachineDescription(
            "w",
            {
                "P": {"bus": [0, 1, 2, 3]},
                "Q": {"bus": [0]},
            },
        )
        _m1, res_sel = _pipeline(md, RES_USES)
        _m2, word_sel = _pipeline(md, WORD_USES, word_cycles=4)
        assert word_sel.total_usages >= res_sel.total_usages

    def test_word_objective_covers(self, mips):
        matrix, selection = _pipeline(mips, WORD_USES, word_cycles=4)
        covered = set()
        for usages in selection.resources:
            covered |= generated_instances(usages)
        assert covered >= set(matrix.instances())

    def test_word_cycles_recorded(self, example):
        _matrix, selection = _pipeline(example, WORD_USES, word_cycles=3)
        assert selection.word_cycles == 3
        assert selection.objective == WORD_USES


class TestErrors:
    def test_unknown_objective(self, example_matrix):
        with pytest.raises(ReductionError):
            select_resources(example_matrix, [], objective="bogus")

    def test_bad_word_cycles(self, example_matrix):
        with pytest.raises(ReductionError):
            select_resources(
                example_matrix, [], objective=WORD_USES, word_cycles=0
            )

    def test_uncoverable_pool_detected(self, example_matrix):
        pool = [frozenset({("A", 0)})]  # cannot generate F[B][B] etc.
        with pytest.raises(ReductionError):
            select_resources(example_matrix, pool)


class TestDeterminism:
    def test_same_input_same_output(self, mips):
        _m1, first = _pipeline(mips)
        _m2, second = _pipeline(mips)
        assert first.resources == second.resources
