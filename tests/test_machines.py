"""Invariant tests for the study machine models (paper Section 6 targets)."""

import pytest

from repro.core import ForbiddenLatencyMatrix, reduce_machine
from repro.machines import STUDY_MACHINES


@pytest.fixture(scope="module")
def matrices():
    return {
        name: (factory(), ForbiddenLatencyMatrix.from_machine(factory()))
        for name, factory in STUDY_MACHINES.items()
    }


class TestMips:
    """Paper Table 4: 15 classes, 428 forbidden latencies, all < 34."""

    def test_class_count(self, matrices):
        _md, matrix = matrices["mips-r3000"]
        assert len(matrix.operation_classes()) == 15

    def test_max_latency_below_34(self, matrices):
        _md, matrix = matrices["mips-r3000"]
        assert matrix.max_latency == 33

    def test_latency_count_band(self, matrices):
        _md, matrix = matrices["mips-r3000"]
        assert 300 <= matrix.instance_count <= 600

    def test_single_issue(self, matrices):
        md, matrix = matrices["mips-r3000"]
        for op_x in md.operation_names:
            for op_y in md.operation_names:
                assert matrix.is_forbidden(op_x, op_y, 0)


class TestAlpha:
    """Paper Table 3: 12 classes, 293 forbidden latencies, all < 58."""

    def test_class_count(self, matrices):
        _md, matrix = matrices["alpha21064"]
        assert len(matrix.operation_classes()) == 12

    def test_max_latency_below_58(self, matrices):
        _md, matrix = matrices["alpha21064"]
        assert matrix.max_latency == 57

    def test_latency_count_band(self, matrices):
        _md, matrix = matrices["alpha21064"]
        assert 200 <= matrix.instance_count <= 400

    def test_dual_issue(self, matrices):
        """An integer op and an FP op may issue in the same cycle."""
        _md, matrix = matrices["alpha21064"]
        assert not matrix.is_forbidden("int_alu", "fadd", 0)
        assert matrix.is_forbidden("int_alu", "load", 0)
        assert matrix.is_forbidden("fadd", "fmul", 0)


class TestCydra5:
    """Paper Tables 1-2: 52/12 classes; latencies < 41 (full), < 21
    (subset).  Our model is smaller; the invariants that matter are the
    latency caps and the unit structure."""

    def test_full_max_latency_below_41(self, matrices):
        _md, matrix = matrices["cydra5"]
        assert 30 <= matrix.max_latency <= 40

    def test_subset_max_latency_below_21(self, matrices):
        _md, matrix = matrices["cydra5-subset"]
        assert 10 <= matrix.max_latency <= 20

    def test_subset_has_twelve_operations(self, matrices):
        md, _matrix = matrices["cydra5-subset"]
        assert md.num_operations == 12

    def test_subset_resources_are_the_used_ones(self, matrices):
        md, _matrix = matrices["cydra5-subset"]
        used = set()
        for _op, table in md.items():
            used.update(table.resources)
        assert set(md.resources) == used

    def test_alternative_groups(self, matrices):
        md, _matrix = matrices["cydra5"]
        assert md.alternatives_of("load_s") == ("load_s.0", "load_s.1")
        assert md.alternatives_of("mov") == ("mov.0", "mov.1")

    def test_ports_are_symmetric(self, matrices):
        md, _matrix = matrices["cydra5"]
        t0 = md.table("load_s.0")
        t1 = md.table("load_s.1")
        assert t0.usage_count == t1.usage_count

    def test_seven_functional_units(self, matrices):
        md, _matrix = matrices["cydra5"]
        units = {r.split(".")[0] for r in md.resources}
        # m0, m1, a0, a1, fa, fm, br (+ shared mem/rf/pred rows)
        assert {"m0", "m1", "a0", "a1", "fa", "fm", "br"} <= units

    def test_divide_family_on_multiplier(self, matrices):
        _md, matrix = matrices["cydra5"]
        assert matrix.is_forbidden("div_d", "sqrt_d", 5)


class TestReductions:
    """Section 6 headline: reductions shrink every study machine."""

    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_reduction_exact_and_smaller(self, name):
        md = STUDY_MACHINES[name]()
        reduction = reduce_machine(md)
        assert reduction.reduced.num_resources < md.num_resources
        assert reduction.reduced.total_usages < md.total_usages

    def test_mips_resource_drop_matches_paper_band(self, mips_reduction):
        """Paper: 22 -> 7 resources (3.1x); ours lands in the same band."""
        ratio = mips_reduction.resource_ratio
        assert 0.15 <= ratio <= 0.5

    def test_subset_usage_drop(self, subset_reduction):
        """Paper Table 2: 9.4 -> ~2.9 average usages per op (3.2x)."""
        original = subset_reduction.original
        reduced = subset_reduction.reduced
        factor = original.total_usages / reduced.total_usages
        assert factor >= 1.5
