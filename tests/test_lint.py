"""Unit tests for the lint subsystem: one class per rule, plus the
registry, baseline, and report machinery."""

import os

import pytest

from repro import mdl
from repro.core import matrices_equal, reduce_machine
from repro.core.machine import MachineDescription
from repro.errors import LintConfigError
from repro.lint import (
    Baseline,
    LintReport,
    lint_machine,
    lint_source,
    registered_rules,
    write_baseline,
)
from repro.machines import STUDY_MACHINES, example_machine, playdoh

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

ALL_BUILTINS = dict(STUDY_MACHINES)
ALL_BUILTINS["example"] = example_machine
ALL_BUILTINS["playdoh"] = playdoh


def rules_fired(report, rule_id):
    return [d for d in report.diagnostics if d.rule == rule_id]


def clean_machine():
    """A small description that triggers no findings at all."""
    return MachineDescription(
        "clean", {"A": {"r": [0]}, "B": {"r": [1]}}
    )


class TestCleanMachine:
    def test_no_findings(self):
        report = lint_machine(clean_machine())
        assert report.diagnostics == []
        assert report.is_clean

    def test_builtins_have_no_warnings_or_errors(self):
        for name, factory in ALL_BUILTINS.items():
            report = lint_machine(factory())
            assert report.is_clean, (name, report.render_text(True))


class TestUnusedResource:
    def test_fires_on_declared_but_unused_row(self):
        machine = MachineDescription(
            "m", {"A": {"r": [0]}}, resources=["r", "ghost"]
        )
        found = rules_fired(lint_machine(machine), "unused-resource")
        assert len(found) == 1
        assert found[0].location.resource == "ghost"
        assert found[0].severity == "warning"

    def test_silent_when_all_rows_used(self):
        assert not rules_fired(
            lint_machine(clean_machine()), "unused-resource"
        )


class TestEmptyOperation:
    def test_fires_on_operation_without_usages(self):
        machine = MachineDescription(
            "m", {"A": {"r": [0]}, "nop": {}}
        )
        found = rules_fired(lint_machine(machine), "empty-operation")
        assert [d.location.operation for d in found] == ["nop"]
        # The message explains the latency-0 self-conflict criterion.
        assert "latency 0" in found[0].message

    def test_silent_when_every_operation_reserves(self):
        assert not rules_fired(
            lint_machine(clean_machine()), "empty-operation"
        )


class TestNegativeCycle:
    def test_fires_from_source_with_line(self):
        raw = mdl.parse_file(os.path.join(FIXTURES, "illformed.mdl"))
        report = lint_source(raw)
        found = rules_fired(report, "negative-cycle")
        assert len(found) == 1
        assert found[0].severity == "error"
        assert found[0].location.cycle == -2
        assert found[0].location.line == 6
        # The unbuildable description is itself reported.
        assert rules_fired(report, "invalid-machine")

    def test_silent_on_valid_source(self):
        raw = mdl.parse("machine m\noperation a\n  r: 0\n")
        assert not rules_fired(lint_source(raw), "negative-cycle")


class TestCycleOverflow:
    def test_fires_beyond_bound(self):
        machine = MachineDescription("m", {"A": {"r": [0, 600]}})
        found = rules_fired(lint_machine(machine), "cycle-overflow")
        assert [d.location.cycle for d in found] == [600]

    def test_bound_is_configurable(self):
        machine = MachineDescription("m", {"A": {"r": [0, 600]}})
        report = lint_machine(machine, options={"max_cycle": 1000})
        assert not rules_fired(report, "cycle-overflow")


class TestDuplicateAlternative:
    def test_fires_on_identical_variants(self):
        machine = MachineDescription(
            "m",
            {"mov.0": {"r": [0]}, "mov.1": {"r": [0]}},
            alternatives={"mov": ["mov.0", "mov.1"]},
        )
        found = rules_fired(
            lint_machine(machine), "duplicate-alternative"
        )
        assert len(found) == 1
        assert found[0].evidence["group"] == "mov"

    def test_silent_on_distinct_variants(self):
        machine = MachineDescription(
            "m",
            {"mov.0": {"r": [0]}, "mov.1": {"s": [0]}},
            alternatives={"mov": ["mov.0", "mov.1"]},
        )
        assert not rules_fired(
            lint_machine(machine), "duplicate-alternative"
        )


class TestDominatedAlternative:
    def test_fires_on_superset_variant(self):
        machine = MachineDescription(
            "m",
            {"mov.0": {"r": [0]}, "mov.1": {"r": [0], "s": [1]}},
            alternatives={"mov": ["mov.0", "mov.1"]},
        )
        found = rules_fired(
            lint_machine(machine), "dominated-alternative"
        )
        assert [d.location.operation for d in found] == ["mov.1"]
        assert found[0].evidence["dominated_by"] == "mov.0"

    def test_silent_on_builtin_alternatives(self):
        for name in ("cydra5", "playdoh"):
            report = lint_machine(ALL_BUILTINS[name]())
            assert not rules_fired(report, "dominated-alternative")


class TestRedundantResource:
    def test_fires_on_example_machine(self):
        # The paper's Figure 1 machine: r0, r1, r4 impose nothing beyond
        # what r2 and r3 already forbid.
        found = rules_fired(
            lint_machine(example_machine()), "redundant-resource"
        )
        assert {d.location.resource for d in found} == {"r0", "r1", "r4"}
        assert all(d.severity == "info" for d in found)

    def test_silent_on_reduced_machine(self):
        reduced = reduce_machine(example_machine()).reduced
        assert not rules_fired(
            lint_machine(reduced), "redundant-resource"
        )


class TestCollapsibleOperations:
    def test_fires_on_identical_operations(self):
        machine = MachineDescription(
            "m", {"A": {"r": [0]}, "B": {"r": [0]}, "C": {"s": [0]}}
        )
        found = rules_fired(
            lint_machine(machine), "collapsible-operations"
        )
        assert len(found) == 1
        assert found[0].evidence["class"] == ["A", "B"]

    def test_silent_when_all_classes_singletons(self):
        assert not rules_fired(
            lint_machine(clean_machine()), "collapsible-operations"
        )


class TestNonMaximalResource:
    def _corrupt_reduced(self):
        original = example_machine()
        reduced = reduce_machine(original).reduced
        tables = {
            op: {
                res: sorted(reduced.table(op).usage_set(res))
                for res in reduced.table(op).resources
            }
            for op in reduced.operation_names
        }
        # Splice A into q0 at cycle 0: the pair (A@0, B@0) makes the row
        # forbid latency 0 between A and B, which the original machine
        # allows (its only A/B constraint is latency -1).
        assert tables["B"]["q0"] == [0, 1, 3]
        assert "q0" not in tables["A"]
        tables["A"]["q0"] = [0]
        broken = MachineDescription(
            "broken-reduced", tables, resources=reduced.resources
        )
        return original, reduced, broken

    def test_fires_on_hand_corrupted_row(self):
        original, _reduced, broken = self._corrupt_reduced()
        found = rules_fired(
            lint_machine(broken, against=original),
            "non-maximal-resource",
        )
        assert [d.location.resource for d in found] == ["q0"]
        assert found[0].severity == "warning"

    def test_silent_on_genuine_reduction(self):
        original, reduced, _broken = self._corrupt_reduced()
        assert not rules_fired(
            lint_machine(reduced, against=original),
            "non-maximal-resource",
        )

    def test_skipped_without_reference(self):
        _original, _reduced, broken = self._corrupt_reduced()
        report = lint_machine(broken)
        assert "non-maximal-resource" not in report.rules_run


class TestUnpipelinedOperation:
    def test_fires_on_multi_cycle_hold(self):
        machine = MachineDescription("m", {"div": {"unit": [0, 2]}})
        found = rules_fired(
            lint_machine(machine), "unpipelined-operation"
        )
        assert len(found) == 1
        assert found[0].evidence["self_latencies"] == [2]

    def test_silent_on_fully_pipelined_operation(self):
        machine = MachineDescription(
            "m", {"alu": {"s0": [0], "s1": [1], "s2": [2]}}
        )
        assert not rules_fired(
            lint_machine(machine), "unpipelined-operation"
        )


class TestEquivalenceMismatch:
    def test_fires_with_witness_evidence(self):
        first = MachineDescription("a", {"X": {"r": [0]}, "Y": {"r": [0]}})
        second = MachineDescription("b", {"X": {"r": [0]}, "Y": {"s": [0]}})
        found = rules_fired(
            lint_machine(first, against=second), "equivalence-mismatch"
        )
        assert found
        assert all(d.severity == "error" for d in found)
        witness = found[0].evidence["witness"]
        assert witness["conflicts_on"] == "a"
        assert witness["legal_on"] == "b"

    def test_respects_mismatch_limit(self):
        first = example_machine()
        second = MachineDescription("empty-ish", {"A": {}, "B": {}})
        report = lint_machine(
            first, against=second, options={"mismatch_limit": 1}
        )
        found = rules_fired(report, "equivalence-mismatch")
        assert len(found) == 2  # one mismatch + one "omitted" marker
        assert any("omitted" in d.message for d in found)

    @pytest.mark.parametrize("name", sorted(ALL_BUILTINS))
    def test_agrees_with_matrices_equal_on_builtins(self, name):
        """`lint --against` and core.verify.matrices_equal must agree:
        the reduced description of every built-in is equivalent, and a
        perturbed one is not."""
        machine = ALL_BUILTINS[name]()
        reduced = reduce_machine(machine).reduced
        assert matrices_equal(machine, reduced)
        report = lint_machine(machine, against=reduced)
        assert not rules_fired(report, "equivalence-mismatch")

        # Drop one operation's usages: matrices now disagree, and the
        # lint audit must say so.
        ops = {
            op: machine.table(op) for op in machine.operation_names
        }
        first_op = machine.operation_names[0]
        ops[first_op] = {}
        perturbed = MachineDescription(
            name + "-perturbed", ops, resources=machine.resources
        )
        assert not matrices_equal(machine, perturbed)
        report = lint_machine(machine, against=perturbed)
        assert rules_fired(report, "equivalence-mismatch")


class TestCorruptedFixture:
    def test_reports_each_planted_defect(self):
        raw = mdl.parse_file(os.path.join(FIXTURES, "corrupted.mdl"))
        reference = mdl.load_file(
            os.path.join(FIXTURES, "corrupted_ref.mdl")
        )
        report = lint_source(raw, against=reference)
        assert {d.location.resource
                for d in rules_fired(report, "redundant-resource")} == {
            "alu.mirror"
        }
        collapsible = rules_fired(report, "collapsible-operations")
        assert collapsible and collapsible[0].evidence["class"] == [
            "add",
            "sub",
        ]
        assert rules_fired(report, "equivalence-mismatch")
        assert report.exceeds("error")
        # Findings on a file-based machine carry real source lines.
        lined = [
            d
            for d in report.diagnostics
            if d.location.line is not None
        ]
        assert lined


class TestRegistry:
    def test_rules_are_registered(self):
        ids = {r.id for r in registered_rules()}
        assert {
            "unused-resource",
            "empty-operation",
            "negative-cycle",
            "cycle-overflow",
            "duplicate-alternative",
            "dominated-alternative",
            "redundant-resource",
            "collapsible-operations",
            "non-maximal-resource",
            "unpipelined-operation",
            "equivalence-mismatch",
        } <= ids

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(LintConfigError):
            lint_machine(clean_machine(), rules=["no-such-rule"])

    def test_rule_subset_selection(self):
        machine = MachineDescription(
            "m", {"A": {"r": [0]}, "nop": {}}
        )
        report = lint_machine(machine, rules=["unused-resource"])
        assert report.rules_run == ("unused-resource",)
        assert not report.diagnostics

    def test_severity_override(self):
        report = lint_machine(
            example_machine(),
            severity_overrides={"redundant-resource": "error"},
        )
        assert report.exceeds("error")
        with pytest.raises(LintConfigError):
            lint_machine(
                clean_machine(),
                severity_overrides={"redundant-resource": "fatal"},
            )


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = lint_machine(example_machine())
        assert report.diagnostics
        write_baseline(path, [report])
        suppressed = lint_machine(
            example_machine(), baseline=Baseline.load(path)
        )
        assert not suppressed.diagnostics
        assert suppressed.suppressed == len(report.diagnostics)

    def test_write_merges_existing_entries(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [lint_machine(example_machine())])
        before = len(Baseline.load(path).entries)
        write_baseline(path, [lint_machine(ALL_BUILTINS["mips-r3000"]())])
        after = Baseline.load(path)
        assert len(after.entries) > before
        # Re-writing the same report adds nothing.
        write_baseline(path, [lint_machine(example_machine())])
        assert len(Baseline.load(path).entries) == len(after.entries)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"version\": 99}")
        with pytest.raises(LintConfigError):
            Baseline.load(str(path))

    def test_repo_baseline_covers_builtins(self):
        """The checked-in baseline keeps every built-in machine silent
        (this is what CI enforces with --fail-on info)."""
        repo_baseline = os.path.join(
            os.path.dirname(__file__), os.pardir, "lint-baseline.json"
        )
        baseline = Baseline.load(repo_baseline)
        for name, factory in ALL_BUILTINS.items():
            report = lint_machine(factory(), baseline=baseline)
            assert not report.diagnostics, (name, report.render_text(True))


class TestReport:
    def test_counts_and_thresholds(self):
        report = lint_machine(example_machine())
        counts = report.counts
        assert counts["error"] == 0 and counts["warning"] == 0
        assert counts["info"] > 0
        assert report.exceeds("info")
        assert not report.exceeds("warning")
        assert report.is_clean

    def test_to_dict_matches_documented_schema(self):
        report = lint_machine(example_machine())
        data = report.to_dict()
        assert data["version"] == 1
        assert data["machine"] == "paper-example"
        assert data["against"] is None
        assert set(data["summary"]) == {
            "error",
            "warning",
            "info",
            "suppressed",
        }
        for diag in data["diagnostics"]:
            assert set(diag) >= {"rule", "severity", "message", "location"}
            assert set(diag) <= {
                "rule",
                "severity",
                "message",
                "location",
                "hint",
                "evidence",
            }
            assert diag["severity"] in ("info", "warning", "error")
            assert set(diag["location"]) <= {
                "operation",
                "resource",
                "cycle",
                "line",
            }

    def test_text_rendering_hides_info_by_default(self):
        report = lint_machine(example_machine())
        text = report.render_text()
        assert "clean" in text
        assert "redundant-resource" not in text
        verbose = report.render_text(show_info=True)
        assert "redundant-resource" in verbose

    def test_sorted_puts_worst_first(self):
        report = LintReport(machine="m")
        report.diagnostics = lint_machine(
            example_machine(),
            severity_overrides={"collapsible-operations": "error"},
        ).diagnostics
        ordered = [d.severity for d in report.sorted().diagnostics]
        assert ordered == sorted(
            ordered, key=("error", "warning", "info").index
        )
