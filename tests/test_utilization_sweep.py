"""Tests for utilization analysis and II sweeps."""

import pytest

from repro.analysis import (
    bottlenecks,
    ii_sweep,
    sweep_report,
    utilization,
    utilization_report,
)
from repro.machines import cydra5_subset
from repro.scheduler import (
    DependenceGraph,
    IterativeModuloScheduler,
)
from repro.workloads import KERNELS


@pytest.fixture(scope="module")
def machine():
    return cydra5_subset()


@pytest.fixture(scope="module")
def scheduler(machine):
    return IterativeModuloScheduler(machine)


@pytest.fixture(scope="module")
def result(scheduler):
    return scheduler.schedule(KERNELS["inner-product"]())


class TestUtilization:
    def test_fractions_bounded(self, machine, result):
        for row in utilization(
            machine, result.times, result.chosen_opcodes, ii=result.ii
        ):
            assert 0.0 < row.fraction <= 1.0
            assert row.capacity == result.ii

    def test_sorted_most_utilized_first(self, machine, result):
        rows = utilization(
            machine, result.times, result.chosen_opcodes, ii=result.ii
        )
        fractions = [row.fraction for row in rows]
        assert fractions == sorted(fractions, reverse=True)

    def test_saturated_resource_appears_in_bottlenecks(
        self, machine, scheduler
    ):
        """A loop with as many multiplier ops as II slots saturates the
        multiplier issue row."""
        graph = DependenceGraph("mul-bound")
        for index in range(3):
            graph.add_operation("m%d" % index, "fmul_s")
        result = scheduler.schedule(graph)
        assert result.ii == 3
        tight = bottlenecks(
            machine, result.times, result.chosen_opcodes, result.ii
        )
        assert "fm.issue" in tight

    def test_scalar_interpretation(self, machine, result):
        rows = utilization(machine, result.times, result.chosen_opcodes)
        assert all(row.capacity > result.ii for row in rows)

    def test_report_renders_bars(self, machine, result):
        text = utilization_report(
            machine, result.times, result.chosen_opcodes, ii=result.ii
        )
        assert "%" in text and "|" in text

    def test_report_top_limit(self, machine, result):
        text = utilization_report(
            machine, result.times, result.chosen_opcodes,
            ii=result.ii, top=2,
        )
        assert "more resources" in text


class TestIISweep:
    def test_sweep_starts_at_mii(self, machine, result):
        points = ii_sweep(machine, KERNELS["inner-product"](), extra=2)
        assert points[0].ii == result.mii
        assert len(points) == 3

    def test_feasible_points_have_metrics(self, machine):
        points = ii_sweep(machine, KERNELS["daxpy"](), extra=1)
        for point in points:
            assert point.feasible
            assert point.registers >= 1
            assert point.max_live >= 1

    def test_register_pressure_never_rises_much_with_ii(self, machine):
        """Larger II -> less overlap -> (weakly) fewer registers; allow
        a small wobble from heuristic placement differences."""
        points = ii_sweep(machine, KERNELS["inner-product"](), extra=4)
        feasible = [p for p in points if p.feasible]
        assert feasible[0].max_live >= feasible[-1].max_live

    def test_report_lists_every_ii(self, machine):
        points = ii_sweep(machine, KERNELS["daxpy"](), extra=2)
        text = sweep_report(points)
        for point in points:
            assert ("\n  %4d " % point.ii) in ("\n" + text)
