"""The scheduling decision ledger and its provenance rollups.

Covers the ring buffer itself (bounds, tail, nesting), the scheduler
emission paths (IMS and the list scheduler under ``recording()``),
the provenance aggregations ``repro explain`` renders, ledger tails on
``ScheduleError`` and the fallback ladder, and the invariant everything
else depends on: recording must not change the schedules.
"""

import pytest

from repro.errors import ScheduleError
from repro.machines import STUDY_MACHINES
from repro.obs import ledger as obs_ledger
from repro.obs import provenance
from repro.scheduler import IterativeModuloScheduler
from repro.scheduler.list_scheduler import OperationDrivenScheduler
from repro.workloads import KERNELS, loop_suite


def _machine():
    return STUDY_MACHINES["cydra5-subset"]()


class TestDecisionLedger:
    def test_ring_is_bounded_and_counts_drops(self):
        ledger = obs_ledger.DecisionLedger(capacity=4)
        for index in range(10):
            ledger.record(obs_ledger.PLACE, {"op": "op%d" % index})
        assert len(ledger) == 4
        assert ledger.emitted == 10
        assert ledger.dropped == 6
        # The ring keeps the newest records, sequence numbers intact.
        assert [r.seq for r in ledger] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            obs_ledger.DecisionLedger(capacity=0)

    def test_tail_returns_newest_last_dicts(self):
        ledger = obs_ledger.DecisionLedger()
        ledger.record(obs_ledger.PLACE, {"op": "a"})
        ledger.record(obs_ledger.EVICT, {"op": "b"})
        ledger.record(obs_ledger.PLACE, {"op": "c"})
        tail = ledger.tail(2)
        assert [t["op"] for t in tail] == ["b", "c"]
        assert tail[-1]["kind"] == obs_ledger.PLACE
        assert ledger.tail(0) == []

    def test_recording_restores_previous_ledger(self):
        assert obs_ledger.current() is None
        with obs_ledger.recording() as outer:
            assert obs_ledger.current() is outer
            with obs_ledger.recording() as inner:
                assert obs_ledger.current() is inner
            assert obs_ledger.current() is outer
        assert obs_ledger.current() is None

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs_ledger.recording():
                raise RuntimeError("boom")
        assert obs_ledger.current() is None

    def test_active_tail_is_none_when_off(self):
        assert obs_ledger.active_tail() is None

    def test_start_stop_round_trip(self):
        ledger = obs_ledger.start(capacity=8)
        try:
            assert obs_ledger.enabled()
            assert obs_ledger.current() is ledger
        finally:
            stopped = obs_ledger.stop()
        assert stopped is ledger
        assert not obs_ledger.enabled()

    def test_clear_resets_counts(self):
        ledger = obs_ledger.DecisionLedger(capacity=2)
        for _ in range(5):
            ledger.record(obs_ledger.PLACE, {})
        ledger.clear()
        assert len(ledger) == 0
        assert ledger.dropped == 0


class TestSchedulerEmission:
    def test_ims_emits_attempts_and_places(self):
        machine = _machine()
        graph = KERNELS["daxpy"]()
        with obs_ledger.recording() as ledger:
            result = IterativeModuloScheduler(machine).schedule(graph)
        kinds = {record.kind for record in ledger}
        assert obs_ledger.ATTEMPT in kinds
        assert obs_ledger.PLACE in kinds
        places = [
            r for r in ledger if r.kind in (obs_ledger.PLACE, obs_ledger.FORCE)
        ]
        # One placement record per final decision round at the served II.
        assert {r.data["op"] for r in places} >= set(result.times)
        ends = [
            r.data for r in ledger
            if r.kind == obs_ledger.ATTEMPT and r.data["phase"] == "end"
        ]
        assert ends[-1]["succeeded"] is True
        assert ends[-1]["ii"] == result.ii

    def test_recording_does_not_change_schedules(self):
        machine = _machine()
        for graph in loop_suite(6):
            base = IterativeModuloScheduler(machine).schedule(graph)
            with obs_ledger.recording():
                again = IterativeModuloScheduler(machine).schedule(graph)
            assert again.times == base.times
            assert again.ii == base.ii
            assert again.chosen_opcodes == base.chosen_opcodes
            # The paper's check-distribution metric must not shift either:
            # attributed probes charge ATTRIBUTE, never CHECK.
            assert again.check_distribution == base.check_distribution

    def test_list_scheduler_emits_places(self):
        machine = _machine()
        graph = KERNELS["daxpy"]()
        with obs_ledger.recording() as ledger:
            OperationDrivenScheduler(machine).schedule(graph)
        assert any(r.kind == obs_ledger.PLACE for r in ledger)

    def test_give_up_attaches_ledger_tail(self):
        # budget_ratio=1 + no II slack is a known-infeasible setting for
        # tridiagonal on the Cydra 5 subset (see test_resilience).
        scheduler = IterativeModuloScheduler(
            _machine(), budget_ratio=1, max_ii_slack=0
        )
        graph = KERNELS["tridiagonal"]()
        with obs_ledger.recording():
            with pytest.raises(ScheduleError) as excinfo:
                scheduler.schedule(graph)
        assert excinfo.value.ledger_tail is not None
        kinds = {record["kind"] for record in excinfo.value.ledger_tail}
        assert obs_ledger.GIVE_UP in kinds

    def test_error_tail_is_none_without_ledger(self):
        scheduler = IterativeModuloScheduler(
            _machine(), budget_ratio=1, max_ii_slack=0
        )
        with pytest.raises(ScheduleError) as excinfo:
            scheduler.schedule(KERNELS["tridiagonal"]())
        assert excinfo.value.ledger_tail is None


class TestFallbackTails:
    def test_failed_rung_carries_ledger_tail(self):
        from repro.resilience import FallbackPolicy, schedule_with_fallback

        machine = _machine()
        graph = KERNELS["tridiagonal"]()
        policy = FallbackPolicy(ims_escalation=((1, 0), (6, 16)))
        with obs_ledger.recording():
            outcome = schedule_with_fallback(machine, graph, policy)
        failed = [a for a in outcome.attempts if a.failed]
        assert failed
        assert any(a.ledger_tail for a in failed)
        assert outcome.escalation_ledger
        # Without a ledger the same ladder still works, tails just absent.
        outcome2 = schedule_with_fallback(machine, graph, policy)
        assert outcome2.escalation_ledger == []


class TestProvenanceRollups:
    def test_cycle_ranges_collapse_runs(self):
        assert provenance.cycle_ranges([5, 3, 4, 9]) == [(3, 5), (9, 9)]
        assert provenance.cycle_ranges([]) == []

    def test_format_cycle_ranges(self):
        assert provenance.format_cycle_ranges([3, 4, 5, 9]) == "cycles 3-5, 9"
        assert provenance.format_cycle_ranges([7]) == "cycle 7"
        assert provenance.format_cycle_ranges([]) == "no cycles"
        text = provenance.format_cycle_ranges([1, 3, 5, 7, 9], limit=2)
        assert text.endswith(", ...")

    def test_pressure_and_blame_counts(self):
        records = [
            {"kind": "force", "ii": 3,
             "blame": {"resource": "bus", "cycle": 2, "kind": "reserved"}},
            {"kind": "force", "ii": 3,
             "blame": {"resource": "bus", "cycle": 2, "kind": "reserved"},
             "window_blame": [
                 {"resource": "alu", "cycle": 1, "kind": "reserved"},
             ]},
        ]
        pressure = provenance.pressure_histogram(records)
        assert pressure == {"bus": {2: 2}, "alu": {1: 1}}
        blame = provenance.blame_counts(records)
        assert list(blame.items()) == [("bus", 2), ("alu", 1)]

    def test_attempt_summaries_and_narrative(self):
        records = [
            {"kind": "attempt", "ii": 7, "phase": "start"},
            {"kind": "force", "ii": 7,
             "blame": {"resource": "fp_bus", "cycle": 3}},
            {"kind": "force", "ii": 7,
             "blame": {"resource": "fp_bus", "cycle": 4}},
            {"kind": "attempt", "ii": 7, "phase": "end",
             "succeeded": False, "budget_exceeded": True,
             "decisions": 40, "evictions_resource": 14,
             "evictions_dependence": 0},
            {"kind": "attempt", "ii": 8, "phase": "start"},
            {"kind": "attempt", "ii": 8, "phase": "end",
             "succeeded": True, "decisions": 12,
             "evictions_resource": 0, "evictions_dependence": 0},
        ]
        summaries = provenance.attempt_summaries(records)
        assert [s["ii"] for s in summaries] == [7, 8]
        failed, served = summaries
        assert failed["top_resource"] == "fp_bus"
        assert failed["forced"] == 2
        text = provenance.describe_attempt(failed)
        assert text.startswith("II=7 failed: fp_bus saturated at cycles 3-4")
        assert "14 evictions" in text
        assert "budget exhausted" in text
        assert provenance.describe_attempt(served) == (
            "II=8 succeeded: 12 decisions, 0 evictions"
        )

    def test_summarize_over_live_ledger(self):
        machine = _machine()
        with obs_ledger.recording() as ledger:
            IterativeModuloScheduler(machine).schedule(KERNELS["daxpy"]())
        rollup = provenance.summarize(ledger)
        assert rollup["records"] == len(ledger)
        assert rollup["attempts"]
        assert rollup["narrative"]
        assert rollup["attempts"][-1]["succeeded"] is True

    def test_eviction_counts(self):
        records = [
            {"kind": "evict", "op": "load1"},
            {"kind": "evict", "op": "load1"},
            {"kind": "evict", "op": "mul2"},
        ]
        assert provenance.eviction_counts(records) == {
            "load1": 2, "mul2": 1,
        }
