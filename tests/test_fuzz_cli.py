"""CLI contract tests for ``repro fuzz`` and the chaos exit codes."""

import json

import pytest

from repro.cli import main
from repro.resilience.artifacts import read_artifact, verify_artifact


class TestFuzzCommand:
    def test_green_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "0", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "ok=" in out
        assert "bug=0" in out

    def test_report_artifact_checksummed(self, tmp_path, capsys):
        out_path = str(tmp_path / "fuzz.json")
        assert main(
            ["fuzz", "--seed", "0", "--runs", "4", "--out", out_path]
        ) == 0
        header = verify_artifact(out_path)
        assert header["kind"] == "fuzz"
        text, _header = read_artifact(out_path)
        document = json.loads(text)
        assert document["schema"] == "repro-fuzz-report"
        assert document["version"] == 1
        assert document["ok"] is True

    def test_two_runs_byte_identical(self, tmp_path, capsys):
        first = str(tmp_path / "a.json")
        second = str(tmp_path / "b.json")
        assert main(
            ["fuzz", "--seed", "3", "--runs", "5", "--out", first]
        ) == 0
        assert main(
            ["fuzz", "--seed", "3", "--runs", "5", "--out", second]
        ) == 0
        with open(first) as a, open(second) as b:
            assert a.read() == b.read()

    def test_budget_flag_still_green(self, capsys):
        # A tight per-stage budget turns ok verdicts into handled ones;
        # the campaign stays green (exit 0).
        assert main(
            ["fuzz", "--seed", "0", "--runs", "3", "--budget", "1",
             "--plans-every", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "bug=0" in out

    def test_unknown_profile_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--profile", "no-such-profile"])


class TestChaosExitCodes:
    def test_all_handled_exits_zero(self, tmp_path, capsys):
        assert main(
            ["chaos", "example", "--seed", "0",
             "--workdir", str(tmp_path)]
        ) == 0

    def test_budget_exceeded_exits_three(self, tmp_path, capsys):
        code = main(
            ["chaos", "example", "--seed", "0", "--max-units", "1",
             "--workdir", str(tmp_path)]
        )
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_report_artifact_checksummed(self, tmp_path, capsys):
        out_path = str(tmp_path / "chaos.json")
        assert main(
            ["chaos", "example", "--seed", "0", "--out", out_path,
             "--workdir", str(tmp_path / "work")]
        ) == 0
        header = verify_artifact(out_path)
        assert header["kind"] == "chaos"
        assert "sha256" in capsys.readouterr().err

    def test_unhandled_fault_exits_one(self, tmp_path, capsys, monkeypatch):
        # Force one injector to report an unhandled fault: the CLI must
        # translate report.ok=False into exit code 1.
        from repro.resilience import chaos

        original = chaos.inject_corruption

        def sabotage(machine, seed, fault, **kwargs):
            outcome = original(machine, seed, fault, **kwargs)
            outcome.handled = False
            return outcome

        monkeypatch.setattr(chaos, "inject_corruption", sabotage)
        code = main(
            ["chaos", "example", "--seed", "0",
             "--faults", "drop-usage",
             "--workdir", str(tmp_path)]
        )
        assert code == 1
