"""Tests for the automaton-based query module (Bala & Rubin baseline)."""

import pytest

from repro.automata import AutomatonQueryModule, PipelineAutomaton
from repro.errors import QueryError
from repro.query import CHECK, DiscreteQueryModule


@pytest.fixture
def aqm(example):
    return AutomatonQueryModule(
        example, automaton=PipelineAutomaton.build(example)
    )


class TestBasics:
    def test_check_and_assign(self, aqm):
        assert aqm.check("B", 0)
        aqm.assign("B", 0)
        assert not aqm.check("B", 1)
        assert aqm.check("B", 4)

    def test_free_restores(self, aqm):
        token = aqm.assign("B", 0)
        aqm.free(token)
        assert aqm.check("B", 1)

    def test_factored_default(self, example):
        module = AutomatonQueryModule(example)
        assert module.check("A", 0)

    def test_wrong_machine_rejected(self, example, dual_pipe):
        automaton = PipelineAutomaton.build(dual_pipe)
        with pytest.raises(QueryError):
            AutomatonQueryModule(example, automaton=automaton)

    def test_assign_free_unsupported(self, aqm):
        aqm.assign("B", 0)
        # assign_free is the reservation tables' advantage (paper §2).
        with pytest.raises(QueryError):
            aqm.assign_free("B", 1)

    def test_assign_over_hazard_raises(self, aqm):
        aqm.assign("B", 0)
        with pytest.raises(QueryError):
            aqm.assign("B", 1)


class TestInsertionSemantics:
    def test_insert_before_existing(self, aqm):
        """Unrestricted order: placing an op EARLIER than scheduled ones
        must still see their reservations."""
        aqm.assign("B", 5)
        assert not aqm.check("B", 4)  # 1 before: -1 in F[B][B]
        assert not aqm.check("B", 6)
        assert aqm.check("B", 1)

    def test_insert_in_middle_detects_future_conflict(self, aqm):
        aqm.assign("A", 0)
        aqm.assign("B", 6)
        # B@3 conflicts with B@6 (distance 3) but not with A@0.
        assert not aqm.check("B", 3)
        assert aqm.check("B", 2)

    def test_short_op_inside_long_span(self, aqm):
        """An op fully inside another's reservation span — the case a
        naive forward/reverse pair misses without re-propagation."""
        aqm.assign("B", 0)  # occupies r3 cycles 2..5, r4 6..7
        # A@1 uses r1@2: B@0 uses r1 only at 0 -> free; but A@-1 collides.
        assert aqm.check("A", 1)
        assert not aqm.check("A", -1)

    def test_insertion_work_exceeds_append_work(self, example):
        """Appending at the end is cheap; inserting in the middle pays
        re-propagation through later cycles — the paper's criticism."""
        automaton = PipelineAutomaton.build(example)
        appender = AutomatonQueryModule(example, automaton=automaton)
        inserter = AutomatonQueryModule(example, automaton=automaton)
        for module in (appender, inserter):
            module.assign("B", 0)
            module.assign("B", 8)
            module.assign("B", 16)
        appender.work.reset()
        inserter.work.reset()
        appender.check("B", 24)  # beyond everything scheduled
        inserter.check("B", 4)  # middle insertion
        assert (
            inserter.work.units[CHECK] > appender.work.units[CHECK]
        )

    def test_stored_state_grows_with_schedule_span(self, aqm):
        aqm.assign("B", 0)
        small = aqm.stored_state_cycles
        aqm.assign("B", 30)
        assert aqm.stored_state_cycles > small


class TestAgainstDiscrete:
    def test_interleaved_assign_free_matches(self, example):
        import random

        rng = random.Random(31)
        automaton = PipelineAutomaton.build(example)
        for _trial in range(10):
            aqm = AutomatonQueryModule(example, automaton=automaton)
            dqm = DiscreteQueryModule(example)
            tokens = []
            for _step in range(25):
                action = rng.random()
                op = rng.choice(example.operation_names)
                cycle = rng.randint(0, 18)
                if action < 0.7 or not tokens:
                    agree = aqm.check(op, cycle)
                    assert agree == dqm.check(op, cycle)
                    if agree:
                        tokens.append(
                            (aqm.assign(op, cycle), dqm.assign(op, cycle))
                        )
                else:
                    ta, td = tokens.pop(rng.randrange(len(tokens)))
                    aqm.free(ta)
                    dqm.free(td)
