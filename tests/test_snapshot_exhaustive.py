"""Tests for query-module snapshots and the exhaustive II search."""

import pytest

from repro.machines import cydra5_subset, example_machine
from repro.query import BitvectorQueryModule, DiscreteQueryModule
from repro.scheduler import (
    DependenceGraph,
    IterativeModuloScheduler,
    SearchBudgetExceeded,
    find_schedule_at_ii,
    is_ii_feasible,
)
from repro.workloads import KERNELS, loop_suite


@pytest.fixture(params=["discrete", "bitvector"])
def module(request):
    machine = example_machine()
    if request.param == "discrete":
        return DiscreteQueryModule(machine)
    return BitvectorQueryModule(machine, word_cycles=2)


class TestSnapshot:
    def test_restore_undoes_assignments(self, module):
        module.assign("A", 0)
        checkpoint = module.snapshot()
        module.assign("B", 0)
        assert not module.check("B", 1)
        module.restore(checkpoint)
        assert module.check("B", 0)
        assert not module.check("A", 0)
        assert len(module.scheduled()) == 1

    def test_restore_undoes_frees(self, module):
        token = module.assign("B", 0)
        checkpoint = module.snapshot()
        module.free(token)
        assert module.check("B", 0)
        module.restore(checkpoint)
        assert not module.check("B", 0)
        assert module.scheduled() == [token]

    def test_snapshot_is_isolated_from_later_mutation(self, module):
        checkpoint = module.snapshot()
        module.assign("B", 3)
        module.restore(checkpoint)
        assert module.scheduled() == []
        assert module.check("B", 3)

    def test_work_counters_survive_restore(self, module):
        checkpoint = module.snapshot()
        module.check("A", 0)
        calls = module.work.calls["check"]
        module.restore(checkpoint)
        assert module.work.calls["check"] == calls

    def test_nested_snapshots(self, module):
        first = module.snapshot()
        module.assign("A", 0)
        second = module.snapshot()
        module.assign("A", 1)
        module.restore(second)
        assert len(module.scheduled()) == 1
        module.restore(first)
        assert module.scheduled() == []

    def test_assign_free_mode_restored(self):
        machine = example_machine()
        module = BitvectorQueryModule(machine, word_cycles=2)
        module.assign_free("B", 0)
        checkpoint = module.snapshot()
        module.assign_free("B", 1)  # forces update mode
        assert module.in_update_mode
        module.restore(checkpoint)
        assert not module.in_update_mode
        # Still usable after restore.
        _t, evicted = module.assign_free("B", 2)
        assert [e.cycle for e in evicted] == [0]


class TestExhaustiveSearch:
    @pytest.fixture(scope="class")
    def machine(self):
        return cydra5_subset()

    def test_finds_schedule_at_mii_for_kernels(self, machine):
        scheduler = IterativeModuloScheduler(machine)
        for name in ("daxpy", "inner-product", "first-difference"):
            result = scheduler.schedule(KERNELS[name]())
            times = find_schedule_at_ii(machine, KERNELS[name](), result.mii)
            assert times is not None

    def test_infeasible_ii_detected(self, machine):
        graph = DependenceGraph("two-movs")
        graph.add_operation("m1", "fmul_s")
        graph.add_operation("m2", "fmul_s")
        # Two multiplier ops cannot share II=1 (fm.issue once per cycle).
        assert not is_ii_feasible(machine, graph, 1)
        assert is_ii_feasible(machine, graph, 2)

    def test_found_schedules_verify(self, machine):
        graph = KERNELS["tridiagonal"]()
        result = IterativeModuloScheduler(machine).schedule(graph)
        times = find_schedule_at_ii(machine, KERNELS["tridiagonal"](), result.ii)
        assert times is not None
        # find_schedule_at_ii verifies internally; double-check anyway.
        KERNELS["tridiagonal"]().verify_schedule(times, ii=result.ii)

    def test_budget_exceeded_raises(self, machine):
        big = loop_suite(1)[0]
        with pytest.raises(SearchBudgetExceeded):
            find_schedule_at_ii(machine, big, 40, node_limit=3)

    def test_ims_agrees_with_exhaustive_on_tiny_loops(self, machine):
        """The audit: IMS rarely misses a feasible MII."""
        scheduler = IterativeModuloScheduler(machine)
        missed = checked = 0
        for graph in loop_suite(60, seed=21):
            if graph.num_operations > 10:
                continue
            result = scheduler.schedule(graph)
            checked += 1
            if not result.optimal and is_ii_feasible(
                machine, graph, result.mii
            ):
                missed += 1
        assert checked >= 10
        assert missed <= max(1, checked // 20)
