"""Tests for the Bala-Rubin forward/reverse pair query module."""

import random

import pytest

from repro.automata import PairedAutomatonQueryModule, PipelineAutomaton
from repro.errors import QueryError
from repro.machines import alternatives_machine, example_machine
from repro.query import CHECK, DiscreteQueryModule


@pytest.fixture(scope="module")
def prebuilt():
    machine = example_machine()
    forward = PipelineAutomaton.build(machine)
    return machine, forward


@pytest.fixture
def module(prebuilt):
    machine, forward = prebuilt
    return PairedAutomatonQueryModule(machine, forward=forward)


class TestBasics:
    def test_check_assign_free_roundtrip(self, module):
        token = module.assign("B", 0)
        assert not module.check("B", 2)
        module.free(token)
        assert module.check("B", 2)

    def test_insert_before_scheduled(self, module):
        module.assign("B", 10)
        assert not module.check("B", 9)
        assert not module.check("B", 11)
        assert module.check("B", 6)

    def test_nested_short_op_detected(self, module):
        """A short op strictly inside a long op's span is invisible to
        the quick pair test — the full confirmation must catch it."""
        module.assign("B", 0)  # spans cycles 0..7
        module.assign("A", 3)  # spans 3..5 inside B's span, no clash
        # A@-1 clashes with B on r1 at cycle 0 even though A's span is
        # nested before B's end.
        assert not module.check("A", -1)

    def test_assign_over_hazard_raises(self, module):
        module.assign("B", 0)
        with pytest.raises(QueryError):
            module.assign("B", 1)

    def test_assign_free_unsupported(self, module):
        module.assign("B", 0)
        with pytest.raises(QueryError):
            module.assign_free("B", 1)

    def test_alternatives_work(self):
        machine = alternatives_machine()
        module = PairedAutomatonQueryModule(machine)
        module.assign("add", 0)
        assert module.check_with_alternatives("mov", 0) == "mov.1"


class TestPrefilter:
    def test_prefilter_rejects_cheaply(self, module):
        module.assign("B", 0)
        before = module.work.units[CHECK]
        assert not module.check("B", 1)
        # Rejected by the first forward lookup: a couple of units only.
        assert module.work.units[CHECK] - before <= 3
        assert module.prefilter_rejects >= 1

    def test_accepting_checks_run_full_confirmation(self, module):
        module.assign("B", 0)
        module.check("B", 12)
        assert module.full_confirmations >= 1

    def test_reset_clears_stats(self, module):
        module.assign("B", 0)
        module.check("B", 1)
        module.reset()
        assert module.prefilter_rejects == 0
        assert module.stored_states == 0


class TestMemoryAccounting:
    def test_two_states_per_cycle(self, module):
        module.assign("B", 0)
        span_states = module.stored_states
        # Forward lane caches ~span cycles, backward lane the same.
        assert span_states >= 2 * 8  # B's table spans 8 cycles

    def test_automata_memory_positive(self, module):
        assert module.automata_memory_bytes() > 0


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_interleavings_match_discrete(self, prebuilt, seed):
        machine, forward = prebuilt
        rng = random.Random(400 + seed)
        paired = PairedAutomatonQueryModule(machine, forward=forward)
        discrete = DiscreteQueryModule(machine)
        tokens = []
        for _step in range(30):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(-4, 18)
            assert paired.check(op, cycle) == discrete.check(op, cycle)
            if discrete.check(op, cycle):
                tokens.append(
                    (paired.assign(op, cycle), discrete.assign(op, cycle))
                )
            elif tokens and rng.random() < 0.3:
                tp, td = tokens.pop(rng.randrange(len(tokens)))
                paired.free(tp)
                discrete.free(td)
