"""End-to-end reduction tests across all machines (Theorem 1 in action)."""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    matrices_equal,
    machine_from_selection,
    reduce_machine,
)
from repro.errors import EquivalenceError
from repro.machines import (
    alternatives_machine,
    dense_conflict_machine,
    empty_op_machine,
    example_machine,
    independent_ops_machine,
    issue_limited_machine,
    single_op_machine,
)

ALL_SMALL = [
    example_machine,
    single_op_machine,
    independent_ops_machine,
    empty_op_machine,
    alternatives_machine,
    dense_conflict_machine,
    lambda: issue_limited_machine(2, 2),
]


@pytest.mark.parametrize("factory", ALL_SMALL)
def test_reduction_is_exact(factory):
    md = factory()
    reduction = reduce_machine(md)
    assert matrices_equal(md, reduction.reduced)


@pytest.mark.parametrize("factory", ALL_SMALL)
@pytest.mark.parametrize("word_cycles", [1, 2, 4])
def test_word_reduction_is_exact(factory, word_cycles):
    md = factory()
    reduction = reduce_machine(
        md, objective="word-uses", word_cycles=word_cycles
    )
    assert matrices_equal(md, reduction.reduced)


def test_reduction_never_grows_resources():
    for factory in ALL_SMALL:
        md = factory()
        reduction = reduce_machine(md)
        assert reduction.reduced.num_resources <= max(1, md.num_resources)
        assert reduction.reduced.total_usages <= md.total_usages


def test_example_headline_numbers(example):
    """The paper's Figure 1 summary: 5 -> 2 resources, 11 -> 5 usages."""
    reduction = reduce_machine(example)
    assert example.num_resources == 5
    assert example.total_usages == 11
    assert reduction.reduced.num_resources == 2
    assert reduction.reduced.total_usages == 5
    assert reduction.reduced.table("A").usage_count == 1
    assert reduction.reduced.table("B").usage_count == 4


def test_study_machine_reductions(mips_reduction, subset_reduction):
    for reduction in (mips_reduction, subset_reduction):
        assert matrices_equal(reduction.original, reduction.reduced)
        assert reduction.resource_ratio < 1.0
        assert reduction.usage_ratio < 1.0


def test_mips_reduction_shape(mips_reduction):
    """Table 4 shape: resources drop ~3x, usages ~2x or better."""
    assert mips_reduction.reduced.num_resources <= 8
    ratio = mips_reduction.usage_ratio
    assert ratio < 0.6


def test_alternatives_preserved(dual_pipe):
    reduction = reduce_machine(dual_pipe)
    assert reduction.reduced.alternatives_of("mov") == ("mov.0", "mov.1")


def test_empty_op_preserved():
    reduction = reduce_machine(empty_op_machine())
    assert "NOP" in reduction.reduced
    assert reduction.reduced.table("NOP").is_empty


def test_machine_from_selection_names_rows(example):
    reduction = reduce_machine(example)
    assert all(r.startswith("q") for r in reduction.reduced.resources)


def test_summary_mentions_counts(example):
    summary = reduce_machine(example).summary()
    assert "5 -> 2 resources" in summary
    assert "11 -> 5 usages" in summary


def test_verification_catches_bad_selection(example):
    """Bypassing the selection with an under-covering one must raise."""
    reduction = reduce_machine(example)
    broken = MachineDescription(
        "broken",
        {"A": {"q0": [0]}, "B": {"q0": [0]}},
    )
    matrix = ForbiddenLatencyMatrix.from_machine(example)
    mismatches = matrix.differences(
        ForbiddenLatencyMatrix.from_machine(broken)
    )
    assert mismatches  # sanity: it is indeed not equivalent
    with pytest.raises(EquivalenceError):
        raise EquivalenceError("forced", mismatches)
    # and reduce_machine itself never returns an unverified reduction
    assert matrices_equal(example, reduction.reduced)


def test_no_subset_pruning_matches(example):
    fast = reduce_machine(example)
    slow = reduce_machine(example, prune_subsets_every=None)
    assert fast.reduced.total_usages == slow.reduced.total_usages
    assert matrices_equal(fast.reduced, slow.reduced)


def test_reduction_of_reduction_is_stable(example):
    once = reduce_machine(example).reduced
    twice = reduce_machine(once).reduced
    assert matrices_equal(once, twice)
    assert twice.total_usages <= once.total_usages


def test_reduce_for_word_size_picks_fixed_point():
    from repro.core import reduce_for_word_size
    from repro.machines import mips_r3000

    machine = mips_r3000()
    reduction = reduce_for_word_size(machine, word_bits=64)
    bits = reduction.word_cycles * reduction.reduced.num_resources
    assert bits <= 64
    # Packing is maximal: one more cycle would overflow the word.
    assert (
        (reduction.word_cycles + 1) * reduction.reduced.num_resources > 64
    )
    assert matrices_equal(machine, reduction.reduced)


def test_reduce_for_word_size_32_vs_64(example):
    from repro.core import reduce_for_word_size

    narrow = reduce_for_word_size(example, word_bits=32)
    wide = reduce_for_word_size(example, word_bits=64)
    assert narrow.word_cycles <= wide.word_cycles
    for reduction in (narrow, wide):
        assert matrices_equal(example, reduction.reduced)


def test_reduce_for_word_size_rejects_bad_width(example):
    from repro.core import reduce_for_word_size
    from repro.errors import ReductionError

    with pytest.raises(ReductionError):
        reduce_for_word_size(example, word_bits=0)
