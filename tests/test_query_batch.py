"""The columnar batch plane: equivalence, backends, and accounting.

The batch module inherits the compiled reserved-table protocol and
replaces only the window-scan derivation with incrementally-maintained
per-class columns.  These tests pin it to the compiled representation
(and through it, to the discrete reference) over random machines and
call sequences — including evictions via ``assign_free``, negative
cycles, snapshot/restore, and both scan directions — and pin the two
column backends (numpy and pure-python) to *identical* answers and
*identical* work-unit trajectories.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MachineDescription
from repro.machines import (
    STUDY_MACHINES,
    alternatives_machine,
    cydra5_subset,
    example_machine,
)
from repro.query import (
    BATCH,
    COMPILE,
    CompiledQueryModule,
    make_query_module,
)
from repro.query.batch import (
    BatchQueryModule,
    SharedCompilation,
    batch_backend,
    machine_digest,
    numpy_available,
)

RESOURCES = ["r0", "r1", "r2"]
OPS = ["opA", "opB"]


@st.composite
def machines(draw):
    """Small random machines: 1-2 ops over 1-3 resources, cycles 0-5."""
    operations = {}
    for index in range(draw(st.integers(1, 2))):
        usages = {}
        for _ in range(draw(st.integers(0, 4))):
            usages.setdefault(
                draw(st.sampled_from(RESOURCES)), set()
            ).add(draw(st.integers(0, 5)))
        operations[OPS[index]] = usages
    return MachineDescription("random", operations)


@st.composite
def call_sequences(draw):
    """Random basic-function sequences driving both representations."""
    sequence = []
    for _ in range(draw(st.integers(1, 25))):
        kind = draw(
            st.sampled_from(
                ("check", "assign", "assign_free", "free", "range", "first")
            )
        )
        cycle = draw(st.integers(-6, 20))
        width = draw(st.integers(0, 12))
        direction = draw(st.sampled_from((1, -1)))
        sequence.append((kind, cycle, width, direction))
    return sequence


def _drive(machine, module, reference, sequence, use_assign_free):
    """Run one call sequence against both modules, asserting agreement."""
    ops = machine.operation_names
    mine, theirs = [], []
    for index, (kind, cycle, width, direction) in enumerate(sequence):
        op = ops[index % len(ops)]
        if kind == "check":
            assert module.check(op, cycle) == reference.check(op, cycle)
        elif kind == "range":
            assert module.check_range(op, cycle, cycle + width) == (
                reference.check_range(op, cycle, cycle + width)
            )
        elif kind == "first":
            assert module.first_free(
                op, cycle, cycle + width, direction
            ) == reference.first_free(op, cycle, cycle + width, direction)
        elif kind == "free" and mine:
            module.free(mine.pop())
            reference.free(theirs.pop())
        elif kind in ("assign", "assign_free"):
            if use_assign_free:
                token, evicted = module.assign_free(op, cycle)
                ref_token, ref_evicted = reference.assign_free(op, cycle)
                assert [(t.op, t.cycle) for t in evicted] == (
                    [(t.op, t.cycle) for t in ref_evicted]
                )
                gone = {t.ident for t in evicted}
                mine[:] = [t for t in mine if t.ident not in gone]
                theirs[:] = [
                    t for t in theirs
                    if t.ident not in {x.ident for x in ref_evicted}
                ]
                mine.append(token)
                theirs.append(ref_token)
            elif module.check(op, cycle):
                mine.append(module.assign(op, cycle))
                theirs.append(reference.assign(op, cycle))


class TestPropertyEquivalence:
    @given(machines(), call_sequences(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_scalar_sequences_match_compiled(
        self, machine, sequence, use_assign_free
    ):
        _drive(
            machine,
            BatchQueryModule(machine),
            CompiledQueryModule(machine),
            sequence,
            use_assign_free,
        )

    @given(
        machines(), call_sequences(), st.integers(1, 9), st.booleans()
    )
    @settings(max_examples=40, deadline=None)
    def test_modulo_sequences_match_compiled(
        self, machine, sequence, ii, use_assign_free
    ):
        _drive(
            machine,
            BatchQueryModule(machine, modulo=ii),
            CompiledQueryModule(machine, modulo=ii),
            sequence,
            use_assign_free,
        )


class TestBuiltinMachines:
    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_probe_sweep_matches_compiled(self, name):
        machine = STUDY_MACHINES[name]()
        rng = random.Random(hash(name) & 0xFFFF)
        for modulo in (None, 3, 7):
            batch = BatchQueryModule(machine, modulo=modulo)
            compiled = CompiledQueryModule(machine, modulo=modulo)
            placed = 0
            for _step in range(100):
                op = rng.choice(machine.operation_names)
                cycle = rng.randint(-4, 30)
                free = compiled.check(op, cycle)
                assert batch.check(op, cycle) == free
                if free and placed < 25 and rng.random() < 0.5:
                    batch.assign(op, cycle)
                    compiled.assign(op, cycle)
                    placed += 1
                start = rng.randint(-4, 25)
                stop = start + rng.randint(0, 14)
                assert batch.check_range(op, start, stop) == (
                    compiled.check_range(op, start, stop)
                )
                for direction in (1, -1):
                    assert batch.first_free(
                        op, start, stop, direction
                    ) == compiled.first_free(op, start, stop, direction)

    def test_snapshot_restore_rebuilds_columns(self):
        machine = cydra5_subset()
        batch = BatchQueryModule(machine, modulo=6)
        compiled = CompiledQueryModule(machine, modulo=6)
        ops = machine.operation_names
        rng = random.Random(11)
        for _ in range(12):
            op = rng.choice(ops)
            cycle = rng.randint(0, 11)
            batch.assign_free(op, cycle)
            compiled.assign_free(op, cycle)
        mark = batch.snapshot()
        ref_mark = compiled.snapshot()
        for _ in range(8):
            op = rng.choice(ops)
            cycle = rng.randint(0, 11)
            batch.assign_free(op, cycle)
            compiled.assign_free(op, cycle)
        batch.restore(mark)
        compiled.restore(ref_mark)
        for op in ops:
            for start in range(-2, 10):
                assert batch.check_range(op, start, start + 6) == (
                    compiled.check_range(op, start, start + 6)
                )


class TestBulkEntryPoints:
    def _populated(self, modulo):
        machine = cydra5_subset()
        batch = BatchQueryModule(machine, modulo=modulo)
        loop = CompiledQueryModule(machine, modulo=modulo)
        rng = random.Random(5)
        for _ in range(10):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(0, 13)
            if loop.check(op, cycle):
                batch.assign(op, cycle)
                loop.assign(op, cycle)
        return machine, batch, loop

    @pytest.mark.parametrize("modulo", (None, 7))
    def test_check_matrix_rows_equal_check_range(self, modulo):
        machine, batch, loop = self._populated(modulo)
        requests = [
            (op, start, start + width)
            for op in machine.operation_names[:4]
            for start, width in ((-2, 5), (0, 9), (3, 0), (6, 12))
        ]
        answers = batch.check_matrix(requests)
        assert len(answers) == len(requests)
        for (op, start, stop), row in zip(requests, answers):
            expected = [
                loop.check(op, cycle) for cycle in range(start, stop)
            ]
            assert list(row) == expected
            assert list(row) == list(
                loop.check_range(op, start, stop)
            )

    @pytest.mark.parametrize("modulo", (None, 7))
    def test_first_free_bulk_equals_first_free(self, modulo):
        machine, batch, loop = self._populated(modulo)
        requests = [
            (op, start, start + width, direction)
            for op in machine.operation_names[:4]
            for start, width in ((-2, 5), (0, 9), (4, 0))
            for direction in (1, -1)
        ]
        answers = batch.first_free_bulk(requests)
        expected = [
            loop.first_free(op, start, stop, direction)
            if stop > start else None
            for op, start, stop, direction in requests
        ]
        assert answers == expected

    def test_bulk_invocation_charges_once_in_modulo_mode(self):
        _machine, batch, _loop = self._populated(7)
        calls_before = batch.work.calls[BATCH]
        units_before = batch.work.units[BATCH]
        batch.check_matrix([
            (op, 0, 7) for op in _machine.operation_names[:5]
        ])
        assert batch.work.calls[BATCH] == calls_before + 1
        assert batch.work.units[BATCH] == units_before + 1

    def test_bulk_invocation_charges_per_class_in_scalar_mode(self):
        machine, batch, _loop = self._populated(None)
        kernel_classes = {
            batch._kernel.rep_of[op]
            for op in machine.operation_names[:5]
        }
        units_before = batch.work.units[BATCH]
        batch.check_matrix([
            (op, 0, 7) for op in machine.operation_names[:5]
        ])
        assert batch.work.units[BATCH] == (
            units_before + len(kernel_classes)
        )

    def test_first_free_with_alternatives_matches_compiled(self):
        machine = alternatives_machine()
        for modulo in (None, 4, 9):
            batch = BatchQueryModule(machine, modulo=modulo)
            compiled = CompiledQueryModule(machine, modulo=modulo)
            rng = random.Random(3)
            for _ in range(30):
                group = rng.choice(machine.operation_names)
                start = rng.randint(-3, 8)
                stop = start + rng.randint(0, 10)
                direction = rng.choice((1, -1))
                got = batch.first_free_with_alternatives(
                    group, start, stop, direction
                )
                want = compiled.first_free_with_alternatives(
                    group, start, stop, direction
                )
                assert got == want
                if got[0] is not None and rng.random() < 0.4:
                    batch.assign(got[1], got[0])
                    compiled.assign(want[1], want[0])

    def test_place_bulk_equals_looped_assign(self):
        machine = cydra5_subset()
        bulk = BatchQueryModule(machine, modulo=8)
        loop = BatchQueryModule(machine, modulo=8)
        placements = []
        probe = CompiledQueryModule(machine, modulo=8)
        rng = random.Random(7)
        for _ in range(8):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(0, 7)
            if probe.check(op, cycle):
                probe.assign(op, cycle)
                placements.append((op, cycle))
        tokens = bulk.place_bulk(placements)
        looped = [loop.assign(op, cycle) for op, cycle in placements]
        assert [(t.op, t.cycle) for t in tokens] == (
            [(t.op, t.cycle) for t in looped]
        )
        assert dict(bulk.work.units) == dict(loop.work.units)
        assert dict(bulk.work.calls) == dict(loop.work.calls)


class TestBackends:
    def test_backend_name_resolves(self):
        assert batch_backend() in ("numpy", "pure")

    def test_forced_pure_backend_matches(self, monkeypatch):
        """Pure columns answer and charge exactly like the default.

        When numpy is importable this pins numpy == pure; without numpy
        both legs run the pure backend and the test still guards the
        env-forcing path.
        """
        machine = cydra5_subset()
        rng = random.Random(23)
        script = [
            (rng.choice(machine.operation_names), rng.randint(0, 13))
            for _ in range(40)
        ]

        def run():
            module = BatchQueryModule(machine, modulo=7)
            trace = []
            for op, cycle in script:
                trace.append(module.check(op, cycle))
                if trace[-1]:
                    module.assign(op, cycle)
                trace.append(module.first_free(op, cycle, cycle + 9))
                trace.append(
                    module.check_matrix([(op, cycle, cycle + 7)])
                )
            return trace, dict(module.work.units), dict(module.work.calls)

        default_trace = run()
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "pure")
        pure_trace = run()
        assert pure_trace == default_trace

    @pytest.mark.skipif(
        not numpy_available(), reason="numpy not importable"
    )
    def test_numpy_backend_selected_by_default(self):
        module = BatchQueryModule(cydra5_subset(), modulo=5)
        assert module.backend == "numpy"


class TestSharedCompilation:
    def test_compile_charged_once_per_corpus(self):
        machine = cydra5_subset()
        shared = SharedCompilation(machine)
        first = BatchQueryModule(machine, modulo=7, shared=shared)
        second = BatchQueryModule(machine, modulo=9, shared=shared)
        third = BatchQueryModule(machine, modulo=7, shared=shared)
        assert first.work.calls[COMPILE] >= 1
        assert second.work.units[COMPILE] < first.work.units[COMPILE]
        assert third.work.units[COMPILE] < first.work.units[COMPILE]

    def test_unshared_module_charges_like_compiled(self):
        machine = cydra5_subset()
        batch = BatchQueryModule(machine, modulo=7)
        compiled = CompiledQueryModule(machine, modulo=7)
        assert batch.work.units[COMPILE] == compiled.work.units[COMPILE]

    def test_charge_compile_false_never_charges_kernel(self):
        machine = cydra5_subset()
        shared = SharedCompilation(machine, charge_compile=False)
        module = BatchQueryModule(machine, modulo=7, shared=shared)
        reference = BatchQueryModule(
            machine, modulo=7, shared=SharedCompilation(machine)
        )
        assert module.work.units[COMPILE] < (
            reference.work.units[COMPILE]
        )
        assert not shared.mark_kernel_charged()

    def test_digest_is_content_addressed(self):
        a = cydra5_subset()
        b = cydra5_subset()
        assert a is not b
        assert machine_digest(a) == machine_digest(b)
        assert machine_digest(a) != machine_digest(example_machine())
        assert SharedCompilation(a).digest == machine_digest(a)

    def test_make_query_module_builds_batch(self):
        machine = cydra5_subset()
        shared = SharedCompilation(machine)
        module = make_query_module(
            machine, BATCH, modulo=6, shared=shared
        )
        assert isinstance(module, BatchQueryModule)
        assert module.shared is shared
