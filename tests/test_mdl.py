"""Tests for the machine description language parser and writer."""

import pytest

from repro import mdl
from repro.core import matrices_equal
from repro.errors import ParseError
from repro.machines import STUDY_MACHINES, example_machine

SAMPLE = """
# a toy machine
machine toy

resources alu mul wb

operation add
    alu: 0
    wb: 1

operation mac
    alu: 0
    mul: 1-3        # range
    wb: 4

alternatives move = add mac
"""


class TestParse:
    def test_sample(self):
        md = mdl.loads(SAMPLE)
        assert md.name == "toy"
        assert md.resources == ("alu", "mul", "wb")
        assert md.table("mac").usage_set("mul") == frozenset({1, 2, 3})
        assert md.alternatives_of("move") == ("add", "mac")

    def test_comments_and_blank_lines_ignored(self):
        md = mdl.loads("machine m\noperation a\n  r: 0 # trailing\n\n")
        assert md.num_operations == 1

    def test_comma_separated_cycles(self):
        md = mdl.loads("machine m\noperation a\n  r: 0, 2, 4\n")
        assert md.table("a").usage_set("r") == frozenset({0, 2, 4})

    def test_repeated_usage_lines_accumulate(self):
        md = mdl.loads("machine m\noperation a\n  r: 0\n  r: 2\n")
        assert md.table("a").usage_set("r") == frozenset({0, 2})

    def test_inferred_resources_when_not_declared(self):
        md = mdl.loads("machine m\noperation a\n  z: 0\n  b: 1\n")
        assert md.resources == ("b", "z")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "operation a\n  r: 0\n",  # missing machine header
            "machine m\n",  # no operations
            "machine m\nmachine n\noperation a\n r: 0\n",  # ok? no: dup is fine
        ],
    )
    def test_structural_errors(self, text):
        if text.count("machine") == 2:
            # Second header simply renames; not an error. Parse succeeds.
            mdl.loads(text)
        else:
            with pytest.raises(ParseError):
                mdl.loads(text)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            mdl.loads("machine m\noperation a\n  r: banana\n")
        assert info.value.line == 3

    def test_usage_outside_operation(self):
        with pytest.raises(ParseError):
            mdl.loads("machine m\n  r: 0\n")

    def test_duplicate_operation(self):
        with pytest.raises(ParseError):
            mdl.loads(
                "machine m\noperation a\n r: 0\noperation a\n r: 1\n"
            )

    def test_descending_range(self):
        with pytest.raises(ParseError):
            mdl.loads("machine m\noperation a\n  r: 5-2\n")

    def test_unrecognized_line(self):
        with pytest.raises(ParseError):
            mdl.loads("machine m\nbogus directive\n")

    def test_bad_alternatives(self):
        with pytest.raises(ParseError):
            mdl.loads("machine m\noperation a\n r: 0\nalternatives x\n")

    def test_alternative_of_unknown_op(self):
        with pytest.raises(ParseError):
            mdl.loads(
                "machine m\noperation a\n r: 0\nalternatives x = ghost\n"
            )


class TestSourceAttribution:
    def test_error_carries_offending_token(self):
        with pytest.raises(ParseError) as info:
            mdl.loads("machine m\noperation a\n  r: banana\n")
        assert info.value.token == "banana"
        assert info.value.raw_message == "bad cycle 'banana'"

    def test_error_carries_source_name(self, tmp_path):
        path = tmp_path / "broken.mdl"
        path.write_text("machine m\nbogus directive\n")
        with pytest.raises(ParseError) as info:
            mdl.load_file(str(path))
        assert info.value.source == str(path)
        assert info.value.line == 2
        # The rendered message leads with "<file>: line <n>:".
        assert str(info.value).startswith("%s: line 2:" % path)

    def test_parse_defers_semantic_validation(self):
        # A negative cycle is a semantic defect: the lenient scan keeps
        # it (with its line) and only build() rejects it.
        raw = mdl.parse("machine m\noperation a\n  r: -1\n")
        assert list(raw.iter_usages()) == [("a", "r", -1, 3)]
        with pytest.raises(ParseError) as info:
            raw.build()
        assert info.value.line == 3
        assert info.value.token == "-1"

    def test_undeclared_resource_points_at_usage_line(self):
        text = "machine m\nresources r\noperation a\n  r: 0\n  ghost: 1\n"
        with pytest.raises(ParseError) as info:
            mdl.loads(text)
        assert info.value.line == 5
        assert info.value.token == "ghost"

    def test_raw_machine_line_lookups(self):
        raw = mdl.parse(SAMPLE)
        assert raw.name == "toy"
        assert raw.name_line == 3
        assert raw.operation_line("mac") == 11
        assert raw.resource_line("mul") == 5
        assert raw.usage_line("mac", "mul", 2) == 13
        assert raw.operation_line("ghost") is None
        assert raw.usage_line("mac", "mul", 99) is None

    def test_resource_line_falls_back_to_first_usage(self):
        raw = mdl.parse("machine m\noperation a\n  undeclared: 0\n")
        assert raw.resource_line("undeclared") == 3

    def test_build_round_trips_with_loads(self):
        assert mdl.parse(SAMPLE).build() == mdl.loads(SAMPLE)


class TestRoundTrip:
    def test_example_round_trips(self):
        md = example_machine()
        again = mdl.loads(mdl.dumps(md))
        assert again == md

    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_study_machines_round_trip(self, name):
        md = STUDY_MACHINES[name]()
        again = mdl.loads(mdl.dumps(md))
        assert again == md
        assert matrices_equal(md, again)

    def test_ranges_collapse_in_output(self, mips):
        text = mdl.dumps(mips)
        assert "2-35" in text  # the divide's multdiv hold

    def test_file_round_trip(self, tmp_path):
        md = example_machine()
        path = str(tmp_path / "m.mdl")
        mdl.dump_file(md, path)
        assert mdl.load_file(path) == md
