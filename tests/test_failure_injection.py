"""Failure-injection tests: corrupted artifacts must be *detected*.

The paper's pitch is that manual reductions were error-prone and errors
silently produced wrong schedules.  This suite injects exactly those
errors — dropped usages, shifted usages, merged rows, forged reductions —
and asserts that the library's verification layers catch every one.
"""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    assert_equivalent,
    machine_from_selection,
    matrices_equal,
    reduce_machine,
)
from repro.core.selection import SelectionResult
from repro.errors import EquivalenceError, ScheduleError
from repro.machines import cydra5_subset, example_machine, mips_r3000


def _drop_one_usage(machine, op, resource, cycle):
    operations = {}
    for name, table in machine.items():
        usages = {
            r: set(table.usage_set(r)) for r in table.resources
        }
        if name == op:
            usages[resource].discard(cycle)
        operations[name] = usages
    return MachineDescription(machine.name + "-corrupt", operations)


class TestCorruptedDescriptions:
    def test_dropped_usage_detected(self):
        machine = example_machine()
        # Dropping r3@4 would NOT change the matrix (the original is
        # redundant — the paper's point); dropping the endpoint r3@5
        # loses the distance-3 self-conflict of B.
        corrupt = _drop_one_usage(machine, "B", "r3", 5)
        with pytest.raises(EquivalenceError) as info:
            assert_equivalent(machine, corrupt)
        # The mismatch names the affected operation pair.
        pairs = {(x, y) for x, y, _a, _b in info.value.mismatches}
        assert ("B", "B") in pairs

    def test_every_single_usage_matters_on_reduced_machines(self):
        """Reduced descriptions are minimal for their objective: removing
        ANY usage from the reduced example machine changes the matrix."""
        machine = example_machine()
        reduced = reduce_machine(machine).reduced
        for op, table in reduced.items():
            for resource, cycle in table.iter_usages():
                corrupt = _drop_one_usage(reduced, op, resource, cycle)
                assert not matrices_equal(machine, corrupt), (
                    op, resource, cycle,
                )

    def test_shifted_usage_detected(self):
        machine = mips_r3000()
        operations = {op: table for op, table in machine.items()}
        operations["fdiv_d"] = operations["fdiv_d"].shifted(1)
        corrupt = MachineDescription("shifted", operations)
        assert not matrices_equal(machine, corrupt)

    def test_merged_rows_detected(self):
        """Merging two distinct rows into one (a classic hand-reduction
        mistake) adds phantom forbidden latencies."""
        machine = example_machine()
        operations = {}
        for op, table in machine.items():
            usages = {}
            for resource in table.resources:
                target = "r12" if resource in ("r1", "r2") else resource
                usages.setdefault(target, set()).update(
                    table.usage_set(resource)
                )
            operations[op] = usages
        corrupt = MachineDescription("merged", operations)
        diffs = ForbiddenLatencyMatrix.from_machine(machine).differences(
            ForbiddenLatencyMatrix.from_machine(corrupt)
        )
        assert any(extra for _x, _y, _missing, extra in diffs)


class TestForgedReductions:
    def test_under_covering_selection_rejected(self):
        """machine_from_selection + verification must reject a selection
        that misses latencies."""
        machine = example_machine()
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
        forged = SelectionResult(
            resources=[frozenset({("A", 1), ("B", 0)})],  # misses F[B][B]
            origins=[frozenset({("A", 1), ("B", 0)})],
            objective="res-uses",
            word_cycles=1,
        )
        reduced = machine_from_selection(machine, forged)
        assert matrix.differences(
            ForbiddenLatencyMatrix.from_machine(reduced)
        )

    def test_over_constraining_selection_rejected(self):
        machine = example_machine()
        forged = SelectionResult(
            resources=[
                frozenset({("A", 1), ("B", 0)}),
                frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}),
                frozenset({("A", 0), ("B", 0)}),  # forbids allowed 0-pair
            ],
            origins=[frozenset()] * 3,
            objective="res-uses",
            word_cycles=1,
        )
        reduced = machine_from_selection(machine, forged)
        assert not matrices_equal(machine, reduced)


class TestSchedulerGuards:
    def test_scheduler_verifier_catches_planted_conflict(self):
        """The scheduler's final _verify rejects schedules with MRT
        conflicts even if the query module were broken."""
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import KERNELS

        scheduler = IterativeModuloScheduler(cydra5_subset())
        result = scheduler.schedule(KERNELS["daxpy"]())
        # Plant a conflict: move one load onto the other's slot & port.
        loads = [
            name
            for name, opcode in result.chosen_opcodes.items()
            if opcode.startswith("load_s")
        ]
        result.times[loads[0]] = result.times[loads[1]]
        result.chosen_opcodes[loads[0]] = result.chosen_opcodes[loads[1]]
        with pytest.raises(ScheduleError):
            scheduler._verify(result)

    def test_dependence_verifier_catches_planted_violation(self):
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import KERNELS

        scheduler = IterativeModuloScheduler(cydra5_subset())
        result = scheduler.schedule(KERNELS["inner-product"]())
        result.times["mul"] = result.times["acc"] + 100
        with pytest.raises(ScheduleError):
            result.graph.verify_schedule(result.times, ii=result.ii)
