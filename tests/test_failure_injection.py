"""Failure-injection tests: corrupted artifacts must be *detected*.

The paper's pitch is that manual reductions were error-prone and errors
silently produced wrong schedules.  This suite injects exactly those
errors — dropped usages, shifted usages, merged rows, forged reductions —
and asserts that the library's verification layers catch every one.
"""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    assert_equivalent,
    machine_from_selection,
    matrices_equal,
    reduce_machine,
)
from repro.core.selection import SelectionResult
from repro.errors import EquivalenceError, ScheduleError
from repro.machines import cydra5_subset, example_machine, mips_r3000


def _drop_one_usage(machine, op, resource, cycle):
    operations = {}
    for name, table in machine.items():
        usages = {
            r: set(table.usage_set(r)) for r in table.resources
        }
        if name == op:
            usages[resource].discard(cycle)
        operations[name] = usages
    return MachineDescription(machine.name + "-corrupt", operations)


class TestCorruptedDescriptions:
    def test_dropped_usage_detected(self):
        machine = example_machine()
        # Dropping r3@4 would NOT change the matrix (the original is
        # redundant — the paper's point); dropping the endpoint r3@5
        # loses the distance-3 self-conflict of B.
        corrupt = _drop_one_usage(machine, "B", "r3", 5)
        with pytest.raises(EquivalenceError) as info:
            assert_equivalent(machine, corrupt)
        # The mismatch names the affected operation pair.
        pairs = {(x, y) for x, y, _a, _b in info.value.mismatches}
        assert ("B", "B") in pairs

    def test_every_single_usage_matters_on_reduced_machines(self):
        """Reduced descriptions are minimal for their objective: removing
        ANY usage from the reduced example machine changes the matrix."""
        machine = example_machine()
        reduced = reduce_machine(machine).reduced
        for op, table in reduced.items():
            for resource, cycle in table.iter_usages():
                corrupt = _drop_one_usage(reduced, op, resource, cycle)
                assert not matrices_equal(machine, corrupt), (
                    op, resource, cycle,
                )

    def test_shifted_usage_detected(self):
        machine = mips_r3000()
        operations = {op: table for op, table in machine.items()}
        operations["fdiv_d"] = operations["fdiv_d"].shifted(1)
        corrupt = MachineDescription("shifted", operations)
        assert not matrices_equal(machine, corrupt)

    def test_merged_rows_detected(self):
        """Merging two distinct rows into one (a classic hand-reduction
        mistake) adds phantom forbidden latencies."""
        machine = example_machine()
        operations = {}
        for op, table in machine.items():
            usages = {}
            for resource in table.resources:
                target = "r12" if resource in ("r1", "r2") else resource
                usages.setdefault(target, set()).update(
                    table.usage_set(resource)
                )
            operations[op] = usages
        corrupt = MachineDescription("merged", operations)
        diffs = ForbiddenLatencyMatrix.from_machine(machine).differences(
            ForbiddenLatencyMatrix.from_machine(corrupt)
        )
        assert any(extra for _x, _y, _missing, extra in diffs)


class TestForgedReductions:
    def test_under_covering_selection_rejected(self):
        """machine_from_selection + verification must reject a selection
        that misses latencies."""
        machine = example_machine()
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
        forged = SelectionResult(
            resources=[frozenset({("A", 1), ("B", 0)})],  # misses F[B][B]
            origins=[frozenset({("A", 1), ("B", 0)})],
            objective="res-uses",
            word_cycles=1,
        )
        reduced = machine_from_selection(machine, forged)
        assert matrix.differences(
            ForbiddenLatencyMatrix.from_machine(reduced)
        )

    def test_over_constraining_selection_rejected(self):
        machine = example_machine()
        forged = SelectionResult(
            resources=[
                frozenset({("A", 1), ("B", 0)}),
                frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}),
                frozenset({("A", 0), ("B", 0)}),  # forbids allowed 0-pair
            ],
            origins=[frozenset()] * 3,
            objective="res-uses",
            word_cycles=1,
        )
        reduced = machine_from_selection(machine, forged)
        assert not matrices_equal(machine, reduced)


class TestSchedulerGuards:
    def test_scheduler_verifier_catches_planted_conflict(self):
        """The scheduler's final _verify rejects schedules with MRT
        conflicts even if the query module were broken."""
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import KERNELS

        scheduler = IterativeModuloScheduler(cydra5_subset())
        result = scheduler.schedule(KERNELS["daxpy"]())
        # Plant a conflict: move one load onto the other's slot & port.
        loads = [
            name
            for name, opcode in result.chosen_opcodes.items()
            if opcode.startswith("load_s")
        ]
        result.times[loads[0]] = result.times[loads[1]]
        result.chosen_opcodes[loads[0]] = result.chosen_opcodes[loads[1]]
        with pytest.raises(ScheduleError):
            scheduler._verify(result)

    def test_dependence_verifier_catches_planted_violation(self):
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import KERNELS

        scheduler = IterativeModuloScheduler(cydra5_subset())
        result = scheduler.schedule(KERNELS["inner-product"]())
        result.times["mul"] = result.times["acc"] + 100
        with pytest.raises(ScheduleError):
            result.graph.verify_schedule(result.times, ii=result.ii)


class TestFallbackLadderUnderFaults:
    """Every chaos fault class, driven through the fallback ladder: the
    ladder must name the rung that served and the served description must
    pass assert_equivalent (or carry an explicit unverified marker)."""

    def _assert_served_safely(self, machine, outcome):
        if outcome.verified:
            assert_equivalent(machine, outcome.machine)
        else:
            assert outcome.unverified_reason
            assert outcome.marker.startswith("unverified(")

    @pytest.mark.parametrize("seed", range(3))
    def test_drop_usage_fault(self, seed):
        from repro.resilience import FallbackPolicy, reduce_with_fallback
        from repro.resilience.chaos import _rng, corrupt_drop_usage

        machine = example_machine()
        rng = _rng(machine, seed, "drop-usage")
        outcome = reduce_with_fallback(
            machine,
            FallbackPolicy(mutate_reduced=lambda m: corrupt_drop_usage(m, rng)),
        )
        assert outcome.rung in ("reduced", "partially-selected", "original")
        self._assert_served_safely(machine, outcome)

    @pytest.mark.parametrize("seed", range(3))
    def test_shift_usage_fault(self, seed):
        from repro.resilience import FallbackPolicy, reduce_with_fallback
        from repro.resilience.chaos import _rng, corrupt_shift_usage

        machine = example_machine()
        rng = _rng(machine, seed, "shift-usage")
        outcome = reduce_with_fallback(
            machine,
            FallbackPolicy(
                mutate_reduced=lambda m: corrupt_shift_usage(m, rng)
            ),
        )
        # Shifting a whole table always changes the matrix of the tiny
        # example machine, so the ladder must degrade off the top rung.
        assert outcome.degraded
        self._assert_served_safely(machine, outcome)

    def test_phase_delay_fault(self):
        from repro.resilience import DelayedClock, FallbackPolicy
        from repro.resilience import reduce_with_fallback

        machine = example_machine()
        outcome = reduce_with_fallback(
            machine,
            FallbackPolicy(deadline_s=30.0, clock=DelayedClock(trip=3)),
        )
        assert outcome.degraded
        assert any(
            a.error_type == "BudgetExceeded" for a in outcome.attempts
        )
        self._assert_served_safely(machine, outcome)

    def test_truncate_write_fault(self, tmp_path):
        from repro.errors import ArtifactIntegrityError
        from repro.resilience import artifacts
        from repro.resilience.chaos import _rng, truncate_file

        machine = example_machine()
        path = str(tmp_path / "m.mdl")
        artifacts.write_machine(path, machine)
        truncate_file(path, _rng(machine, 0, "truncate-write"))
        with pytest.raises(ArtifactIntegrityError):
            artifacts.load_machine(path)

    def test_flip_checksum_fault(self, tmp_path):
        from repro.errors import ArtifactIntegrityError
        from repro.resilience import artifacts
        from repro.resilience.chaos import _rng, flip_checksum

        machine = example_machine()
        path = str(tmp_path / "m.mdl")
        artifacts.write_machine(path, machine)
        flip_checksum(path, _rng(machine, 0, "flip-checksum"))
        with pytest.raises(ArtifactIntegrityError):
            artifacts.load_machine(path)


class TestBudgetExceededProgression:
    """Property: an IMS attempt that exhausts its decision budget is
    always followed by an attempt at II+1, or by a clean
    :class:`ScheduleError` carrying the attempt history."""

    def _check_progression(self, attempts, mii):
        assert attempts, "at least one attempt must be recorded"
        assert attempts[0].ii == mii
        for prev, cur in zip(attempts, attempts[1:]):
            assert prev.budget_exceeded and not prev.succeeded
            assert cur.ii == prev.ii + 1

    def test_progression_properties(self):
        try:
            from hypothesis import given, settings, strategies as st
        except ImportError:  # pragma: no cover
            pytest.skip("hypothesis unavailable")

        from repro.scheduler import IterativeModuloScheduler
        from repro.scheduler.ddg import DependenceGraph

        machine = cydra5_subset()
        opcodes = ("iadd", "fadd_s", "fmul_s", "load_s", "store_s")

        @settings(max_examples=15, deadline=None)
        @given(
            data=st.data(),
            num_ops=st.integers(min_value=2, max_value=8),
            budget_ratio=st.integers(min_value=1, max_value=3),
            slack=st.integers(min_value=0, max_value=4),
        )
        def run(data, num_ops, budget_ratio, slack):
            graph = DependenceGraph("prop")
            for i in range(num_ops):
                graph.add_operation(
                    "op%d" % i,
                    data.draw(st.sampled_from(opcodes), label="opcode"),
                )
            for i in range(1, num_ops):
                if data.draw(st.booleans(), label="edge"):
                    graph.add_dependence(
                        "op%d" % (i - 1), "op%d" % i,
                        latency=data.draw(
                            st.integers(min_value=0, max_value=4),
                            label="latency",
                        ),
                    )
            scheduler = IterativeModuloScheduler(
                machine, budget_ratio=budget_ratio, max_ii_slack=slack
            )
            try:
                result = scheduler.schedule(graph)
            except ScheduleError as exc:
                self._check_progression(exc.attempts, exc.ii_range[0])
                assert exc.ii_range == (
                    exc.attempts[0].ii, exc.attempts[0].ii + slack
                )
                assert exc.budget_exceeded == any(
                    a.budget_exceeded for a in exc.attempts
                )
            else:
                self._check_progression(result.attempts, result.mii)
                assert result.attempts[-1].succeeded
                assert result.attempts[-1].ii == result.ii

        run()

    def test_budget_exceeded_then_ii_plus_one_concrete(self):
        """Deterministic witness of the property: tridiagonal under a
        starved budget fails at MII, then retries at exactly MII+1."""
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import KERNELS

        scheduler = IterativeModuloScheduler(
            cydra5_subset(), budget_ratio=1, max_ii_slack=8
        )
        result = scheduler.schedule(KERNELS["tridiagonal"]())
        assert result.attempts[0].budget_exceeded
        self._check_progression(result.attempts, result.mii)
