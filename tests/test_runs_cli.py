"""The ``repro runs`` family and ``--runlog`` recording end to end.

Holds the PR's acceptance test: a registry populated with synthetic
records plus one injected work-unit regression makes ``repro runs
trend`` flag exactly that changepoint (exit 1) while an unperturbed
series exits 0, and ``repro runs diff`` reproduces the bench
comparator's gating verdicts.
"""

import json
import os

from repro.cli import main
from repro.obs.runlog import ENV_RUNLOG_CLOCK, RunLog, RunRecorder


def _seed(directory, checks, command="schedule", loops=1, mii_total=5,
          ii_total=None):
    """Append one synthetic record per ``checks`` value."""
    log = RunLog(str(directory))
    for index, check_units in enumerate(checks):
        recorder = RunRecorder(
            command, {"n": index}, clock=lambda: 100.0 + index
        )
        recorder.note(machine="cydra5-subset", rung="full")
        recorder.add_units({"check": float(check_units)})
        recorder.calls["check"] = 1
        recorder.merge_quality({
            "loops": loops,
            "loops_at_mii": loops,
            "mii_total": mii_total,
            "ii_total": mii_total if ii_total is None else ii_total,
        })
        log.append(recorder.finalize("ok", 0))
    return log


class TestRecording:
    def test_reduce_appends_a_record(self, tmp_path, capsys):
        runlog = tmp_path / "runs"
        assert main(["reduce", "example", "--runlog", str(runlog)]) == 0
        records = RunLog(str(runlog)).records()
        assert len(records) == 1
        record = records[0]
        assert not record.corrupt
        assert record.command == "reduce"
        assert record.outcome == "ok"
        assert record.data["exit_code"] == 0
        assert record.data["rung"] == "full"
        assert record.data["machine"]

    def test_schedule_records_work_and_quality(self, tmp_path, capsys):
        runlog = tmp_path / "runs"
        assert main([
            "schedule", "cydra5-subset", "--kernel", "daxpy",
            "--runlog", str(runlog),
        ]) == 0
        record = RunLog(str(runlog)).records()[0]
        assert record.command == "schedule"
        assert record.units().get("check", 0) > 0
        assert record.calls().get("check", 0) > 0
        quality = record.quality()
        assert quality["loops"] == 1
        assert quality["ii_total"] >= quality["mii_total"] > 0
        assert quality["mii_gap"] == (
            quality["ii_total"] - quality["mii_total"]
        )

    def test_env_var_enables_recording(self, tmp_path, monkeypatch,
                                       capsys):
        runlog = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNLOG", str(runlog))
        assert main(["reduce", "example"]) == 0
        assert len(RunLog(str(runlog)).records()) == 1

    def test_failure_outcome_is_recorded(self, tmp_path, capsys):
        runlog = tmp_path / "runs"
        # The example machine lacks the Cydra-5 loop repertoire, so the
        # command fails — the registry must record that, not hide it.
        assert main([
            "schedule", "example", "--kernel", "daxpy",
            "--runlog", str(runlog),
        ]) == 2
        record = RunLog(str(runlog)).records()[0]
        assert record.outcome == "error"
        assert record.data["exit_code"] == 2

    def test_runlog_off_writes_nothing(self, tmp_path, monkeypatch,
                                       capsys):
        monkeypatch.delenv("REPRO_RUNLOG", raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["reduce", "example"]) == 0
        assert os.listdir(tmp_path) == []

    def test_runs_commands_are_not_themselves_recorded(
            self, tmp_path, monkeypatch, capsys):
        runlog = tmp_path / "runs"
        _seed(runlog, [100.0])
        monkeypatch.setenv("REPRO_RUNLOG", str(runlog))
        assert main(["runs", "list"]) == 0
        assert len(RunLog(str(runlog)).records()) == 1

    def test_pinned_clock_reruns_are_byte_identical(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(ENV_RUNLOG_CLOCK, "1000")
        paths = []
        for name in ("a", "b"):
            runlog = tmp_path / name
            assert main(["reduce", "example",
                         "--runlog", str(runlog)]) == 0
            record_dir = str(runlog)
            files = sorted(os.listdir(record_dir))
            assert len(files) == 1
            paths.append(os.path.join(record_dir, files[0]))
        assert os.path.basename(paths[0]) == os.path.basename(paths[1])
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()


class TestRunsList:
    def test_table_lists_records(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0, 101.0])
        assert main(["runs", "list",
                     "--runlog", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "schedule" in out
        assert "cydra5-subset" in out
        assert "2 record(s)" in out

    def test_json_format_and_tail(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0, 101.0, 102.0])
        assert main(["runs", "list", "--runlog", str(tmp_path / "runs"),
                     "--tail", "2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["seq"] for r in payload] == [2, 3]

    def test_corrupt_record_flagged_and_exit_1(self, tmp_path, capsys):
        log = _seed(tmp_path / "runs", [100.0])
        path = log.records()[0].path
        with open(path, "w") as handle:
            handle.write("torn")
        assert main(["runs", "list",
                     "--runlog", str(tmp_path / "runs")]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_no_registry_is_an_error(self, tmp_path, monkeypatch,
                                     capsys):
        monkeypatch.delenv("REPRO_RUNLOG", raising=False)
        assert main(["runs", "list"]) == 2
        assert main(["runs", "list",
                     "--runlog", str(tmp_path / "absent")]) == 2


class TestRunsShow:
    def test_show_prints_record_json(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0])
        assert main(["runs", "show", "1",
                     "--runlog", str(tmp_path / "runs")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "schedule"
        assert payload["work"]["units"]["check"] == 100.0

    def test_show_missing_seq_is_an_error(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0])
        assert main(["runs", "show", "9",
                     "--runlog", str(tmp_path / "runs")]) == 2


class TestRunsDiff:
    """``runs diff`` must reproduce the bench comparator's verdicts."""

    def test_neutral_diff_exits_0(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [1000.0, 1000.0])
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out
        assert "x1.0000" in out

    def test_work_regression_gates_exit_1(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [1000.0, 1100.0])
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 1
        out = capsys.readouterr().out
        assert "units.check" in out
        assert "regression" in out
        assert "[gated]" in out
        assert "verdict: REGRESSION" in out

    def test_below_min_units_floor_never_gates(self, tmp_path, capsys):
        # A 2x blowup on a 4-unit metric is noise, not a regression.
        _seed(tmp_path / "runs", [4.0, 8.0])
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 0

    def test_missing_currency_never_gates(self, tmp_path, capsys):
        log = _seed(tmp_path / "runs", [1000.0])
        recorder = RunRecorder("schedule", {}, clock=lambda: 101.0)
        recorder.add_units({"check": 1000.0, "sample": 42.0})
        recorder.merge_quality({"loops": 1, "loops_at_mii": 1,
                                "mii_total": 5, "ii_total": 5})
        log.append(recorder.finalize("ok", 0))
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 0
        assert "missing-base" in capsys.readouterr().out

    def test_workload_mismatch_is_incomparable(self, tmp_path, capsys):
        log = _seed(tmp_path / "runs", [1000.0], loops=1)
        _seed_second = RunRecorder("schedule", {}, clock=lambda: 101.0)
        _seed_second.add_units({"check": 9000.0})
        _seed_second.merge_quality({"loops": 2, "loops_at_mii": 2,
                                    "mii_total": 5, "ii_total": 5})
        log.append(_seed_second.finalize("ok", 0))
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "workload mismatch" in out
        assert "units.check" not in out  # work not compared at all

    def test_quality_regression_gates(self, tmp_path, capsys):
        log = _seed(tmp_path / "runs", [1000.0], ii_total=5)
        recorder = RunRecorder("schedule", {}, clock=lambda: 101.0)
        recorder.add_units({"check": 1000.0})
        recorder.merge_quality({"loops": 1, "loops_at_mii": 0,
                                "mii_total": 5, "ii_total": 7})
        log.append(recorder.finalize("ok", 0))
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 1
        assert "quality.ii_total" in capsys.readouterr().out

    def test_json_format_matches_bench_compare_schema(self, tmp_path,
                                                      capsys):
        _seed(tmp_path / "runs", [1000.0, 1000.0])
        assert main(["runs", "diff", "1", "2", "--format", "json",
                     "--runlog", str(tmp_path / "runs")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-bench-compare"
        assert payload["ok"] is True

    def test_diff_of_corrupt_record_is_an_error(self, tmp_path, capsys):
        log = _seed(tmp_path / "runs", [1000.0, 1000.0])
        with open(log.records()[0].path, "w") as handle:
            handle.write("torn")
        assert main(["runs", "diff", "1", "2",
                     "--runlog", str(tmp_path / "runs")]) == 2


class TestRunsTrendAcceptance:
    """The PR's acceptance scenario for the trend observatory."""

    def test_injected_regression_is_flagged_at_its_seq(self, tmp_path,
                                                       capsys):
        # Eight steady runs, then a 40% work-unit regression lands.
        _seed(tmp_path / "runs", [100.0] * 8 + [140.0] * 4)
        assert main(["runs", "trend", "--metric", "units.check",
                     "--runlog", str(tmp_path / "runs")]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION at seq 9" in out
        assert "100.000 -> 140.000" in out
        assert "seeded permutation test" in out

    def test_unperturbed_series_exits_0(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0] * 12)
        assert main(["runs", "trend", "--metric", "units.check",
                     "--runlog", str(tmp_path / "runs")]) == 0
        assert "no significant changepoint" in capsys.readouterr().out

    def test_improvement_exits_0(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [140.0] * 8 + [100.0] * 4)
        assert main(["runs", "trend", "--metric", "units.check",
                     "--runlog", str(tmp_path / "runs")]) == 0
        assert "IMPROVEMENT" in capsys.readouterr().out

    def test_too_few_points_exits_0(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0, 140.0])
        assert main(["runs", "trend",
                     "--runlog", str(tmp_path / "runs")]) == 0
        assert "need at least 4" in capsys.readouterr().out

    def test_window_restricts_the_series(self, tmp_path, capsys):
        # The regression is outside the analysis window: nothing flags.
        _seed(tmp_path / "runs", [100.0] * 4 + [140.0] * 8)
        assert main(["runs", "trend", "--window", "8",
                     "--runlog", str(tmp_path / "runs")]) == 0

    def test_json_format_emits_changepoint_payload(self, tmp_path,
                                                   capsys):
        _seed(tmp_path / "runs", [100.0] * 8 + [140.0] * 4)
        assert main(["runs", "trend", "--format", "json",
                     "--runlog", str(tmp_path / "runs")]) == 1
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["seq"] == 9
        assert payload["direction"] == "regression"

    def test_seed_is_reported_and_deterministic(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0] * 8 + [140.0] * 4)
        outs = []
        for _ in range(2):
            assert main(["runs", "trend", "--seed", "7",
                         "--runlog", str(tmp_path / "runs")]) == 1
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]
        assert "seed=7" in outs[0]


class TestRunsGcAndMetrics:
    def test_gc_keeps_newest(self, tmp_path, capsys):
        _seed(tmp_path / "runs", [100.0] * 5)
        assert main(["runs", "gc", "--keep", "2",
                     "--runlog", str(tmp_path / "runs")]) == 0
        assert "removed 3 record(s)" in capsys.readouterr().out
        assert [r.seq for r in RunLog(str(tmp_path / "runs")).records()
                ] == [4, 5]

    def test_metrics_from_registry_round_trips(self, tmp_path, capsys):
        from repro.obs.openmetrics import validate_openmetrics

        _seed(tmp_path / "runs", [100.0, 110.0])
        out_path = tmp_path / "scrape.prom"
        assert main(["runs", "metrics",
                     "--runlog", str(tmp_path / "runs"),
                     "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert validate_openmetrics(text) == []
        assert "repro_runs_records 2" in text
        assert ('repro_runs_work_units_total{command="schedule",'
                'currency="check"} 210') in text

    def test_metrics_from_metrics_json(self, tmp_path, capsys):
        from repro.obs.openmetrics import validate_openmetrics

        document = {"counters": {"reduce.iterations": 3}}
        source = tmp_path / "m.json"
        source.write_text(json.dumps(document))
        assert main(["runs", "metrics", "--from-metrics", str(source)]
                    ) == 0
        out = capsys.readouterr().out
        assert validate_openmetrics(out) == []
        assert "repro_reduce_iterations_total 3" in out

    def test_metrics_bad_json_is_an_error(self, tmp_path, capsys):
        source = tmp_path / "m.json"
        source.write_text("{ nope")
        assert main(["runs", "metrics",
                     "--from-metrics", str(source)]) == 2
