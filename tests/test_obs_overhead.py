"""Guard: the observability layer must cost ~nothing while disabled.

The issue's contract is that merely importing ``repro.obs`` (which the
query/scheduler packages now always do) adds under 5% to a check-heavy
IMS-style workload when no tracer is active.  Two layers of defence:

* **structural** — with tracing disabled the query-module factory must
  return the *plain* class, so the hot ``check``/``assign`` path executes
  the exact pre-instrumentation bytecode;
* **timing** — a min-of-N comparison between a directly constructed
  module and a factory-built one (tracing disabled) driving the same
  check-heavy sequence.  ``min`` of several repetitions filters scheduler
  noise; the margin is the issue's 5% plus a small absolute slack so a
  sub-millisecond baseline cannot flake the suite.
"""

import time

from repro import obs
from repro.machines import cydra5_subset
from repro.obs import ledger as obs_ledger
from repro.obs.instrument import observed_class
from repro.query import make_query_module
from repro.query.discrete import DiscreteQueryModule
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import KERNELS

REPEATS = 7
CHECKS_PER_RUN = 400


def _drive_checks(qm, opcodes):
    """A check-heavy probe shaped like the IMS inner loop."""
    hits = 0
    for cycle in range(CHECKS_PER_RUN // len(opcodes)):
        for opcode in opcodes:
            if qm.check(opcode, cycle):
                hits += 1
    return hits


def _best_of(make_module, opcodes):
    best = float("inf")
    for _ in range(REPEATS):
        qm = make_module()
        start = time.perf_counter()
        _drive_checks(qm, opcodes)
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledStructure:
    def test_factory_returns_plain_class(self):
        assert obs.current() is None
        qm = make_query_module(cydra5_subset())
        assert type(qm) is DiscreteQueryModule

    def test_plain_class_restored_after_tracing(self):
        machine = cydra5_subset()
        with obs.tracing():
            traced = make_query_module(machine)
        assert type(traced) is not DiscreteQueryModule
        after = make_query_module(machine)
        assert type(after) is DiscreteQueryModule

    def test_observed_class_is_cached(self):
        assert observed_class(DiscreteQueryModule) is observed_class(
            DiscreteQueryModule
        )

    def test_disabled_ims_run_touches_no_metrics(self):
        result = IterativeModuloScheduler(cydra5_subset()).schedule(
            KERNELS["daxpy"]()
        )
        # Work is accounted by WorkCounters as before, and nothing leaked
        # a tracer into the process globals.
        assert result.work.total_units > 0
        assert obs.current() is None

    def test_disabled_ims_run_leaves_no_ledger(self):
        # The decision ledger follows the tracer's switch pattern: with
        # no recording active, a scheduler run must neither activate one
        # nor charge the attribute work currency.
        result = IterativeModuloScheduler(cydra5_subset()).schedule(
            KERNELS["tridiagonal"]()
        )
        assert obs_ledger.current() is None
        assert result.work.calls["attribute"] == 0


class TestDisabledOverhead:
    def test_disabled_factory_path_within_margin(self):
        """Factory-built module (obs imported, tracing off) vs direct."""
        machine = cydra5_subset()
        opcodes = sorted(machine.operation_names)[:8]

        direct = _best_of(lambda: DiscreteQueryModule(machine), opcodes)
        factory = _best_of(lambda: make_query_module(machine), opcodes)

        # The issue's 5% margin, plus 200us absolute slack so a noisy
        # sub-millisecond baseline cannot flake CI.
        assert factory <= direct * 1.05 + 200e-6, (
            "disabled instrumentation overhead too high: "
            "direct=%.6fs factory=%.6fs" % (direct, factory)
        )

    def test_disabled_emission_helpers_are_cheap(self):
        """Per-call cost of the no-op span/event/count helpers."""
        iterations = 10_000
        start = time.perf_counter()
        for _ in range(iterations):
            obs.event("x")
            obs.count("x")
            with obs.span("x"):
                pass
        elapsed = time.perf_counter() - start
        # Three helper calls per iteration; generous 10us/iteration bound
        # (observed ~0.5us) — this catches accidental record allocation
        # or tracer construction on the disabled path, not CPU jitter.
        assert elapsed / iterations < 10e-6, (
            "disabled obs helpers cost %.2fus per iteration"
            % (elapsed / iterations * 1e6)
        )

    def test_disabled_ledger_path_is_cheap(self):
        """The ledger-off path: one global read plus a None test.

        Schedulers capture ``obs_ledger.current()`` once per run and
        guard each emission with ``is not None``; ``active_tail`` is the
        error-path helper.  All three must stay allocation-free when no
        ledger is recording — the same 10us/iteration bound as the span
        helpers (observed well under 1us).
        """
        assert obs_ledger.current() is None
        iterations = 10_000
        start = time.perf_counter()
        for _ in range(iterations):
            ledger = obs_ledger.current()
            if ledger is not None:  # the schedulers' emission guard
                ledger.record("place", {})
            obs_ledger.enabled()
            obs_ledger.active_tail()
        elapsed = time.perf_counter() - start
        assert elapsed / iterations < 10e-6, (
            "disabled ledger path costs %.2fus per iteration"
            % (elapsed / iterations * 1e6)
        )

    def test_sampler_off_run_charges_zero_sample_units(self):
        # The SAMPLE currency exists only while a sampler thread runs;
        # an ordinary scheduler run must charge exactly zero of it, so
        # the runlog and bench trajectories stay comparable with PR-8-era
        # records that predate the currency.
        result = IterativeModuloScheduler(cydra5_subset()).schedule(
            KERNELS["daxpy"]()
        )
        assert result.work.calls["sample"] == 0
        assert result.work.units["sample"] == 0

    def test_sampler_off_schedule_within_margin(self):
        """Full IMS runs with the sampler importable but never started
        must stay within the 5% margin of themselves — the sampler is a
        separate daemon thread, so merely shipping it may not tax the
        scheduling hot path."""
        machine = cydra5_subset()
        graph_builder = KERNELS["daxpy"]

        def run_once():
            scheduler = IterativeModuloScheduler(machine)
            start = time.perf_counter()
            scheduler.schedule(graph_builder())
            return time.perf_counter() - start

        from repro.obs.sampler import StackSampler

        assert StackSampler(frames=lambda: {}).running is False
        baseline = min(run_once() for _ in range(REPEATS))
        again = min(run_once() for _ in range(REPEATS))
        slower, faster = max(baseline, again), min(baseline, again)
        assert slower <= faster * 1.05 + 200e-6, (
            "sampler-off scheduling is unstable: %.6fs vs %.6fs"
            % (faster, slower)
        )

    def test_runlog_off_cli_run_writes_nothing_and_stays_untraced(
            self, tmp_path, monkeypatch, capsys):
        """With no ``--runlog`` and no ``REPRO_RUNLOG``, a CLI run must
        not create any registry file *and* must keep the untraced
        bytecode path (the recorder is what forces a tracer on)."""
        from repro.cli import main

        monkeypatch.delenv("REPRO_RUNLOG", raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["reduce", "example"]) == 0
        assert list(tmp_path.iterdir()) == []
        assert obs.current() is None
        qm = make_query_module(cydra5_subset())
        assert type(qm) is DiscreteQueryModule

    def test_ledger_off_schedule_within_margin(self):
        """Full IMS runs: the ledger-capable scheduler, recording off,
        must stay within the 5% margin of its own best — i.e. the
        per-decision ``is not None`` guards cost scheduler noise, not
        time.  Measured as best-vs-worst of interleaved repetitions so a
        systematic slowdown (accidental emission on the off path) fails
        while CI jitter does not."""
        machine = cydra5_subset()
        graph_builder = KERNELS["daxpy"]

        def run_once():
            scheduler = IterativeModuloScheduler(machine)
            start = time.perf_counter()
            scheduler.schedule(graph_builder())
            return time.perf_counter() - start

        assert obs_ledger.current() is None
        baseline = min(run_once() for _ in range(REPEATS))
        again = min(run_once() for _ in range(REPEATS))
        slower, faster = max(baseline, again), min(baseline, again)
        assert slower <= faster * 1.05 + 200e-6, (
            "ledger-off scheduling is unstable: %.6fs vs %.6fs"
            % (faster, slower)
        )
