"""Unit tests for reservation tables and usage sets."""

import pytest

from repro.core import ReservationTable
from repro.errors import MachineDescriptionError


class TestConstruction:
    def test_from_mapping(self):
        rt = ReservationTable({"alu": [0], "bus": [0, 3]})
        assert rt.usage_count == 3
        assert rt.resources == ("alu", "bus")

    def test_from_pairs(self):
        rt = ReservationTable.from_pairs([("a", 0), ("a", 2), ("b", 1)])
        assert rt.usage_set("a") == frozenset({0, 2})
        assert rt.usage_set("b") == frozenset({1})

    def test_duplicate_cycles_collapse(self):
        rt = ReservationTable({"a": [1, 1, 1]})
        assert rt.usage_count == 1

    def test_empty_resources_dropped(self):
        rt = ReservationTable({"a": [], "b": [0]})
        assert rt.resources == ("b",)

    def test_negative_cycle_rejected(self):
        with pytest.raises(MachineDescriptionError):
            ReservationTable({"a": [-1]})

    def test_non_integer_cycle_rejected(self):
        with pytest.raises(MachineDescriptionError):
            ReservationTable({"a": ["x"]})

    def test_bool_cycle_rejected(self):
        with pytest.raises(MachineDescriptionError):
            ReservationTable({"a": [True]})

    def test_empty_table(self):
        rt = ReservationTable({})
        assert rt.is_empty
        assert rt.length == 0
        assert rt.usage_count == 0


class TestIntrospection:
    def test_length_is_one_past_last_use(self):
        assert ReservationTable({"a": [0, 7]}).length == 8

    def test_uses(self):
        rt = ReservationTable({"a": [2]})
        assert rt.uses("a", 2)
        assert not rt.uses("a", 1)
        assert not rt.uses("missing", 2)

    def test_iter_usages_deterministic(self):
        rt = ReservationTable({"b": [3, 1], "a": [2]})
        assert list(rt.iter_usages()) == [("a", 2), ("b", 1), ("b", 3)]

    def test_cycles_used(self):
        rt = ReservationTable({"a": [0, 2], "b": [2, 5]})
        assert rt.cycles_used() == frozenset({0, 2, 5})


class TestAlgebra:
    def test_shifted(self):
        rt = ReservationTable({"a": [0, 1]}).shifted(3)
        assert rt.usage_set("a") == frozenset({3, 4})

    def test_reversed_is_involution(self):
        rt = ReservationTable({"a": [0, 2], "b": [1]})
        assert rt.reversed().reversed() == rt

    def test_reversed_mirrors_cycles(self):
        rt = ReservationTable({"a": [0], "b": [2]})
        rev = rt.reversed()
        assert rev.usage_set("a") == frozenset({2})
        assert rev.usage_set("b") == frozenset({0})

    def test_merged(self):
        merged = ReservationTable({"a": [0]}).merged(
            ReservationTable({"a": [1], "b": [0]})
        )
        assert merged.usage_set("a") == frozenset({0, 1})
        assert merged.usage_set("b") == frozenset({0})

    def test_restricted(self):
        rt = ReservationTable({"a": [0], "b": [1]}).restricted(["b"])
        assert rt.resources == ("b",)


class TestConflicts:
    def test_conflict_at_zero(self):
        rt = ReservationTable({"a": [0]})
        assert rt.conflicts_at(rt, 0)

    def test_no_conflict_when_disjoint(self):
        first = ReservationTable({"a": [0]})
        second = ReservationTable({"b": [0]})
        assert not first.conflicts_at(second, 0)

    def test_conflict_at_positive_distance(self):
        # self at cycle 3 vs other issued 2 later using cycle 1: 3 == 2+1.
        first = ReservationTable({"a": [3]})
        second = ReservationTable({"a": [1]})
        assert first.conflicts_at(second, 2)
        assert not first.conflicts_at(second, 1)

    def test_conflict_at_negative_distance(self):
        first = ReservationTable({"a": [0]})
        second = ReservationTable({"a": [2]})
        assert first.conflicts_at(second, -2)


class TestDunder:
    def test_equality_and_hash(self):
        a = ReservationTable({"x": [0, 1]})
        b = ReservationTable({"x": [1, 0]})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert ReservationTable({"x": [0]}) != ReservationTable({"x": [1]})

    def test_repr_mentions_usages(self):
        assert "x: [0, 1]" in repr(ReservationTable({"x": [0, 1]}))

    def test_render_marks_usages(self):
        art = ReservationTable({"alu": [0, 2]}).render()
        assert "X.X" in art

    def test_render_respects_row_order(self):
        rt = ReservationTable({"a": [0], "b": [1]})
        art = rt.render(resources=["b", "a"])
        lines = art.splitlines()
        assert lines[1].startswith("b")
        assert lines[2].startswith("a")
