"""Unit tests for dependence graphs."""

import pytest

from repro.errors import ScheduleError
from repro.scheduler import DependenceGraph, chain


@pytest.fixture
def diamond():
    g = DependenceGraph("diamond")
    for name in "abcd":
        g.add_operation(name, "op")
    g.add_dependence("a", "b", 2)
    g.add_dependence("a", "c", 3)
    g.add_dependence("b", "d", 1)
    g.add_dependence("c", "d", 1)
    return g


class TestConstruction:
    def test_basic(self, diamond):
        assert diamond.num_operations == 4
        assert diamond.num_edges == 4

    def test_duplicate_node_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            diamond.add_operation("a", "op")

    def test_unknown_endpoint_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            diamond.add_dependence("a", "ghost", 1)

    def test_negative_distance_rejected(self, diamond):
        with pytest.raises(ScheduleError):
            diamond.add_dependence("a", "b", 1, distance=-1)

    def test_self_edge_needs_distance(self):
        g = DependenceGraph("self")
        g.add_operation("x", "op")
        g.add_dependence("x", "x", 1, distance=1)
        g.validate()

    def test_chain_helper(self):
        g = chain("c", ["op1", "op2", "op3"], latency=2)
        assert g.num_operations == 3
        assert g.num_edges == 2
        assert g.critical_path_length() == 4


class TestAnalysis:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")

    def test_cycle_detected(self):
        g = DependenceGraph("cyclic")
        g.add_operation("x", "op")
        g.add_operation("y", "op")
        g.add_dependence("x", "y", 1)
        g.add_dependence("y", "x", 1)
        assert g.topological_order() is None
        assert not g.is_acyclic()
        with pytest.raises(ScheduleError):
            g.validate()

    def test_loop_carried_cycle_is_fine(self):
        g = DependenceGraph("rec")
        g.add_operation("x", "op")
        g.add_operation("y", "op")
        g.add_dependence("x", "y", 1)
        g.add_dependence("y", "x", 1, distance=1)
        g.validate()

    def test_critical_path(self, diamond):
        assert diamond.critical_path_length() == 4

    def test_empty_graph_invalid(self):
        with pytest.raises(ScheduleError):
            DependenceGraph("empty").validate()

    def test_predecessors_successors(self, diamond):
        assert {e.src for e in diamond.predecessors("d")} == {"b", "c"}
        assert {e.dst for e in diamond.successors("a")} == {"b", "c"}

    def test_opcodes_with_multiplicity(self, diamond):
        assert diamond.opcodes() == ["op"] * 4


class TestVerifySchedule:
    def test_valid_acyclic(self, diamond):
        diamond.verify_schedule({"a": 0, "b": 2, "c": 3, "d": 4})

    def test_violation_detected(self, diamond):
        with pytest.raises(ScheduleError):
            diamond.verify_schedule({"a": 0, "b": 1, "c": 3, "d": 4})

    def test_missing_operation(self, diamond):
        with pytest.raises(ScheduleError):
            diamond.verify_schedule({"a": 0})

    def test_modulo_form_uses_distance(self):
        g = DependenceGraph("rec")
        g.add_operation("x", "op")
        g.add_dependence("x", "x", 3, distance=1)
        g.verify_schedule({"x": 0}, ii=3)
        with pytest.raises(ScheduleError):
            g.verify_schedule({"x": 0}, ii=2)

    def test_acyclic_form_ignores_carried_edges(self):
        g = DependenceGraph("rec")
        g.add_operation("x", "op")
        g.add_dependence("x", "x", 3, distance=1)
        g.verify_schedule({"x": 0})  # no ii: carried edge ignored
