"""Conflict attribution: blame exactness across representations.

The attribution plane promises that every representation names the same
canonical blocked cell for a failed check — ``Blame.key = (resource,
cycle, kind)`` — and that turning attribution on never perturbs the
fast paths: attributed probes charge the ``attribute`` work currency
(never ``check``/``check_range``), and ``attribute=None`` calls remain
trajectory-identical to the pre-attribution module.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MachineDescription
from repro.machines import STUDY_MACHINES, example_machine
from repro.query import (
    ATTRIBUTE,
    BLAME_RESERVED,
    BLAME_SELF,
    Blame,
    BitvectorQueryModule,
    CHECK,
    CompiledQueryModule,
    DiscreteQueryModule,
)

RESOURCES = ["r0", "r1", "r2"]
OPS = ["opA", "opB"]
BACKENDS = (BitvectorQueryModule, CompiledQueryModule)


@st.composite
def machines(draw):
    """Small random machines: 1-2 ops over 1-3 resources, cycles 0-5."""
    operations = {}
    for index in range(draw(st.integers(1, 2))):
        usages = {}
        for _ in range(draw(st.integers(0, 4))):
            usages.setdefault(
                draw(st.sampled_from(RESOURCES)), set()
            ).add(draw(st.integers(0, 5)))
        operations[OPS[index]] = usages
    return MachineDescription("random", operations)


@st.composite
def probe_plans(draw):
    """Random assignments plus probe cycles/windows."""
    assigns = [
        (draw(st.integers(0, 1)), draw(st.integers(-6, 18)))
        for _ in range(draw(st.integers(0, 6)))
    ]
    probes = [
        (
            draw(st.integers(0, 1)),
            draw(st.integers(-6, 18)),
            draw(st.integers(0, 10)),
            draw(st.sampled_from((1, -1))),
        )
        for _ in range(draw(st.integers(1, 10)))
    ]
    return assigns, probes


def _build(machine, modulo):
    """One module per representation, discrete first (the reference)."""
    reference = DiscreteQueryModule(machine, modulo=modulo)
    others = [backend(machine, modulo=modulo) for backend in BACKENDS]
    return reference, others


def _replay_assigns(machine, modules, assigns):
    ops = machine.operation_names
    reference = modules[0]
    for op_index, cycle in assigns:
        op = ops[op_index % len(ops)]
        if reference.check(op, cycle):
            for module in modules:
                module.assign(op, cycle)
        else:
            for module in modules[1:]:
                assert not module.check(op, cycle)


def _assert_same_blame(machine, modulo, assigns, probes):
    reference, others = _build(machine, modulo)
    modules = [reference] + others
    _replay_assigns(machine, modules, assigns)
    ops = machine.operation_names
    for op_index, cycle, width, direction in probes:
        op = ops[op_index % len(ops)]
        want_free, want_blame = reference.check_attributed(op, cycle)
        for module in others:
            free, blame = module.check_attributed(op, cycle)
            assert free == want_free
            if want_free:
                assert blame is None
            else:
                assert blame is not None
                assert blame.key == want_blame.key
        want_pairs = []
        want_answers = reference.check_range(
            op, cycle, cycle + width, attribute=want_pairs
        )
        want_first_pairs = []
        want_first = reference.first_free(
            op, cycle, cycle + width, direction,
            attribute=want_first_pairs,
        )
        for module in others:
            pairs = []
            answers = module.check_range(
                op, cycle, cycle + width, attribute=pairs
            )
            assert answers == want_answers
            assert [(c, b.key) for c, b in pairs] == (
                [(c, b.key) for c, b in want_pairs]
            )
            first_pairs = []
            first = module.first_free(
                op, cycle, cycle + width, direction,
                attribute=first_pairs,
            )
            assert first == want_first
            assert [(c, b.key) for c, b in first_pairs] == (
                [(c, b.key) for c, b in want_first_pairs]
            )


class TestPropertyExactness:
    @given(machines(), probe_plans())
    @settings(max_examples=60, deadline=None)
    def test_scalar_blame_matches_discrete(self, machine, plan):
        assigns, probes = plan
        _assert_same_blame(machine, None, assigns, probes)

    @given(machines(), probe_plans(), st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_modulo_blame_matches_discrete(self, machine, plan, ii):
        assigns, probes = plan
        _assert_same_blame(machine, ii, assigns, probes)


class TestStudyMachines:
    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_blame_sweep_matches_discrete(self, name):
        machine = STUDY_MACHINES[name]()
        rng = random.Random(hash(name) & 0xFFFF)
        for modulo in (None, 3, 7):
            reference, others = _build(machine, modulo)
            modules = [reference] + others
            placed = 0
            for _step in range(120):
                op = rng.choice(machine.operation_names)
                cycle = rng.randint(-4, 30)
                want_free, want_blame = reference.check_attributed(
                    op, cycle
                )
                for module in others:
                    free, blame = module.check_attributed(op, cycle)
                    assert free == want_free
                    if want_blame is None:
                        assert blame is None
                    else:
                        assert blame.key == want_blame.key
                if want_free and placed < 25 and rng.random() < 0.5:
                    for module in modules:
                        module.assign(op, cycle)
                    placed += 1


class TestBlameSemantics:
    def test_reserved_blame_names_owner_cell(self):
        machine = example_machine()
        op = machine.operation_names[0]
        module = DiscreteQueryModule(machine)
        module.assign(op, 0)
        free, blame = module.check_attributed(op, 0)
        assert not free
        assert blame.kind == BLAME_RESERVED
        assert blame.resource in machine.resources
        assert blame.owner_op == op

    def test_modulo_self_conflict_precedes_reserved(self):
        """An op whose own usages fold onto one MRT slot blames itself."""
        machine = MachineDescription(
            "fold", {"op": {"bus": [0, 2]}}
        )
        for backend in (DiscreteQueryModule,) + BACKENDS:
            module = backend(machine, modulo=2)
            free, blame = module.check_attributed("op", 0)
            assert not free, backend.__name__
            assert blame.kind == BLAME_SELF, backend.__name__
            assert blame.resource == "bus"

    def test_blame_key_and_dict_round_trip(self):
        blame = Blame("bus", 3, BLAME_RESERVED, owner_op="a", owner_cycle=1)
        assert blame.key == ("bus", 3, BLAME_RESERVED)
        doc = blame.to_dict()
        assert doc == {
            "resource": "bus", "cycle": 3, "kind": BLAME_RESERVED,
            "owner_op": "a", "owner_cycle": 1,
        }
        assert "held by a" in blame.describe()
        self_blame = Blame("bus", 1, BLAME_SELF)
        assert "self-conflict" in self_blame.describe()


class TestWorkCurrency:
    def test_attributed_probes_charge_attribute_not_check(self):
        machine = example_machine()
        op = machine.operation_names[0]
        for backend in (DiscreteQueryModule,) + BACKENDS:
            module = backend(machine)
            module.assign(op, 0)
            checks = module.work.calls[CHECK]
            module.check_attributed(op, 0)
            module.check_range(op, 0, 6, attribute=[])
            module.first_free(op, 0, 6, attribute=[])
            assert module.work.calls[ATTRIBUTE] > 0, backend.__name__
            assert module.work.calls[CHECK] == checks, backend.__name__

    def test_attribute_off_paths_are_untouched(self):
        """``attribute=None`` answers and charges exactly as before."""
        machine = example_machine()
        op = machine.operation_names[0]
        for backend in (DiscreteQueryModule,) + BACKENDS:
            plain = backend(machine)
            probed = backend(machine)
            plain.assign(op, 0)
            probed.assign(op, 0)
            # Attributed probes in between must not disturb later calls.
            probed.check_attributed(op, 0)
            probed.check_range(op, 0, 8, attribute=[])
            assert plain.check_range(op, 0, 8) == (
                probed.check_range(op, 0, 8)
            )
            assert plain.first_free(op, 0, 8) == probed.first_free(
                op, 0, 8
            )
            for currency in ("check", "check_range", "assign", "free"):
                assert plain.work.calls[currency] == (
                    probed.work.calls[currency]
                ), (backend.__name__, currency)
                assert plain.work.units[currency] == (
                    probed.work.units[currency]
                ), (backend.__name__, currency)
