"""Unit tests for elementary pairs and the compatibility relation."""

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    elementary_pair,
    elementary_pairs,
    generated_instances,
    is_maximal,
    normalize_resource,
    resource_is_valid,
    usages_compatible,
)


class TestNormalize:
    def test_shifts_to_zero(self):
        assert normalize_resource([("A", 2), ("B", 5)]) == frozenset(
            {("A", 0), ("B", 3)}
        )

    def test_empty(self):
        assert normalize_resource([]) == frozenset()

    def test_already_normalized(self):
        usages = [("A", 0), ("B", 3)]
        assert normalize_resource(usages) == frozenset(usages)


class TestCompatibility:
    def test_pair_generating_forbidden_latency_is_compatible(
        self, example_matrix
    ):
        # B@0 with A@1 generates 1 in F[B][A], which is forbidden.
        assert usages_compatible(("B", 0), ("A", 1), example_matrix)

    def test_pair_generating_allowed_latency_is_incompatible(
        self, example_matrix
    ):
        # B@0 with A@3 would generate 3 in F[B][A]; only 1 is forbidden.
        assert not usages_compatible(("B", 0), ("A", 3), example_matrix)

    def test_symmetric(self, example_matrix):
        assert usages_compatible(("A", 1), ("B", 0), example_matrix)

    def test_same_op_zero_distance(self, example_matrix):
        assert usages_compatible(("A", 0), ("A", 0), example_matrix)


class TestElementaryPairs:
    def test_pair_for_instance(self):
        assert elementary_pair(("X", "Y", 3)) == frozenset(
            {("X", 0), ("Y", 3)}
        )

    def test_pair_for_self_zero_degenerates(self):
        assert elementary_pair(("X", "X", 0)) == frozenset({("X", 0)})

    def test_example_worklist_matches_paper_order(self, example_matrix):
        """Figure 3 processes 1 in F[B][A], then 1, 2, 3 in F[B][B]."""
        pairs = elementary_pairs(example_matrix)
        assert pairs == [
            frozenset({("B", 0), ("A", 1)}),
            frozenset({("B", 0), ("B", 1)}),
            frozenset({("B", 0), ("B", 2)}),
            frozenset({("B", 0), ("B", 3)}),
        ]

    def test_zero_self_contentions_excluded(self, example_matrix):
        for pair in elementary_pairs(example_matrix):
            assert len(pair) == 2

    def test_cross_zero_latency_included(self):
        md = MachineDescription(
            "z", {"A": {"bus": [0]}, "B": {"bus": [0]}}
        )
        matrix = ForbiddenLatencyMatrix.from_machine(md)
        assert frozenset({("A", 0), ("B", 0)}) in elementary_pairs(matrix)


class TestGeneratedInstances:
    def test_single_usage_generates_self_contention(self):
        assert generated_instances(frozenset({("A", 0)})) == {("A", "A", 0)}

    def test_pair_generates_cross_latency(self):
        got = generated_instances(frozenset({("B", 0), ("A", 1)}))
        assert got == {("A", "A", 0), ("B", "B", 0), ("B", "A", 1)}

    def test_same_op_span(self):
        got = generated_instances(frozenset({("B", 0), ("B", 2)}))
        assert got == {("B", "B", 0), ("B", "B", 2)}


class TestValidity:
    def test_paper_maximal_resources_are_valid(self, example_matrix):
        for resource in (
            frozenset({("B", 0), ("A", 1)}),
            frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}),
        ):
            assert resource_is_valid(resource, example_matrix)

    def test_overfull_resource_is_invalid(self, example_matrix):
        assert not resource_is_valid(
            frozenset({("B", 0), ("B", 4)}), example_matrix
        )


class TestMaximality:
    def test_paper_maximal_resources(self, example_matrix):
        """Figure 1c: exactly these two resources are maximal."""
        assert is_maximal(frozenset({("B", 0), ("A", 1)}), example_matrix)
        assert is_maximal(
            frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}),
            example_matrix,
        )

    def test_submaximal_detected(self, example_matrix):
        assert not is_maximal(frozenset({("B", 0), ("B", 1)}), example_matrix)

    def test_empty_not_maximal(self, example_matrix):
        assert not is_maximal(frozenset(), example_matrix)

    def test_invalid_not_maximal(self, example_matrix):
        assert not is_maximal(
            frozenset({("B", 0), ("B", 5)}), example_matrix
        )
