"""Tests for the cycle-accurate issue simulator."""

import pytest

from repro.analysis import drop_resources
from repro.core import reduce_machine
from repro.machines import cydra5_subset, example_machine, mips_r3000
from repro.scheduler import OperationDrivenScheduler, chain
from repro.simulate import simulate
from repro.workloads import block_suite


@pytest.fixture
def machine():
    return example_machine()


class TestCleanSchedules:
    def test_empty_schedule(self, machine):
        report = simulate(machine, [])
        assert report.clean
        assert report.makespan == 0

    def test_legal_schedule_is_clean(self, machine):
        report = simulate(machine, [("B", 0), ("A", 0), ("B", 4)])
        assert report.clean
        assert report.stall_cycles == 0

    def test_scheduler_output_simulates_cleanly(self, machine):
        scheduler = OperationDrivenScheduler(machine)
        result = scheduler.schedule(chain("c", ["B", "B", "A"], latency=1))
        placements = [
            (result.chosen_opcodes[n], t) for n, t in result.times.items()
        ]
        assert simulate(machine, placements).clean

    def test_suite_of_blocks_simulates_cleanly(self):
        machine = cydra5_subset()
        scheduler = OperationDrivenScheduler(machine)
        for graph in block_suite(10):
            result = scheduler.schedule(graph)
            placements = [
                (result.chosen_opcodes[n], t)
                for n, t in result.times.items()
            ]
            assert simulate(machine, placements).clean

    def test_makespan_covers_tables(self, machine):
        report = simulate(machine, [("B", 0)])
        assert report.makespan == 8  # B's table spans 8 cycles


class TestInterlockedStalls:
    def test_conflicting_issue_stalls(self, machine):
        # Two Bs at distance 1: forbidden; interlock delays the second
        # until distance 4.
        report = simulate(machine, [("B", 0), ("B", 1)])
        assert report.stall_cycles == 3
        assert report.issue_cycles[1] == 4
        assert not report.conflicts

    def test_stalls_slip_later_ops_in_order(self, machine):
        # The stalled B pushes the following A by the same slip.
        report = simulate(machine, [("B", 0), ("B", 1), ("A", 6)])
        assert report.issue_cycles[2] == 9

    def test_summary_mentions_stalls(self, machine):
        report = simulate(machine, [("B", 0), ("B", 1)])
        assert "stalled 3 cycles" in report.summary()


class TestCorruption:
    def test_conflicts_recorded_without_interlock(self, machine):
        report = simulate(machine, [("B", 0), ("B", 1)], interlock=False)
        assert not report.clean
        assert report.conflicts
        event = report.conflicts[0]
        assert event.first_op == "B" and event.second_op == "B"
        assert "claimed by both" in event.describe()

    def test_conflict_cap(self, machine):
        placements = [("B", 0)] * 10
        report = simulate(
            machine, placements, interlock=False, max_conflicts=5
        )
        assert len(report.conflicts) == 5


class TestExactnessStory:
    def test_reduced_schedule_clean_on_original_hardware(self):
        """Schedules produced against the reduced description simulate
        cleanly on the original machine — the paper's guarantee."""
        original = mips_r3000()
        reduced = reduce_machine(original).reduced
        scheduler = OperationDrivenScheduler(reduced)
        result = scheduler.schedule(
            chain("c", ["div", "fdiv_d", "load", "mult"], latency=1)
        )
        placements = [
            (result.chosen_opcodes[n], t) for n, t in result.times.items()
        ]
        assert simulate(original, placements).clean

    def test_weakened_description_causes_stalls(self):
        """A schedule built against a description missing the divide's
        unit hold stalls (or corrupts) on the real machine."""
        original = mips_r3000()
        weakened = drop_resources(original, ["iu.multdiv", "iu.mdbusy"])
        scheduler = OperationDrivenScheduler(weakened)
        result = scheduler.schedule(chain("c", ["div", "div"], latency=0))
        placements = [
            (result.chosen_opcodes[n], t) for n, t in result.times.items()
        ]
        stalled = simulate(original, placements)
        assert stalled.stall_cycles > 20  # the 34-cycle divider hold
        corrupted = simulate(original, placements, interlock=False)
        assert corrupted.conflicts
