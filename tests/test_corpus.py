"""The corpus driver: one shared kernel, a whole loop suite, one pass.

The headline contract is *constraint preservation at corpus scale*: the
batch representation must reproduce the per-loop compiled path's
schedules signature-for-signature while spending strictly less
check-path work and charging ``compile`` once per machine digest.  The
satellite contracts ride along — budget starvation stays loop-local,
the fallback ladder degrades loops without sinking the corpus, and the
multiprocessing fan-out replays the serial schedules exactly.
"""

import pytest

from repro.cli import main
from repro.machines import cydra5_subset, example_machine
from repro.obs import trace as obs
from repro.query.work import WorkCounters
from repro.resilience.budget import Budget
from repro.resilience.fallback import RUNG_IMS as FALLBACK_RUNG_IMS
from repro.resilience.fallback import FallbackPolicy
from repro.scheduler import corpus as corpus_module
from repro.scheduler.corpus import (
    CorpusScheduler,
    LoopOutcome,
    schedule_signature,
)
from repro.workloads import loop_suite

CHECK_PATH = ("check", "check_range", "first_free", "batch")


def _check_path_units(work: WorkCounters) -> int:
    return int(sum(work.units[fn] for fn in CHECK_PATH))


@pytest.fixture(scope="module")
def suite():
    return loop_suite(40)


@pytest.fixture(scope="module")
def machine():
    return cydra5_subset()


class TestSignatures:
    def test_schedule_signature_is_canonical(self):
        sig = schedule_signature(
            4, {"b": 1, "a": 0}, {"b": "add.1", "a": "add.0"}
        )
        assert sig == (
            4,
            (("a", 0), ("b", 1)),
            (("a", "add.0"), ("b", "add.1")),
        )

    def test_failed_outcome_has_no_signature(self):
        failed = LoopOutcome(name="l", ops=3, error_type="ScheduleError")
        assert failed.failed
        assert failed.signature is None
        served = LoopOutcome(
            name="l", ops=3, ii=2, mii=2, times={"a": 0},
            chosen_opcodes={}, rung=corpus_module.RUNG_IMS,
        )
        assert not served.failed and not served.degraded
        assert served.signature == (2, (("a", 0),), ())


def test_rung_ims_pin_matches_fallback_module():
    """The constant inlined to break the import cycle must not drift."""
    assert corpus_module.RUNG_IMS == FALLBACK_RUNG_IMS


class TestBatchMatchesPerLoop:
    def test_batch_replays_compiled_schedules_for_less_work(
        self, machine, suite
    ):
        batch = CorpusScheduler(machine).schedule_suite(suite)
        perloop = CorpusScheduler(
            machine, representation="compiled"
        ).schedule_suite(suite)

        assert batch.representation == "batch"
        assert batch.backend in ("numpy", "pure")
        assert perloop.backend is None
        assert batch.failed == 0 and perloop.failed == 0
        assert batch.signatures() == perloop.signatures()

        assert _check_path_units(batch.work) < _check_path_units(
            perloop.work
        )
        # One kernel build for the whole corpus vs one per II attempt.
        assert batch.work.units["compile"] < perloop.work.units["compile"]

    def test_digest_is_the_machine_content_hash(self, machine, suite):
        result = CorpusScheduler(machine).schedule_suite(suite[:2])
        again = CorpusScheduler(cydra5_subset()).schedule_suite(suite[:2])
        assert result.digest == again.digest
        other = CorpusScheduler(example_machine()).schedule_suite([])
        assert other.digest != result.digest


class TestBudget:
    def test_starvation_is_loop_local(self, machine, suite):
        graphs = suite[:8]
        # Room for the first loops (the 8-loop suite costs ~3000 units)
        # but not the whole corpus: starvation must land mid-suite.
        budget = Budget(max_units=2000, label="corpus-test")
        result = CorpusScheduler(machine).schedule_suite(
            graphs, budget=budget
        )
        assert len(result.outcomes) == len(graphs)
        assert result.outcomes[0].failed is False
        assert result.failed > 0
        for outcome in result.outcomes:
            if outcome.failed:
                assert outcome.error_type == "BudgetExceeded"
                assert outcome.signature is None

    def test_generous_budget_changes_nothing(self, machine, suite):
        graphs = suite[:6]
        free = CorpusScheduler(machine).schedule_suite(graphs)
        bounded = CorpusScheduler(machine).schedule_suite(
            graphs, budget=Budget(max_units=10_000_000)
        )
        assert bounded.signatures() == free.signatures()

    def test_budget_forces_serial_execution(self, machine, suite):
        graphs = suite[:4]
        with obs.tracing() as tracer:
            result = CorpusScheduler(
                machine, processes=2
            ).schedule_suite(graphs, budget=Budget(max_units=10_000_000))
        assert result.failed == 0
        assert tracer.metrics.counters["corpus.serialized_for_budget"] == 1


class TestFallbackLadder:
    def test_policy_serves_every_loop_on_the_ims_rung(
        self, machine, suite
    ):
        graphs = suite[:6]
        policy = FallbackPolicy()
        result = CorpusScheduler(machine, policy=policy).schedule_suite(
            graphs
        )
        plain = CorpusScheduler(machine).schedule_suite(graphs)
        assert result.failed == 0
        assert result.degraded == 0
        assert all(o.rung == FALLBACK_RUNG_IMS for o in result.outcomes)
        assert result.signatures() == plain.signatures()


class TestParallel:
    def test_parallel_replays_serial_schedules_and_query_work(
        self, machine, suite
    ):
        graphs = suite[:8]
        serial = CorpusScheduler(machine).schedule_suite(graphs)
        parallel = CorpusScheduler(machine, processes=2).schedule_suite(
            graphs
        )
        assert parallel.failed == 0
        assert parallel.signatures() == serial.signatures()
        # Workers re-derive per-II folds, so only the compile currency
        # may legitimately differ between serial and parallel runs.
        for currency, units in serial.work.units.items():
            if currency == "compile":
                continue
            assert parallel.work.units[currency] == units, currency
        assert dict(parallel.work.calls) == dict(serial.work.calls)


class TestCli:
    def test_schedule_corpus_exits_clean(self, capsys):
        assert main(
            ["schedule", "cydra5-subset", "--corpus", "--loops", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "corpus: 6 scheduled" in out
        assert "batch plane:" in out

    def test_schedule_corpus_perloop_representation(self, capsys):
        assert main(
            [
                "schedule", "cydra5-subset", "--corpus", "--loops", "3",
                "--representation", "compiled",
            ]
        ) == 0
        assert "corpus: 3 scheduled" in capsys.readouterr().out
