"""Tests for modulo-schedule expansion (prologue/kernel/epilogue)."""

import pytest

from repro.errors import ScheduleError
from repro.machines import cydra5_subset
from repro.scheduler import IterativeModuloScheduler, expand
from repro.workloads import KERNELS


@pytest.fixture(scope="module")
def daxpy_result():
    return IterativeModuloScheduler(cydra5_subset()).schedule(
        KERNELS["daxpy"]()
    )


class TestExpand:
    def test_basic_expansion(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=6)
        assert expanded.iterations == 6
        assert len(expanded.placements) == 6 * daxpy_result.num_operations

    def test_iteration_offsets_are_ii(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=4)
        for name in daxpy_result.times:
            cycles = [
                expanded.issue_cycle(name, i) for i in range(4)
            ]
            deltas = {b - a for a, b in zip(cycles, cycles[1:])}
            assert deltas == {daxpy_result.ii}

    def test_validation_passes_for_legal_kernel(self, daxpy_result):
        # expand() validates internally; explicit call must also pass.
        expand(daxpy_result, iterations=8).validate()

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_all_kernels_expand_conflict_free(self, kernel):
        result = IterativeModuloScheduler(cydra5_subset()).schedule(
            KERNELS[kernel]()
        )
        expand(result, iterations=5)

    def test_zero_iterations_rejected(self, daxpy_result):
        with pytest.raises(ScheduleError):
            expand(daxpy_result, iterations=0)

    def test_num_stages(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=2)
        span = max(daxpy_result.times.values()) + 1
        assert expanded.num_stages == -(-span // daxpy_result.ii)

    def test_stage_of_matches_time(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=2)
        for name, time in daxpy_result.times.items():
            assert expanded.stage_of(name) == time // daxpy_result.ii

    def test_length_covers_last_usage(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=3)
        assert expanded.length > max(expanded.placements.values())

    def test_render_kernel_lists_every_slot(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=2)
        art = expanded.render_kernel()
        assert art.count("slot") == daxpy_result.ii

    def test_render_timeline(self, daxpy_result):
        expanded = expand(daxpy_result, iterations=2)
        art = expanded.render_timeline()
        assert "[0]" in art and "[1]" in art

    def test_broken_kernel_detected(self, daxpy_result):
        """Corrupting the kernel must make flat validation fail."""
        import copy

        broken = copy.deepcopy(daxpy_result)
        # Move two same-opcode operations onto the same modulo slot.
        names = [
            n
            for n, o in broken.chosen_opcodes.items()
            if o.startswith("addr_gen")
        ]
        if len(names) < 2:
            # force a collision between the two loads instead
            names = [
                n
                for n, o in broken.chosen_opcodes.items()
                if o.startswith("load_s")
            ]
            broken.chosen_opcodes[names[0]] = broken.chosen_opcodes[names[1]]
        broken.times[names[0]] = broken.times[names[1]]
        broken.chosen_opcodes[names[0]] = broken.chosen_opcodes[names[1]]
        with pytest.raises(ScheduleError):
            expand(broken, iterations=3)
