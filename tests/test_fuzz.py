"""Tests for the fuzz subsystem: generator, oracle, shrinker, plans."""

import json

import pytest

from repro import mdl
from repro.core.machine import MachineDescription
from repro.core.verify import assert_equivalent
from repro.errors import ArtifactIntegrityError, BudgetExceeded, ReproError
from repro.fuzz import (
    FUZZ_SCHEMA_NAME,
    FUZZ_SCHEMA_VERSION,
    OracleConfig,
    PHASES,
    PROFILES,
    STRUCTURAL_RULES,
    VERDICT_BUG,
    VERDICT_OK,
    VERDICTS,
    compose_plan,
    generate_machine,
    generate_workload,
    load_repro_bundle,
    machine_seed,
    run_campaign,
    run_oracle,
    run_plan,
    schedulable_opcodes,
    shrink,
    write_repro_bundle,
)
from repro.fuzz.plans import PHASE_CACHE_WARM, PHASE_FAULTS, PHASE_MID_LADDER
from repro.lint import lint_machine
from repro.machines import buffered_pu, clustered_vliw
from repro.resilience.budget import Budget


def _drop_last_usage(machine):
    """Known-bad transform: silently remove one usage from the reduced
    description, breaking equivalence after the verified reduce."""
    op = sorted(machine.operation_names)[-1]
    tables = {
        name: {
            resource: sorted(machine.table(name).usage_set(resource))
            for resource in machine.table(name).resources
        }
        for name in machine.operation_names
    }
    table = tables[op]
    resource = sorted(table)[-1]
    if len(table) > 1:
        del table[resource]
    else:
        table[resource] = table[resource][:1] or [0]
        tables["__fuzz_extra__"] = {resource: [0]}
    return MachineDescription(
        machine.name, tables, machine.resources,
        machine.alternatives, machine.latencies,
    )


def _flip_first_signature(signatures):
    """Known-bad transform: corrupt the batch leg's first corpus
    signature, simulating a batch plane that silently mis-schedules."""
    signatures = list(signatures)
    if signatures[0] == ("schedule-error",):
        signatures[0] = (1, (), ())
    else:
        signatures[0] = ("schedule-error",)
    return signatures


class TestGenerator:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_deterministic_in_seed(self, profile):
        first = generate_machine(11, PROFILES[profile])
        second = generate_machine(11, PROFILES[profile])
        assert mdl.dumps(first) == mdl.dumps(second)

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_different_seeds_differ(self, profile):
        a = generate_machine(0, PROFILES[profile])
        b = generate_machine(1, PROFILES[profile])
        assert mdl.dumps(a) != mdl.dumps(b)

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_machines_are_structurally_clean(self, profile, seed):
        machine = generate_machine(seed, PROFILES[profile])
        report = lint_machine(machine, rules=list(STRUCTURAL_RULES))
        assert not report.diagnostics, report.render_text()

    def test_workload_validates_and_names_real_opcodes(self):
        machine = generate_machine(3, PROFILES["mixed"])
        graph = generate_workload(machine, 3)
        graph.validate()
        opcodes = set(schedulable_opcodes(machine))
        for operation in graph.operations():
            assert operation.opcode in opcodes

    def test_corpus_families_reachable(self):
        machine = generate_machine(0, PROFILES["buffered-pu"])
        assert machine.alternatives  # per-bus variants survive
        machine = generate_machine(0, PROFILES["clustered-vliw"])
        assert machine.alternatives  # per-cluster variants survive


class TestCorpusMachines:
    @pytest.mark.parametrize("factory", [buffered_pu, clustered_vliw])
    def test_reduce_and_verify(self, factory):
        from repro.core import reduce_machine

        machine = factory()
        reduction = reduce_machine(machine)
        assert_equivalent(machine, reduction.reduced)

    @pytest.mark.parametrize("factory", [buffered_pu, clustered_vliw])
    def test_oracle_green(self, factory):
        outcome = run_oracle(factory(), 0, OracleConfig())
        assert outcome.verdict in (VERDICT_OK, "handled")
        assert outcome.fingerprint is None


class TestOracle:
    def test_ok_on_generated_machine(self):
        machine = generate_machine(0, PROFILES["mixed"])
        outcome = run_oracle(machine, 0, OracleConfig(), profile="mixed")
        assert outcome.verdict in VERDICTS
        assert outcome.verdict != VERDICT_BUG, outcome.to_dict()

    def test_tight_budget_is_handled_not_bug(self):
        machine = generate_machine(1, PROFILES["mixed"])
        outcome = run_oracle(
            machine, 1, OracleConfig(max_units=1), profile="mixed"
        )
        assert outcome.verdict == "handled"
        assert any(h.startswith("budget:") for h in outcome.handled)

    def test_divergence_hook_is_a_bug_with_stable_fingerprint(self):
        machine = generate_machine(2, PROFILES["tiny"])
        config = OracleConfig(mutate_reduced=_drop_last_usage)
        outcome = run_oracle(machine, 2, config, profile="tiny")
        assert outcome.verdict == VERDICT_BUG
        assert outcome.fingerprint == "divergence:equivalence"
        assert outcome.stage == "equivalence"

    def test_outcome_dict_is_json_clean(self):
        machine = generate_machine(4, PROFILES["tiny"])
        outcome = run_oracle(machine, 4, OracleConfig(), profile="tiny")
        json.dumps(outcome.to_dict())

    def test_corpus_divergence_hook_is_a_bug_with_stable_fingerprint(self):
        machine = generate_machine(2, PROFILES["tiny"])
        config = OracleConfig(mutate_corpus_signatures=_flip_first_signature)
        outcome = run_oracle(machine, 2, config, profile="tiny")
        assert outcome.verdict == VERDICT_BUG
        assert outcome.fingerprint == "divergence:batch"
        assert outcome.stage == "batch"
        assert "workload" in outcome.detail

    def test_starved_corpus_stage_forfeits_not_bug(self):
        from repro.fuzz.oracle import _differential_corpus

        machine = generate_machine(2, PROFILES["tiny"])
        handled = []
        _differential_corpus(
            machine, 2, OracleConfig(max_units=1), handled
        )
        assert handled == ["budget:corpus"]


class TestShrinker:
    def test_minimizes_and_preserves_fingerprint(self):
        machine = generate_machine(2, PROFILES["tiny"])
        config = OracleConfig(mutate_reduced=_drop_last_usage)
        result = shrink(
            machine, 2, "divergence:equivalence",
            config=config, profile="tiny",
        )
        assert result.fingerprint == "divergence:equivalence"
        assert result.machine.total_usages <= machine.total_usages
        assert result.accepted >= 1
        # the minimized machine still reproduces through the oracle
        again = run_oracle(result.machine, 2, config, profile="tiny")
        assert again.verdict == VERDICT_BUG
        assert again.fingerprint == "divergence:equivalence"

    def test_batch_fingerprint_survives_shrinking(self):
        machine = generate_machine(2, PROFILES["tiny"])
        config = OracleConfig(mutate_corpus_signatures=_flip_first_signature)
        result = shrink(
            machine, 2, "divergence:batch",
            config=config, profile="tiny", max_attempts=60,
        )
        assert result.fingerprint == "divergence:batch"
        assert result.machine.total_usages <= machine.total_usages
        again = run_oracle(result.machine, 2, config, profile="tiny")
        assert again.verdict == VERDICT_BUG
        assert again.fingerprint == "divergence:batch"

    def test_precondition_failure_raises(self):
        machine = generate_machine(0, PROFILES["tiny"])
        with pytest.raises(ValueError):
            shrink(machine, 0, "divergence:equivalence", profile="tiny")

    def test_bundle_round_trip(self, tmp_path):
        machine = generate_machine(2, PROFILES["tiny"])
        config = OracleConfig(mutate_reduced=_drop_last_usage)
        result = shrink(
            machine, 2, "divergence:equivalence",
            config=config, profile="tiny",
        )
        manifest = write_repro_bundle(
            str(tmp_path / "bundle"), result, 2, profile="tiny"
        )
        assert manifest["fingerprint"] == "divergence:equivalence"
        loaded, document = load_repro_bundle(str(tmp_path / "bundle"))
        assert loaded == result.machine
        assert document["schema"] == "repro-fuzz-repro"
        assert document["fingerprint"] == "divergence:equivalence"
        # the reloaded machine reproduces the failure too
        again = run_oracle(loaded, document["seed"], config, profile="tiny")
        assert again.fingerprint == "divergence:equivalence"

    def test_corrupt_bundle_refuses_to_load(self, tmp_path):
        machine = generate_machine(2, PROFILES["tiny"])
        config = OracleConfig(mutate_reduced=_drop_last_usage)
        result = shrink(
            machine, 2, "divergence:equivalence",
            config=config, profile="tiny",
        )
        directory = tmp_path / "bundle"
        write_repro_bundle(str(directory), result, 2, profile="tiny")
        report = directory / "repro.json"
        report.write_text(report.read_text().replace("tiny", "twisted"))
        with pytest.raises(ArtifactIntegrityError):
            load_repro_bundle(str(directory))


class TestPlans:
    def test_compose_deterministic(self):
        assert compose_plan(5).to_dict() == compose_plan(5).to_dict()

    def test_compose_varies_with_seed(self):
        plans = {json.dumps(compose_plan(s).to_dict()) for s in range(10)}
        assert len(plans) > 1

    def test_faults_legal_for_phase(self):
        for seed in range(10):
            for step in compose_plan(seed, length=4).steps:
                assert step.phase in PHASES
                assert step.fault in PHASE_FAULTS[step.phase]

    def test_long_plans_include_a_compound_phase(self):
        for seed in range(10):
            plan = compose_plan(seed, length=3)
            assert any(
                step.phase in (PHASE_MID_LADDER, PHASE_CACHE_WARM)
                for step in plan.steps
            )

    def test_run_plan_all_handled(self, tmp_path):
        machine = generate_machine(0, PROFILES["mixed"])
        plan = compose_plan(0, length=3)
        report = run_plan(machine, plan, str(tmp_path))
        assert report.ok, report.to_dict()
        assert len(report.outcomes) == 3

    def test_run_plan_budget_raises_with_partial(self, tmp_path):
        machine = generate_machine(0, PROFILES["mixed"])
        plan = compose_plan(0, length=3)
        with pytest.raises(BudgetExceeded) as info:
            run_plan(
                machine, plan, str(tmp_path), budget=Budget(max_units=1)
            )
        assert info.value.phase == "chaos-plan"

    def test_bad_phase_rejected(self):
        with pytest.raises(ReproError):
            compose_plan(0, phases=("no-such-phase",))
        with pytest.raises(ReproError):
            compose_plan(0, length=0)


class TestCampaign:
    def test_report_deterministic(self):
        first = run_campaign(seed=0, runs=6)
        second = run_campaign(seed=0, runs=6)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_report_schema_and_green(self):
        report = run_campaign(seed=0, runs=6)
        assert report["schema"] == FUZZ_SCHEMA_NAME
        assert report["version"] == FUZZ_SCHEMA_VERSION
        assert report["ok"] is True
        assert report["counts"][VERDICT_BUG] == 0
        assert len(report["results"]) == 6
        assert report["plans"]  # every fourth run composes a plan

    def test_campaign_seeds_disjoint(self):
        assert machine_seed(0, 19) < machine_seed(1, 0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            run_campaign(profile="no-such-profile")
        with pytest.raises(ReproError):
            run_campaign(runs=0)

    def test_shrunk_bundles_land_in_dir(self, tmp_path):
        config = OracleConfig(mutate_reduced=_drop_last_usage)
        report = run_campaign(
            seed=0, runs=2, profile="tiny", do_shrink=True,
            bundle_dir=str(tmp_path), plans_every=0, config=config,
        )
        assert report["ok"] is False
        assert report["bugs"]
        assert report["bundles"]
        for manifest in report["bundles"]:
            loaded, document = load_repro_bundle(manifest["directory"])
            assert document["fingerprint"] == manifest["fingerprint"]
