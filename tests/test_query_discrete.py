"""Unit tests for the discrete-representation query module."""

import pytest

from repro.errors import QueryError
from repro.query import CHECK, DiscreteQueryModule


class TestCheckAssignFree:
    def test_empty_schedule_accepts(self, example):
        qm = DiscreteQueryModule(example)
        assert qm.check("A", 0)
        assert qm.check("B", 5)

    def test_conflict_detected(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign("B", 0)
        assert not qm.check("B", 1)  # 1 in F[B][B]
        assert not qm.check("A", -1)  # -1 in F[A][B] (A one cycle early)
        assert qm.check("A", 1)  # +1 is NOT forbidden for A after B

    def test_self_conflict_at_zero(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign("A", 3)
        assert not qm.check("A", 3)
        assert qm.check("A", 2)

    def test_free_releases(self, example):
        qm = DiscreteQueryModule(example)
        token = qm.assign("B", 0)
        assert not qm.check("B", 0)
        qm.free(token)
        assert qm.check("B", 0)

    def test_negative_cycles_supported(self, example):
        """Dangling resource requirements from predecessor blocks."""
        qm = DiscreteQueryModule(example)
        qm.assign("B", -6)
        # B@-6 holds r3 during cycles -4..-1 and r4 during 0..1.
        assert qm.owner_at("r4", 0) is not None
        assert not qm.check("B", -5)

    def test_free_twice_raises(self, example):
        qm = DiscreteQueryModule(example)
        token = qm.assign("A", 0)
        qm.free(token)
        with pytest.raises(QueryError):
            qm.free(token)

    def test_unknown_op_raises(self, example):
        qm = DiscreteQueryModule(example)
        with pytest.raises(QueryError):
            qm.assign("Z", 0)


class TestAssignFreeEviction:
    def test_no_conflict_no_eviction(self, example):
        qm = DiscreteQueryModule(example)
        _token, evicted = qm.assign_free("A", 0)
        assert evicted == []

    def test_conflicting_owner_evicted(self, example):
        qm = DiscreteQueryModule(example)
        first, _ = qm.assign_free("B", 0)
        _second, evicted = qm.assign_free("B", 2)
        assert evicted == [first]
        # The victim's other reservations are fully released.
        assert qm.owner_at("r1", 0) is None

    def test_evicted_resources_released(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign_free("B", 0)
        qm.assign_free("B", 1)  # evicts B@0
        # B@0's r4 usages at 6,7 must be gone; B@1 holds r4 at 7,8.
        assert qm.owner_at("r4", 6) is None

    def test_mixing_assign_and_assign_free_rejected(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign("A", 0)
        with pytest.raises(QueryError):
            qm.assign_free("A", 5)

    def test_mixing_other_direction_rejected(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign_free("A", 0)
        with pytest.raises(QueryError):
            qm.assign("A", 5)


class TestModulo:
    def test_wraps(self, example):
        qm = DiscreteQueryModule(example, modulo=4)
        qm.assign("A", 0)
        assert not qm.check("A", 4)  # same MRT slot
        assert not qm.check("A", 8)

    def test_self_collision_rejected(self, example):
        # B holds r3 for 4 consecutive cycles: II=2 wraps it onto itself.
        qm = DiscreteQueryModule(example, modulo=2)
        assert not qm.check("B", 0)

    def test_feasible_ii_accepts(self, example):
        qm = DiscreteQueryModule(example, modulo=4)
        assert qm.check("B", 0)

    def test_bad_ii_rejected(self, example):
        with pytest.raises(ValueError):
            DiscreteQueryModule(example, modulo=0)


class TestBookkeeping:
    def test_scheduled_lists_tokens(self, example):
        qm = DiscreteQueryModule(example)
        t1 = qm.assign("A", 0)
        t2 = qm.assign("A", 1)
        assert qm.scheduled() == [t1, t2]

    def test_reset_clears_schedule_keeps_work(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign("A", 0)
        qm.check("A", 0)
        calls_before = qm.work.calls[CHECK]
        qm.reset()
        assert qm.scheduled() == []
        assert qm.check("A", 0)
        assert qm.work.calls[CHECK] == calls_before + 1

    def test_reserved_entries_counts(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign("A", 0)
        assert qm.reserved_entries == 3

    def test_state_bits_per_cycle(self, example):
        assert DiscreteQueryModule(example).state_bits_per_cycle() == 5


class TestWorkAccounting:
    def test_check_charges_at_most_usage_count(self, example):
        qm = DiscreteQueryModule(example)
        qm.check("B", 0)
        assert qm.work.units[CHECK] == example.table("B").usage_count

    def test_check_early_out(self, example):
        qm = DiscreteQueryModule(example)
        qm.assign("B", 0)
        before = qm.work.units[CHECK]
        qm.check("B", 1)  # aborts at the first colliding usage (r3@3)
        assert qm.work.units[CHECK] - before == 3

    def test_minimum_one_unit(self):
        from repro.machines import empty_op_machine

        qm = DiscreteQueryModule(empty_op_machine())
        qm.check("NOP", 0)
        assert qm.work.units[CHECK] == 1


class TestAlternatives:
    def test_first_free_variant_returned(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        qm.assign("add", 0)  # occupies pipe0 at 0
        assert qm.check_with_alternatives("mov", 0) == "mov.1"

    def test_none_when_all_blocked(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        qm.assign("add", 0)
        qm.assign("mul", 0)
        assert qm.check_with_alternatives("mov", 0) is None

    def test_plain_op_is_its_own_alternative(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        assert qm.check_with_alternatives("add", 0) == "add"
