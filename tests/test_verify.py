"""Tests for equivalence checking between machine descriptions."""

import pytest

from repro.core import (
    MachineDescription,
    assert_equivalent,
    differences,
    matrices_equal,
    schedule_is_contention_free,
)
from repro.errors import EquivalenceError


@pytest.fixture
def shifted_example(example):
    """Same machine with every B usage shifted one cycle later — shifting
    a whole operation changes its latencies relative to others."""
    ops = {op: example.table(op) for op in example.operation_names}
    ops["B"] = ops["B"].shifted(1)
    return MachineDescription("shifted", ops)


class TestEquivalence:
    def test_machine_equivalent_to_itself(self, example):
        assert matrices_equal(example, example)
        assert_equivalent(example, example)

    def test_renamed_resources_equivalent(self, example):
        renamed = MachineDescription(
            "renamed",
            {
                op: {
                    "row-" + r: sorted(example.table(op).usage_set(r))
                    for r in example.table(op).resources
                }
                for op in example.operation_names
            },
        )
        assert matrices_equal(example, renamed)

    def test_shifted_op_not_equivalent(self, example, shifted_example):
        assert not matrices_equal(example, shifted_example)

    def test_assert_equivalent_raises_with_mismatches(
        self, example, shifted_example
    ):
        with pytest.raises(EquivalenceError) as info:
            assert_equivalent(example, shifted_example)
        assert info.value.mismatches

    def test_differences_lists_pairs(self, example, shifted_example):
        diffs = differences(example, shifted_example)
        pairs = {(x, y) for x, y, _, _ in diffs}
        assert ("B", "A") in pairs or ("A", "B") in pairs


class TestScheduleOracle:
    def test_empty_schedule_is_free(self, example):
        assert schedule_is_contention_free(example, [])

    def test_conflicting_schedule_detected(self, example):
        assert not schedule_is_contention_free(
            example, [("B", 0), ("B", 1)]
        )

    def test_legal_schedule_accepted(self, example):
        assert schedule_is_contention_free(
            example, [("A", 0), ("B", 0), ("A", 2)]
        )

    def test_oracle_matches_matrix(self, example, example_matrix):
        for t in range(-4, 5):
            free = schedule_is_contention_free(
                example, [("B", 0), ("A", t)]
            )
            assert free == (not example_matrix.is_forbidden("A", "B", t))
