"""Tests for Algorithm 1 — the generating set of maximal resources."""

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    build_generating_set,
    generated_instances,
    is_maximal,
    normalize_resource,
    resource_is_valid,
)
from repro.machines import (
    example_machine,
    independent_ops_machine,
    single_op_machine,
)


def _matrix(md):
    return ForbiddenLatencyMatrix.from_machine(md)


class TestExampleMachine:
    """Figure 1c: the example machine has exactly two maximal resources."""

    def test_contains_both_maximal_resources(self, example_matrix):
        resources = build_generating_set(example_matrix)
        assert frozenset({("B", 0), ("A", 1)}) in resources
        assert (
            frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}) in resources
        )

    def test_all_resources_valid(self, example_matrix):
        for resource in build_generating_set(example_matrix):
            assert resource_is_valid(resource, example_matrix)

    def test_pruning_independent_of_flag(self, example_matrix):
        with_prune = set(build_generating_set(example_matrix, 1))
        without = set(build_generating_set(example_matrix, None))
        # Both contain all maximal resources; textbook mode may keep
        # additional submaximal ones.
        maximal = {r for r in without if is_maximal(r, example_matrix)}
        assert maximal <= with_prune
        assert maximal <= without

    def test_trace_records_rule_applications(self, example_matrix):
        steps = []
        build_generating_set(example_matrix, trace=steps.append)
        assert len(steps) == 4  # one per elementary pair (Figure 3)
        rules = [app.rule for step in steps for app in step.applications]
        assert 3 in rules  # the first pair starts a fresh resource
        assert 1 in rules or 2 in rules


class TestTheoremOne:
    """Theorem 1 on a family of machines: every maximal resource appears,
    and nothing in the set forbids an allowed latency."""

    MACHINES = [
        example_machine(),
        single_op_machine(),
        independent_ops_machine(),
        MachineDescription("bus", {
            "P": {"bus": [0, 2]},
            "Q": {"bus": [1, 4]},
        }),
        MachineDescription("pipes", {
            "U": {"p": [0], "q": [1]},
            "V": {"q": [0], "r": [1, 2]},
            "W": {"r": [0], "p": [2]},
        }),
    ]

    def _all_maximal_resources(self, matrix):
        """Brute-force enumerate maximal resources by greedy closure from
        every elementary pair (sound for these small machines)."""
        from repro.core import elementary_pairs, usages_compatible

        span = matrix.max_latency
        candidates = set()
        universe = [
            (op, cycle)
            for op in matrix.operations
            if matrix.uses_resources(op)
            for cycle in range(0, 2 * span + 1)
        ]
        for pair in elementary_pairs(matrix):
            grown = set(pair)
            for usage in sorted(universe):
                if usage in grown:
                    continue
                if all(
                    usages_compatible(usage, existing, matrix)
                    for existing in grown
                ):
                    grown.add(usage)
            candidates.add(normalize_resource(grown))
        return {c for c in candidates if is_maximal(c, matrix)}

    def test_every_machine(self):
        for md in self.MACHINES:
            matrix = _matrix(md)
            generating = set(build_generating_set(matrix))
            for resource in generating:
                assert resource_is_valid(resource, matrix), md.name
            maximal = self._all_maximal_resources(matrix)
            for resource in maximal:
                assert any(
                    resource <= other for other in generating
                ), (md.name, sorted(resource))


class TestRuleFour:
    def test_isolated_ops_get_single_usage_resources(self):
        md = independent_ops_machine()
        resources = build_generating_set(_matrix(md))
        assert frozenset({("A", 0)}) in resources
        assert frozenset({("B", 0)}) in resources

    def test_not_added_when_op_in_other_resources(self, example_matrix):
        resources = build_generating_set(example_matrix)
        assert frozenset({("A", 0)}) not in resources


class TestCoverage:
    def test_generating_set_covers_all_instances(self):
        """The union of generated instances covers the whole matrix, for
        every study machine's matrix (prerequisite of selection)."""
        for md in (example_machine(), single_op_machine()):
            matrix = _matrix(md)
            resources = build_generating_set(matrix)
            covered = set()
            for resource in resources:
                covered |= generated_instances(resource)
            assert covered >= set(matrix.instances())

    def test_mips_coverage(self, mips):
        matrix = _matrix(mips)
        covered = set()
        for resource in build_generating_set(matrix):
            covered |= generated_instances(resource)
        assert covered >= set(matrix.instances())
