"""Unit tests for the MII bounds (ResMII / RecMII)."""

import pytest

from repro.core import ForbiddenLatencyMatrix, MachineDescription
from repro.errors import ScheduleError
from repro.scheduler import (
    DependenceGraph,
    min_feasible_ii_for_op,
    min_ii,
    rec_mii,
    res_mii,
)


@pytest.fixture
def simple_machine():
    return MachineDescription(
        "simple",
        {
            "alu": {"alu": [0]},
            "mul": {"mul": [0, 1]},  # partially pipelined: rate 1/2
        },
    )


class TestResMII:
    def test_counts_most_used_resource(self, simple_machine):
        assert res_mii(simple_machine, ["alu", "alu", "alu"]) == 3

    def test_self_infeasibility_bound(self, simple_machine):
        # One mul: the unit is busy 2 cycles, so II=1 self-collides.
        assert res_mii(simple_machine, ["mul"]) == 2

    def test_empty_oplist(self, simple_machine):
        assert res_mii(simple_machine, []) == 1

    def test_alternatives_spread_round_robin(self, dual_pipe):
        # Two movs can go one to each pipe: II bound stays 1... but each
        # pipe also serves add/mul; two movs alone need only 1 slot each.
        assert res_mii(dual_pipe, ["mov", "mov"]) == 1
        assert res_mii(dual_pipe, ["mov", "mov", "mov", "mov"]) == 2

    def test_min_feasible_ii_skips_colliding_divisors(self):
        md = MachineDescription("gap", {"X": {"u": [0, 4]}})
        matrix = ForbiddenLatencyMatrix.from_machine(md)
        # F[X][X] = {0, 4}: II in {1, 2, 4} wraps 4 onto 0; II=3 is fine.
        assert min_feasible_ii_for_op(matrix, "X") == 3

    def test_min_feasible_ii_simple(self, example):
        matrix = ForbiddenLatencyMatrix.from_machine(example)
        assert min_feasible_ii_for_op(matrix, "A") == 1
        assert min_feasible_ii_for_op(matrix, "B") == 4


class TestRecMII:
    def test_no_recurrence_gives_one(self):
        g = DependenceGraph("line")
        g.add_operation("a", "op")
        g.add_operation("b", "op")
        g.add_dependence("a", "b", 5)
        assert rec_mii(g) == 1

    def test_accumulator(self):
        g = DependenceGraph("acc")
        g.add_operation("a", "op")
        g.add_dependence("a", "a", 4, distance=1)
        assert rec_mii(g) == 4

    def test_distance_two_halves_bound(self):
        g = DependenceGraph("d2")
        g.add_operation("a", "op")
        g.add_dependence("a", "a", 5, distance=2)
        assert rec_mii(g) == 3  # ceil(5/2)

    def test_multi_node_cycle(self):
        g = DependenceGraph("cyc")
        g.add_operation("a", "op")
        g.add_operation("b", "op")
        g.add_dependence("a", "b", 3)
        g.add_dependence("b", "a", 4, distance=1)
        assert rec_mii(g) == 7

    def test_max_over_cycles(self):
        g = DependenceGraph("two")
        for name in "abc":
            g.add_operation(name, "op")
        g.add_dependence("a", "a", 2, distance=1)
        g.add_dependence("b", "c", 6)
        g.add_dependence("c", "b", 6, distance=2)
        assert rec_mii(g) == 6  # max(2, ceil(12/2))

    def test_zero_distance_cycle_rejected(self):
        g = DependenceGraph("bad")
        g.add_operation("a", "op")
        g.add_operation("b", "op")
        g.add_dependence("a", "b", 1)
        g.add_dependence("b", "a", 1)
        with pytest.raises(ScheduleError):
            rec_mii(g)


class TestMinII:
    def test_takes_the_max(self, simple_machine):
        g = DependenceGraph("loop")
        g.add_operation("m", "mul")
        g.add_dependence("m", "m", 1, distance=1)
        # ResMII = 2 (mul unit), RecMII = 1.
        assert min_ii(simple_machine, g) == 2

    def test_recurrence_dominates(self, simple_machine):
        g = DependenceGraph("loop")
        g.add_operation("a", "alu")
        g.add_dependence("a", "a", 7, distance=1)
        assert min_ii(simple_machine, g) == 7
