"""The OpenMetrics exporter: rendering, aggregation, and validation."""

from repro import obs
from repro.obs.openmetrics import sanitize_name
from repro.obs.runlog import RunRecord, RunRecorder


def _metrics_document():
    """A real metrics document with a counter, timer, and histogram."""
    tracer = obs.Tracer()
    tracer.meta["machine"] = "cydra5-subset"
    with obs.tracing(tracer=tracer):
        tracer.count("reduce.iterations", 3)
        tracer.record_query("check", 0.0, 0.001, 42)
        tracer.record_query("check", 0.001, 0.002, 8)
    return obs.metrics_document(tracer)


def _record(seq, command="schedule", outcome="ok", units=None,
            quality=None, corrupt=False):
    recorder = RunRecorder(command, {}, clock=lambda: 100.0)
    if units:
        recorder.add_units(units)
    if quality:
        recorder.merge_quality(quality)
    data = recorder.finalize(outcome, 0 if outcome == "ok" else 1)
    data["seq"] = seq
    return RunRecord(
        seq=seq, path="run-%08d.json" % seq, data=data,
        corrupt=corrupt, error="torn write" if corrupt else "",
    )


class TestMetricsToOpenmetrics:
    def test_real_document_renders_and_validates(self):
        text = obs.metrics_to_openmetrics(_metrics_document())
        assert obs.validate_openmetrics(text) == []
        assert text.endswith("# EOF\n")
        assert '# TYPE repro_meta gauge' in text
        assert 'repro_meta{machine="cydra5-subset"' in text
        assert "# TYPE repro_query_check_units_total counter" in text
        assert "repro_query_check_units_total 50" in text
        assert "# TYPE repro_query_check_calls_total counter" in text
        assert "repro_query_check_calls_total 2" in text
        assert "# TYPE repro_query_check_seconds histogram" in text
        assert 'repro_query_check_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_query_check_seconds_count 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = obs.metrics_to_openmetrics(_metrics_document())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_query_check_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 2

    def test_counter_names_end_in_total(self):
        document = {"counters": {"reduce.iterations": 3}}
        text = obs.metrics_to_openmetrics(document)
        assert "repro_reduce_iterations_total 3" in text
        assert obs.validate_openmetrics(text) == []

    def test_custom_prefix(self):
        text = obs.metrics_to_openmetrics(
            {"counters": {"x": 1}}, prefix="acme"
        )
        assert "acme_x_total 1" in text

    def test_empty_document_is_just_eof(self):
        text = obs.metrics_to_openmetrics({})
        assert text == "# EOF\n"
        assert obs.validate_openmetrics(text) == []


class TestRunlogToOpenmetrics:
    def _records(self):
        return [
            _record(1, "schedule", "ok",
                    units={"check": 100.0, "assign": 10.0},
                    quality={"ii_total": 7, "mii_total": 6, "loops": 1}),
            _record(2, "schedule", "ok", units={"check": 50.0}),
            _record(3, "reduce", "fail"),
            _record(4, corrupt=True),
        ]

    def test_aggregation_and_labels(self):
        text = obs.runlog_to_openmetrics(self._records())
        assert obs.validate_openmetrics(text) == []
        assert "repro_runs_records 3" in text
        assert "repro_runs_corrupt_records 1" in text
        assert "repro_runs_last_seq 3" in text
        assert ('repro_runs_outcomes_total{command="schedule",'
                'outcome="ok"} 2') in text
        assert ('repro_runs_outcomes_total{command="reduce",'
                'outcome="fail"} 1') in text
        assert ('repro_runs_work_units_total{command="schedule",'
                'currency="check"} 150') in text
        assert ('repro_runs_work_units_total{command="schedule",'
                'currency="assign"} 10') in text
        assert ('repro_runs_quality_total{command="schedule",'
                'metric="mii_gap"} 1') in text

    def test_corrupt_records_are_excluded_from_totals(self):
        corrupt_only = [_record(9, corrupt=True)]
        text = obs.runlog_to_openmetrics(corrupt_only)
        assert "repro_runs_records 0" in text
        assert "repro_runs_corrupt_records 1" in text
        assert "outcome=" not in text

    def test_empty_registry(self):
        text = obs.runlog_to_openmetrics([])
        assert obs.validate_openmetrics(text) == []
        assert "repro_runs_records 0" in text


class TestValidation:
    def test_missing_eof_is_a_problem(self):
        problems = obs.validate_openmetrics("# TYPE x gauge\nx 1\n")
        assert any("# EOF" in p for p in problems)

    def test_sample_before_type_is_a_problem(self):
        text = "x 1\n# TYPE x gauge\n# EOF\n"
        problems = obs.validate_openmetrics(text)
        assert any("no preceding TYPE" in p for p in problems)

    def test_malformed_sample_line(self):
        text = "# TYPE x gauge\nx one\n# EOF\n"
        problems = obs.validate_openmetrics(text)
        assert any("malformed sample" in p for p in problems)

    def test_blank_line_is_a_problem(self):
        text = "# TYPE x gauge\nx 1\n\n# EOF\n"
        assert any(
            "blank" in p for p in obs.validate_openmetrics(text)
        )

    def test_duplicate_type_is_a_problem(self):
        text = "# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n"
        assert any(
            "duplicate" in p for p in obs.validate_openmetrics(text)
        )

    def test_suffix_resolution_against_histogram_family(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\nh_count 2\nh_sum 0.5\n# EOF\n'
        )
        assert obs.validate_openmetrics(text) == []

    def test_negative_and_scientific_values_are_legal(self):
        text = "# TYPE x gauge\nx -1.5e-3\n# EOF\n"
        assert obs.validate_openmetrics(text) == []


class TestWriteAndNames:
    def test_sanitize_name(self):
        assert sanitize_name("query.check.units") == "query_check_units"
        assert sanitize_name("9lives") == "_9lives"
        assert sanitize_name("") == "_"

    def test_write_to_file(self, tmp_path):
        out = tmp_path / "scrape.prom"
        obs.write_openmetrics("# EOF\n", str(out))
        assert out.read_text() == "# EOF\n"

    def test_write_to_stdout(self, capsys):
        obs.write_openmetrics("# EOF\n", "-")
        assert capsys.readouterr().out == "# EOF\n"
