"""Property-based tests (hypothesis) for the core invariants.

These cover the paper's correctness claims over *arbitrary* machines:

* Theorem 1 / exactness: any machine's reduction preserves its forbidden
  latency matrix, under both objectives;
* representation equivalence: discrete, bitvector, and modulo query
  modules agree with the brute-force reserved-grid oracle;
* the automaton recognizes exactly the contention-free schedules;
* the MDL text format round-trips every description;
* modulo schedules produced by the IMS satisfy resources and dependences.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    elementary_pairs,
    generated_instances,
    matrices_equal,
    reduce_machine,
    resource_is_valid,
    schedule_is_contention_free,
)
from repro import mdl
from repro.automata import PipelineAutomaton
from repro.query import BitvectorQueryModule, DiscreteQueryModule

RESOURCES = ["r0", "r1", "r2", "r3"]
OPS = ["opA", "opB", "opC"]


@st.composite
def machines(draw):
    """Small random machines: 1-3 ops over 1-4 resources, cycles 0-6."""
    num_ops = draw(st.integers(1, 3))
    operations = {}
    for index in range(num_ops):
        num_usages = draw(st.integers(0, 5))
        usages = {}
        for _ in range(num_usages):
            resource = draw(st.sampled_from(RESOURCES))
            cycle = draw(st.integers(0, 6))
            usages.setdefault(resource, set()).add(cycle)
        operations[OPS[index]] = usages
    return MachineDescription("random", operations)


@st.composite
def nonempty_machines(draw):
    machine = draw(machines())
    if all(machine.table(op).is_empty for op in machine.operation_names):
        machine = MachineDescription(
            "random",
            {"opA": {"r0": [0]}},
        )
    return machine


@given(machines())
@settings(max_examples=60, deadline=None)
def test_reduction_preserves_matrix(machine):
    reduction = reduce_machine(machine)
    assert matrices_equal(machine, reduction.reduced)


@given(machines(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_word_reduction_preserves_matrix(machine, word_cycles):
    reduction = reduce_machine(
        machine, objective="word-uses", word_cycles=word_cycles
    )
    assert matrices_equal(machine, reduction.reduced)


@given(machines())
@settings(max_examples=40, deadline=None)
def test_matrix_symmetry(machine):
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    for op_x, op_y, latencies in matrix.pairs():
        for latency in latencies:
            assert matrix.is_forbidden(op_y, op_x, -latency)


@given(machines())
@settings(max_examples=40, deadline=None)
def test_elementary_pairs_are_valid_resources(machine):
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    for pair in elementary_pairs(matrix):
        assert resource_is_valid(pair, matrix)
        assert generated_instances(pair) <= set(matrix.instances())


@given(nonempty_machines(), st.integers(0, 2**32), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_query_modules_match_oracle(machine, seed, word_cycles):
    rng = random.Random(seed)
    discrete = DiscreteQueryModule(machine)
    bitvector = BitvectorQueryModule(machine, word_cycles=word_cycles)
    reduced = reduce_machine(machine).reduced
    reduced_module = DiscreteQueryModule(reduced)
    placed = []
    for _step in range(8):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(-3, 10)
        expected = schedule_is_contention_free(
            machine, placed + [(op, cycle)]
        )
        assert discrete.check(op, cycle) == expected
        assert bitvector.check(op, cycle) == expected
        assert reduced_module.check(op, cycle) == expected
        if expected:
            discrete.assign(op, cycle)
            bitvector.assign(op, cycle)
            reduced_module.assign(op, cycle)
            placed.append((op, cycle))


@given(nonempty_machines(), st.integers(0, 2**32), st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_modulo_modules_match_oracle(machine, seed, ii):
    rng = random.Random(seed)
    discrete = DiscreteQueryModule(machine, modulo=ii)
    bitvector = BitvectorQueryModule(machine, word_cycles=2, modulo=ii)
    placed = []
    for _step in range(8):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 20)
        reserved = {}
        expected = True
        for other_op, other_cycle in placed + [(op, cycle)]:
            for resource, c in machine.table(other_op).iter_usages():
                slot = (resource, (other_cycle + c) % ii)
                if slot in reserved:
                    expected = False
                reserved[slot] = True
        assert discrete.check(op, cycle) == expected
        assert bitvector.check(op, cycle) == expected
        if expected:
            discrete.assign(op, cycle)
            bitvector.assign(op, cycle)
            placed.append((op, cycle))


@given(nonempty_machines(), st.integers(0, 2**32))
@settings(max_examples=30, deadline=None)
def test_automaton_accepts_exactly_contention_free(machine, seed):
    from hypothesis import assume

    from repro.automata import AutomatonTooLarge

    try:
        # Even tiny machines can have exponentially many pending-set
        # states (a shared row reachable at many offsets with no issue
        # limiter) — a documented size limitation, not a correctness
        # property, so such examples are rejected rather than failed.
        automaton = PipelineAutomaton.build(machine, max_states=20_000)
    except AutomatonTooLarge:
        assume(False)
    rng = random.Random(seed)
    state = automaton.start()
    placed = []
    cycle = 0
    for _step in range(10):
        if rng.random() < 0.4:
            state = automaton.advance(state)
            cycle += 1
            continue
        op = rng.choice(machine.operation_names)
        expected = schedule_is_contention_free(
            machine, placed + [(op, cycle)]
        )
        assert automaton.can_issue(state, op) == expected
        if expected:
            state = automaton.issue(state, op)
            placed.append((op, cycle))


@given(machines())
@settings(max_examples=60, deadline=None)
def test_mdl_round_trip(machine):
    again = mdl.loads(mdl.dumps(machine))
    assert again == machine


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_generated_loops_schedule_and_verify(seed):
    from repro.machines import cydra5_subset
    from repro.scheduler import IterativeModuloScheduler, min_ii
    from repro.workloads import generate_loop

    machine = cydra5_subset()
    scheduler = IterativeModuloScheduler(machine)
    graph = generate_loop(seed)
    result = scheduler.schedule(graph)
    # schedule() re-verifies internally; assert the public invariants.
    assert result.ii >= min_ii(machine, graph)
    assert set(result.times) == {op.name for op in graph.operations()}
