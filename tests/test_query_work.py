"""Tests for work-unit accounting (the currency of Table 6)."""

from repro.query import (
    ASSIGN,
    ASSIGN_FREE,
    CHECK,
    FREE,
    FUNCTIONS,
    WorkCounters,
)


class TestCharge:
    def test_basic(self):
        work = WorkCounters()
        work.charge(CHECK, 3)
        assert work.calls[CHECK] == 1
        assert work.units[CHECK] == 3

    def test_minimum_one_unit(self):
        work = WorkCounters()
        work.charge(CHECK, 0)
        assert work.units[CHECK] == 1

    def test_per_call_average(self):
        work = WorkCounters()
        work.charge(FREE, 2)
        work.charge(FREE, 4)
        assert work.per_call(FREE) == 3.0

    def test_per_call_zero_when_never_called(self):
        assert WorkCounters().per_call(ASSIGN) == 0.0


class TestAggregation:
    def test_weighted_average_is_total_over_calls(self):
        work = WorkCounters()
        work.charge(CHECK, 1)
        work.charge(CHECK, 3)
        work.charge(ASSIGN_FREE, 6)
        assert work.total_calls == 3
        assert work.total_units == 10
        assert work.weighted_average() == 10 / 3

    def test_frequencies_sum_to_one(self):
        work = WorkCounters()
        work.charge(CHECK, 1)
        work.charge(CHECK, 1)
        work.charge(FREE, 1)
        freq = work.frequencies()
        assert abs(sum(freq.values()) - 1.0) < 1e-12
        assert freq[CHECK] == 2 / 3

    def test_empty_frequencies(self):
        freq = WorkCounters().frequencies()
        assert set(freq) == set(FUNCTIONS)
        assert all(v == 0.0 for v in freq.values())

    def test_merge(self):
        a = WorkCounters()
        b = WorkCounters()
        a.charge(CHECK, 2)
        b.charge(CHECK, 4)
        b.charge(FREE, 1)
        a.merge(b)
        assert a.calls[CHECK] == 2
        assert a.units[CHECK] == 6
        assert a.calls[FREE] == 1

    def test_reset(self):
        work = WorkCounters()
        work.charge(CHECK, 5)
        work.reset()
        assert work.total_calls == 0
        assert work.weighted_average() == 0.0

    def test_report_mentions_functions(self):
        work = WorkCounters()
        work.charge(CHECK, 2)
        report = work.report()
        assert "check" in report
        assert "weighted" in report


class TestEdgeCases:
    def test_clamp_applies_to_negative_work(self):
        # A buggy caller reporting negative work must still be charged
        # the paper's absolute minimum of one unit.
        work = WorkCounters()
        work.charge(ASSIGN, -5)
        assert work.units[ASSIGN] == 1

    def test_clamp_is_per_call_not_per_total(self):
        work = WorkCounters()
        work.charge(CHECK, 0)
        work.charge(CHECK, 0)
        work.charge(CHECK, 5)
        assert work.units[CHECK] == 7
        assert work.per_call(CHECK) == 7 / 3

    def test_weighted_average_zero_calls(self):
        assert WorkCounters().weighted_average() == 0.0

    def test_merge_empty_is_identity(self):
        work = WorkCounters()
        work.charge(CHECK, 2)
        work.merge(WorkCounters())
        assert work.calls[CHECK] == 1
        assert work.units[CHECK] == 2

    def test_merge_into_empty(self):
        source = WorkCounters()
        source.charge(FREE, 3)
        sink = WorkCounters()
        sink.merge(source)
        assert sink.units[FREE] == 3
        # Merging copies counts, it does not alias the source.
        source.charge(FREE, 1)
        assert sink.calls[FREE] == 1

    def test_merge_counters_across_schedulers(self):
        # The paper's tables aggregate work over many loops scheduled by
        # separate scheduler instances; merging their counters must equal
        # one counter that saw every call.
        from repro.machines import cydra5_subset
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import KERNELS

        machine = cydra5_subset()
        results = [
            IterativeModuloScheduler(machine).schedule(KERNELS[name]())
            for name in ("daxpy", "inner-product")
        ]
        combined = WorkCounters()
        for result in results:
            combined.merge(result.work)
        for fn in FUNCTIONS:
            assert combined.calls[fn] == sum(
                r.work.calls[fn] for r in results
            )
            assert combined.units[fn] == sum(
                r.work.units[fn] for r in results
            )
        assert combined.total_calls == sum(
            r.work.total_calls for r in results
        )
        assert combined.weighted_average() > 0
