"""Tests for work-unit accounting (the currency of Table 6)."""

from repro.query import (
    ASSIGN,
    ASSIGN_FREE,
    CHECK,
    FREE,
    FUNCTIONS,
    WorkCounters,
)


class TestCharge:
    def test_basic(self):
        work = WorkCounters()
        work.charge(CHECK, 3)
        assert work.calls[CHECK] == 1
        assert work.units[CHECK] == 3

    def test_minimum_one_unit(self):
        work = WorkCounters()
        work.charge(CHECK, 0)
        assert work.units[CHECK] == 1

    def test_per_call_average(self):
        work = WorkCounters()
        work.charge(FREE, 2)
        work.charge(FREE, 4)
        assert work.per_call(FREE) == 3.0

    def test_per_call_zero_when_never_called(self):
        assert WorkCounters().per_call(ASSIGN) == 0.0


class TestAggregation:
    def test_weighted_average_is_total_over_calls(self):
        work = WorkCounters()
        work.charge(CHECK, 1)
        work.charge(CHECK, 3)
        work.charge(ASSIGN_FREE, 6)
        assert work.total_calls == 3
        assert work.total_units == 10
        assert work.weighted_average() == 10 / 3

    def test_frequencies_sum_to_one(self):
        work = WorkCounters()
        work.charge(CHECK, 1)
        work.charge(CHECK, 1)
        work.charge(FREE, 1)
        freq = work.frequencies()
        assert abs(sum(freq.values()) - 1.0) < 1e-12
        assert freq[CHECK] == 2 / 3

    def test_empty_frequencies(self):
        freq = WorkCounters().frequencies()
        assert set(freq) == set(FUNCTIONS)
        assert all(v == 0.0 for v in freq.values())

    def test_merge(self):
        a = WorkCounters()
        b = WorkCounters()
        a.charge(CHECK, 2)
        b.charge(CHECK, 4)
        b.charge(FREE, 1)
        a.merge(b)
        assert a.calls[CHECK] == 2
        assert a.units[CHECK] == 6
        assert a.calls[FREE] == 1

    def test_reset(self):
        work = WorkCounters()
        work.charge(CHECK, 5)
        work.reset()
        assert work.total_calls == 0
        assert work.weighted_average() == 0.0

    def test_report_mentions_functions(self):
        work = WorkCounters()
        work.charge(CHECK, 2)
        report = work.report()
        assert "check" in report
        assert "weighted" in report
