"""Preservation certificates: issue, check, reject, and work accounting."""

import dataclasses

import pytest

from repro.core import (
    Certificate,
    certificate_from_machines,
    check_certificate,
    equivalence_work_units,
    issue_certificate,
    machine_digest,
    reduce_machine,
)
from repro.core.machine import MachineDescription
from repro.core.reservation import ReservationTable
from repro.errors import BudgetExceeded, CertificateError, EquivalenceError
from repro.resilience.budget import Budget
from repro.machines import (
    alpha21064,
    alternatives_machine,
    cydra5_subset,
    example_machine,
    mips_r3000,
    playdoh,
)

BUILTINS = [
    example_machine,
    cydra5_subset,
    alpha21064,
    mips_r3000,
    playdoh,
    alternatives_machine,
]


def _machine_with(machine, extra=None, drop=None):
    """Copy ``machine`` adding or removing one ``(op, (resource, cycle))``."""
    tables = {
        op: list(machine.table(op).iter_usages())
        for op in machine.operation_names
    }
    if extra is not None:
        op, usage = extra
        tables[op] = tables[op] + [usage]
    if drop is not None:
        op, usage = drop
        tables[op] = [u for u in tables[op] if u != usage]
    return MachineDescription(
        machine.name,
        {
            op: ReservationTable.from_pairs(pairs)
            for op, pairs in tables.items()
        },
        latencies={
            op: machine.latency_of(op)
            for op in machine.operation_names
            if machine.latency_of(op) is not None
        },
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", BUILTINS, ids=lambda f: f.__name__
    )
    def test_issue_and_check_every_builtin(self, factory):
        machine = factory()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        full = check_certificate(certificate, machine, reduction.reduced)
        assert full.mode == "full"
        structural = check_certificate(
            certificate, machine, reduction.reduced, recompute_matrix=False
        )
        assert structural.mode == "structural"
        assert structural.instances == full.instances
        assert structural.classes == full.classes

    @pytest.mark.parametrize(
        "factory", BUILTINS, ids=lambda f: f.__name__
    )
    def test_dict_round_trip(self, factory):
        machine = factory()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        clone = Certificate.from_dict(certificate.to_dict())
        assert clone.to_dict() == certificate.to_dict()
        check_certificate(clone, machine, reduction.reduced)

    def test_identity_certificate(self):
        machine = example_machine()
        certificate = certificate_from_machines(machine, machine)
        check_certificate(certificate, machine, machine)

    def test_issuing_inexact_reduction_raises_equivalence_error(self):
        machine = example_machine()
        reduced = reduce_machine(machine).reduced
        op = reduced.operation_names[0]
        resource = reduced.table(op).resources[0]
        inexact = _machine_with(reduced, extra=(op, (resource, 9)))
        with pytest.raises(EquivalenceError):
            certificate_from_machines(machine, inexact)

    def test_issuing_across_operation_sets_is_a_binding_error(self):
        with pytest.raises(CertificateError) as excinfo:
            certificate_from_machines(example_machine(), cydra5_subset())
        assert excinfo.value.kind == "binding"


class TestRejection:
    def test_byte_mutation_caught_by_binding(self):
        machine = example_machine()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        op = reduction.reduced.operation_names[0]
        resource = reduction.reduced.table(op).resources[0]
        mutated = _machine_with(reduction.reduced, extra=(op, (resource, 9)))
        with pytest.raises(CertificateError) as excinfo:
            check_certificate(certificate, machine, mutated)
        assert excinfo.value.kind == "binding"

    def test_added_usage_rejected_with_named_witness(self):
        """A mutated reduced description whose binding is forged must be
        rejected by the soundness scan, naming the offending pair."""
        machine = example_machine()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        op = reduction.reduced.operation_names[0]
        resource = reduction.reduced.table(op).resources[0]
        mutated = _machine_with(reduction.reduced, extra=(op, (resource, 9)))
        forged = dataclasses.replace(
            certificate, reduced_sha256=machine_digest(mutated)
        )
        with pytest.raises(CertificateError) as excinfo:
            check_certificate(
                forged, machine, mutated, recompute_matrix=False
            )
        err = excinfo.value
        assert err.kind in ("soundness", "classes")
        if err.kind == "soundness":
            assert err.instance is not None
            assert err.row is not None
            assert err.usage_x is not None and err.usage_y is not None

    def test_removed_usage_rejected(self):
        machine = example_machine()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        op = reduction.reduced.operation_names[0]
        usage = next(iter(reduction.reduced.table(op).iter_usages()))
        mutated = _machine_with(reduction.reduced, drop=(op, usage))
        forged = dataclasses.replace(
            certificate, reduced_sha256=machine_digest(mutated)
        )
        with pytest.raises(CertificateError) as excinfo:
            check_certificate(
                forged, machine, mutated, recompute_matrix=False
            )
        assert excinfo.value.kind in ("coverage", "classes", "soundness")

    def test_wrong_original_rejected(self):
        machine = example_machine()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        with pytest.raises(CertificateError) as excinfo:
            check_certificate(
                certificate, cydra5_subset(), reduction.reduced
            )
        assert excinfo.value.kind == "binding"


class TestSchema:
    def test_from_dict_rejects_wrong_schema(self):
        machine = example_machine()
        certificate = certificate_from_machines(machine, machine)
        data = certificate.to_dict()
        data["schema"] = "something-else"
        with pytest.raises(CertificateError) as excinfo:
            Certificate.from_dict(data)
        assert excinfo.value.kind == "schema"

    def test_from_dict_rejects_wrong_version(self):
        machine = example_machine()
        certificate = certificate_from_machines(machine, machine)
        data = certificate.to_dict()
        data["version"] = 999
        with pytest.raises(CertificateError) as excinfo:
            Certificate.from_dict(data)
        assert excinfo.value.kind == "schema"

    def test_from_dict_rejects_malformed_witness(self):
        machine = example_machine()
        certificate = certificate_from_machines(machine, machine)
        data = certificate.to_dict()
        data["witnesses"][0] = {"x": "A"}
        with pytest.raises(CertificateError) as excinfo:
            Certificate.from_dict(data)
        assert excinfo.value.kind == "schema"


class TestWorkUnits:
    @pytest.mark.parametrize(
        "factory",
        [example_machine, cydra5_subset, alpha21064],
        ids=lambda f: f.__name__,
    )
    def test_structural_check_is_cheaper_than_equivalence(self, factory):
        machine = factory()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        check = check_certificate(
            certificate, machine, reduction.reduced, recompute_matrix=False
        )
        assert check.units > 0
        assert check.units < equivalence_work_units(
            machine, reduction.reduced
        )


class TestArtifactStore:
    def test_write_and_load_certificate(self, tmp_path):
        from repro.resilience import load_certificate, write_certificate

        machine = example_machine()
        reduction = reduce_machine(machine)
        certificate = issue_certificate(reduction)
        path = str(tmp_path / "example.cert.json")
        write_certificate(path, certificate)
        loaded = load_certificate(path)
        assert loaded.to_dict() == certificate.to_dict()
        check_certificate(loaded, machine, reduction.reduced)

    def test_tampered_certificate_artifact_rejected(self, tmp_path):
        from repro.errors import ArtifactIntegrityError
        from repro.resilience import load_certificate, write_certificate

        machine = example_machine()
        certificate = certificate_from_machines(machine, machine)
        path = str(tmp_path / "example.cert.json")
        write_certificate(path, certificate)
        text = open(path, "r", encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(
            text.replace('"classes"', '"clasmes"', 1)
        )
        with pytest.raises(ArtifactIntegrityError):
            load_certificate(path)


class TestFallbackIntegration:
    def test_reduced_rung_carries_certificate(self):
        from repro.resilience import reduce_with_fallback

        machine = example_machine()
        outcome = reduce_with_fallback(machine)
        assert outcome.verified
        assert outcome.certificate is not None
        check_certificate(
            outcome.certificate, machine, outcome.machine,
            recompute_matrix=False,
        )

    def test_unverified_policy_has_no_certificate(self):
        from repro.resilience import FallbackPolicy, reduce_with_fallback

        machine = example_machine()
        outcome = reduce_with_fallback(
            machine, policy=FallbackPolicy(verify=False)
        )
        assert not outcome.verified
        assert outcome.certificate is None


class TestBudgetedCheck:
    def test_tight_budget_raises_with_certificate_phase(self):
        reduction = reduce_machine(example_machine())
        certificate = issue_certificate(reduction)
        with pytest.raises(BudgetExceeded) as info:
            check_certificate(
                certificate, reduction.original, reduction.reduced,
                budget=Budget(max_units=1),
            )
        assert info.value.phase == "certificate"

    def test_ample_budget_matches_unbudgeted_result(self):
        reduction = reduce_machine(example_machine())
        certificate = issue_certificate(reduction)
        unbudgeted = check_certificate(
            certificate, reduction.original, reduction.reduced
        )
        budgeted = check_certificate(
            certificate, reduction.original, reduction.reduced,
            budget=Budget(max_units=10**9),
        )
        assert budgeted.units == unbudgeted.units

    def test_full_matrix_recheck_is_budgeted_too(self):
        reduction = reduce_machine(cydra5_subset())
        certificate = issue_certificate(reduction)
        with pytest.raises(BudgetExceeded):
            check_certificate(
                certificate, reduction.original, reduction.reduced,
                recompute_matrix=True, budget=Budget(max_units=1),
            )
