"""Tests for alternative-operation selection policies."""

import pytest

from repro.machines import playdoh, PLAYDOH_LATENCIES
from repro.query import (
    FIRST_FIT,
    LEAST_USED,
    POLICIES,
    ROUND_ROBIN,
    DiscreteQueryModule,
    order_variants,
)
from repro.scheduler import DependenceGraph, IterativeModuloScheduler


class TestOrderVariants:
    VARIANTS = ("v0", "v1", "v2")

    def test_first_fit_keeps_order(self):
        assert order_variants(FIRST_FIT, self.VARIANTS, 5, {}) == self.VARIANTS

    def test_round_robin_rotates(self):
        assert order_variants(ROUND_ROBIN, self.VARIANTS, 0, {}) == (
            "v0", "v1", "v2",
        )
        assert order_variants(ROUND_ROBIN, self.VARIANTS, 1, {}) == (
            "v1", "v2", "v0",
        )
        assert order_variants(ROUND_ROBIN, self.VARIANTS, 4, {}) == (
            "v1", "v2", "v0",
        )

    def test_least_used_sorts_by_load(self):
        counts = {"v0": 3, "v1": 0, "v2": 1}
        assert order_variants(LEAST_USED, self.VARIANTS, 0, counts) == (
            "v1", "v2", "v0",
        )

    def test_least_used_tie_break_is_declaration_order(self):
        assert order_variants(LEAST_USED, self.VARIANTS, 0, {}) == (
            "v0", "v1", "v2",
        )

    def test_single_variant_short_circuit(self):
        assert order_variants(ROUND_ROBIN, ("only",), 7, {}) == ("only",)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            order_variants("bogus", self.VARIANTS, 0, {})


class TestModulePolicies:
    def test_round_robin_spreads(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        qm.alternative_policy = ROUND_ROBIN
        first = qm.check_with_alternatives("mov", 0)
        qm.assign(first, 0)
        second = qm.check_with_alternatives("mov", 1)
        assert {first, second} == {"mov.0", "mov.1"}

    def test_first_fit_repeats_when_free(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        assert qm.check_with_alternatives("mov", 0) == "mov.0"
        assert qm.check_with_alternatives("mov", 1) == "mov.0"

    def test_least_used_balances(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        qm.alternative_policy = LEAST_USED
        a = qm.check_with_alternatives("mov", 0)
        qm.assign(a, 0)
        b = qm.check_with_alternatives("mov", 1)
        assert b != a
        qm.assign(b, 1)
        token = qm.scheduled()[0]
        qm.free(token)
        # After freeing the first, it becomes the least used again.
        assert qm.check_with_alternatives("mov", 2) == token.op

    def test_policy_never_accepts_a_blocked_variant(self, dual_pipe):
        for policy in POLICIES:
            qm = DiscreteQueryModule(dual_pipe)
            qm.alternative_policy = policy
            qm.assign("add", 0)
            qm.assign("mul", 0)
            assert qm.check_with_alternatives("mov", 0) is None

    def test_reset_clears_policy_state(self, dual_pipe):
        qm = DiscreteQueryModule(dual_pipe)
        qm.alternative_policy = ROUND_ROBIN
        qm.check_with_alternatives("mov", 0)
        qm.reset()
        assert qm.check_with_alternatives("mov", 0) == "mov.0"


class TestSchedulerIntegration:
    def _wide_graph(self):
        graph = DependenceGraph("wide")
        for index in range(8):
            graph.add_operation("a%d" % index, "ialu")
        for index in range(4):
            graph.add_operation("f%d" % index, "fma")
            graph.add_dependence(
                "a%d" % index, "f%d" % index, PLAYDOH_LATENCIES["ialu"]
            )
        return graph

    @pytest.mark.parametrize("policy", POLICIES)
    def test_playdoh_schedules_under_every_policy(self, policy):
        scheduler = IterativeModuloScheduler(
            playdoh(), alternative_policy=policy
        )
        result = scheduler.schedule(self._wide_graph())
        assert result.ii >= result.mii
        result.graph.verify_schedule(result.times, ii=result.ii)

    def test_policies_achieve_same_or_better_ii(self):
        """Smarter probing can't worsen the II on this workload."""
        graph = self._wide_graph()
        baseline = IterativeModuloScheduler(
            playdoh(), alternative_policy=FIRST_FIT
        ).schedule(graph)
        for policy in (ROUND_ROBIN, LEAST_USED):
            other = IterativeModuloScheduler(
                playdoh(), alternative_policy=policy
            ).schedule(self._wide_graph())
            assert other.ii <= baseline.ii + 1
