"""The persistent run registry: records, checksums, retention, trend."""

import json
import os

import pytest

from repro.errors import RunlogError
from repro.obs.runlog import (
    ENV_RUNLOG_CLOCK,
    RUNLOG_SCHEMA_NAME,
    RUNLOG_SCHEMA_VERSION,
    RunLog,
    RunRecord,
    RunRecorder,
    args_digest,
    default_clock,
    detect_changepoint,
    record_digest,
)


class FakeClock:
    """A hand-cranked clock: every call returns ``now``, tests advance it."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def _recorder(command="schedule", clock=None, **arguments):
    return RunRecorder(command, arguments, clock=clock or FakeClock())


def _append(log, clock=None, command="schedule", **extra):
    recorder = _recorder(command=command, clock=clock)
    for key, value in extra.items():
        recorder.note(**{key: value})
    return log.append(recorder.finalize("ok", 0))


class TestRunRecorder:
    def test_finalize_envelope(self):
        clock = FakeClock(1000.0)
        recorder = RunRecorder(
            "schedule", {"machine": "cydra5-subset"}, clock=clock
        )
        clock.now = 1002.5
        recorder.note(machine="cydra5-subset", rung="full")
        record = recorder.finalize("ok", 0)
        assert record["schema"] == RUNLOG_SCHEMA_NAME
        assert record["version"] == RUNLOG_SCHEMA_VERSION
        assert record["command"] == "schedule"
        assert record["ts"] == 1000.0
        assert record["duration_s"] == 2.5
        assert record["outcome"] == "ok"
        assert record["exit_code"] == 0
        assert record["machine"] == "cydra5-subset"
        assert record["rung"] == "full"
        assert record["work"] == {"units": {}, "calls": {}}

    def test_units_and_calls_merge_additively(self):
        recorder = _recorder()
        recorder.add_units({"check": 10.0, "assign": 2.0})
        recorder.add_units({"check": 5.0})
        recorder.calls["check"] = 3
        record = recorder.finalize("ok", 0)
        assert record["work"]["units"] == {"assign": 2.0, "check": 15.0}
        assert record["work"]["calls"] == {"check": 3}

    def test_quality_merge_derives_mii_gap(self):
        recorder = _recorder()
        recorder.merge_quality({"ii_total": 7, "mii_total": 5, "loops": 1})
        recorder.merge_quality({"ii_total": 4, "mii_total": 4, "loops": 1})
        record = recorder.finalize("ok", 0)
        assert record["quality"]["ii_total"] == 11
        assert record["quality"]["mii_total"] == 9
        assert record["quality"]["mii_gap"] == 2
        assert record["quality"]["loops"] == 2

    def test_no_quality_key_when_nothing_merged(self):
        assert "quality" not in _recorder().finalize("ok", 0)

    def test_duration_never_negative(self):
        clock = FakeClock(50.0)
        recorder = _recorder(clock=clock)
        clock.now = 40.0  # clock moved backwards (e.g. NTP step)
        assert recorder.finalize("ok", 0)["duration_s"] == 0.0


class TestDigests:
    def test_args_digest_is_stable_and_order_independent(self):
        a = args_digest({"machine": "cydra5", "loops": 4})
        b = args_digest({"loops": 4, "machine": "cydra5"})
        assert a == b
        assert len(a) == 16
        assert args_digest({"machine": "other", "loops": 4}) != a

    def test_args_digest_scrubs_non_json_values(self):
        digest = args_digest({"func": print, "machine": "m"})
        assert digest == args_digest({"func": len, "machine": "m"})

    def test_record_digest_excludes_sha_field(self):
        record = {"command": "reduce", "seq": 1}
        digest = record_digest(record)
        assert record_digest(dict(record, sha256=digest)) == digest

    def test_default_clock_env_pinning(self, monkeypatch):
        monkeypatch.setenv(ENV_RUNLOG_CLOCK, "1234.5")
        clock = default_clock()
        assert clock() == 1234.5
        assert clock() == 1234.5

    def test_default_clock_bad_pin_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_RUNLOG_CLOCK, "not-a-number")
        with pytest.raises(RunlogError):
            default_clock()

    def test_default_clock_unpinned_moves(self, monkeypatch):
        monkeypatch.delenv(ENV_RUNLOG_CLOCK, raising=False)
        clock = default_clock()
        assert clock() > 0


class TestRunLog:
    def test_append_assigns_sequence_and_checksum(self, tmp_path):
        log = RunLog(str(tmp_path))
        first = _append(log)
        second = _append(log)
        assert os.path.basename(first).startswith("run-00000001-")
        assert os.path.basename(second).startswith("run-00000002-")
        data = json.loads(open(first).read())
        assert data["sha256"] == record_digest(data)
        assert log.next_seq() == 3

    def test_pinned_clock_records_are_byte_identical(self, tmp_path):
        clock = FakeClock(500.0)
        one = _append(RunLog(str(tmp_path / "a")), clock=FakeClock(500.0))
        two = _append(RunLog(str(tmp_path / "b")), clock=clock)
        assert open(one, "rb").read() == open(two, "rb").read()

    def test_records_round_trip(self, tmp_path):
        log = RunLog(str(tmp_path))
        _append(log, machine="cydra5-subset")
        records = log.records()
        assert len(records) == 1
        record = records[0]
        assert not record.corrupt
        assert record.seq == 1
        assert record.command == "schedule"
        assert record.outcome == "ok"
        assert record.data["machine"] == "cydra5-subset"

    def test_tampered_record_is_corrupt_not_fatal(self, tmp_path):
        log = RunLog(str(tmp_path))
        path = _append(log)
        data = json.loads(open(path).read())
        data["exit_code"] = 99  # tamper without recomputing the checksum
        with open(path, "w") as handle:
            json.dump(data, handle)
        _append(log)
        records = log.records()
        assert [r.corrupt for r in records] == [True, False]
        assert "checksum mismatch" in records[0].error
        assert len(log.records(include_corrupt=False)) == 1

    def test_unparseable_record_is_corrupt(self, tmp_path):
        log = RunLog(str(tmp_path))
        path = _append(log)
        with open(path, "w") as handle:
            handle.write("{ this is not json")
        record = log.records()[0]
        assert record.corrupt
        assert "unreadable" in record.error

    def test_wrong_schema_is_corrupt(self, tmp_path):
        log = RunLog(str(tmp_path))
        path = _append(log)
        data = json.loads(open(path).read())
        data["version"] = RUNLOG_SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        record = log.records()[0]
        assert record.corrupt
        assert "schema" in record.error

    def test_get_and_missing_seq(self, tmp_path):
        log = RunLog(str(tmp_path))
        _append(log)
        assert log.get(1).seq == 1
        with pytest.raises(RunlogError):
            log.get(42)

    def test_tail(self, tmp_path):
        log = RunLog(str(tmp_path))
        for _ in range(5):
            _append(log)
        assert [r.seq for r in log.tail(2)] == [4, 5]
        assert [r.seq for r in log.tail(0)] == [1, 2, 3, 4, 5]

    def test_empty_directory(self, tmp_path):
        log = RunLog(str(tmp_path / "never-created"))
        assert log.records() == []
        assert log.next_seq() == 1

    def test_gc_keeps_newest(self, tmp_path):
        log = RunLog(str(tmp_path))
        for _ in range(5):
            _append(log)
        removed = log.gc(keep=2)
        assert len(removed) == 3
        assert [r.seq for r in log.records()] == [4, 5]

    def test_gc_prune_corrupt(self, tmp_path):
        log = RunLog(str(tmp_path))
        path = _append(log)
        _append(log)
        with open(path, "w") as handle:
            handle.write("garbage")
        removed = log.gc(keep=10, prune_corrupt=True)
        assert removed == [path]
        assert [r.seq for r in log.records()] == [2]

    def test_gc_negative_keep_raises(self, tmp_path):
        with pytest.raises(RunlogError):
            RunLog(str(tmp_path)).gc(keep=-1)


class TestMetricResolution:
    def _record(self):
        recorder = _recorder()
        recorder.add_units({"check": 120.0})
        recorder.calls["check"] = 4
        recorder.merge_quality({"ii_total": 7, "mii_total": 6})
        data = recorder.finalize("ok", 0)
        data["seq"] = 1
        return RunRecord(seq=1, path="r.json", data=data)

    def test_units_calls_quality_and_envelope(self):
        record = self._record()
        assert record.metric("units.check") == 120.0
        assert record.metric("calls.check") == 4.0
        assert record.metric("quality.ii_total") == 7.0
        assert record.metric("quality.mii_gap") == 1.0
        assert record.metric("total_units") == 120.0
        assert record.metric("exit_code") == 0.0
        assert record.metric("duration_s") is not None

    def test_untracked_metric_is_none(self):
        assert self._record().metric("units.compile") is None

    def test_unknown_metric_raises(self):
        with pytest.raises(RunlogError):
            self._record().metric("nonsense")

    def test_series_skips_untracked_and_windows(self, tmp_path):
        log = RunLog(str(tmp_path))
        for index in range(4):
            recorder = _recorder()
            if index != 1:  # record 2 never charged CHECK
                recorder.add_units({"check": 100.0 + index})
            log.append(recorder.finalize("ok", 0))
        series = log.series("units.check")
        assert series == [(1, 100.0), (3, 102.0), (4, 103.0)]
        assert log.series("units.check", window=2) == [(3, 102.0),
                                                       (4, 103.0)]


class TestDetectChangepoint:
    def _series(self, before, after, base=1):
        points = [(base + i, v) for i, v in enumerate(before + after)]
        return points

    def test_step_regression_is_flagged_at_the_right_seq(self):
        points = self._series([100.0] * 6, [140.0] * 6)
        cp = detect_changepoint(points, "units.check", seed=0)
        assert cp is not None
        assert cp.seq == 7  # first record after the shift
        assert cp.index == 6
        assert cp.direction == "regression"
        assert cp.before == pytest.approx(100.0)
        assert cp.after == pytest.approx(140.0)
        assert cp.ratio == pytest.approx(1.4)
        assert cp.p_value <= 0.05

    def test_improvement_polarity(self):
        points = self._series([140.0] * 6, [100.0] * 6)
        cp = detect_changepoint(points, "units.check", seed=0)
        assert cp is not None and cp.direction == "improvement"

    def test_bigger_is_better_flips_polarity(self):
        points = self._series([4.0] * 6, [2.0] * 6)
        cp = detect_changepoint(
            points, "quality.loops_at_mii", seed=0, bigger_is_better=True
        )
        assert cp is not None and cp.direction == "regression"

    def test_flat_series_has_no_changepoint(self):
        assert detect_changepoint(
            self._series([100.0] * 5, [100.0] * 5), "units.check"
        ) is None

    def test_min_ratio_guard_suppresses_tiny_shifts(self):
        points = self._series([100.0] * 6, [100.5] * 6)
        assert detect_changepoint(points, "units.check") is None
        assert detect_changepoint(
            points, "units.check", min_ratio=1.001
        ) is not None

    def test_too_few_points_is_none(self):
        assert detect_changepoint(
            [(1, 1.0), (2, 9.0), (3, 9.0)], "units.check"
        ) is None

    def test_seeded_determinism(self):
        points = self._series(
            [100.0, 101.0, 99.0, 100.5, 99.5],
            [130.0, 131.0, 129.0, 130.5, 129.5],
        )
        first = detect_changepoint(points, "units.check", seed=7)
        second = detect_changepoint(points, "units.check", seed=7)
        assert first is not None and second is not None
        assert first.to_dict() == second.to_dict()

    def test_to_dict_round_trips_through_json(self):
        cp = detect_changepoint(
            self._series([100.0] * 5, [150.0] * 5), "units.check"
        )
        payload = json.loads(json.dumps(cp.to_dict()))
        assert payload["direction"] == "regression"
        assert payload["metric"] == "units.check"
