"""Tests for the pipeline automata (monolithic and factored)."""

import pytest

from repro.automata import (
    ADVANCE,
    AutomatonTooLarge,
    FactoredAutomata,
    PER_RESOURCE,
    PipelineAutomaton,
    factor_resources,
)
from repro.machines import example_machine, mips_r3000


class TestMonolithic:
    def test_start_is_empty_state(self, example):
        automaton = PipelineAutomaton.build(example)
        assert automaton.start() == 0
        assert automaton.can_issue(0, "A")
        assert automaton.can_issue(0, "B")

    def test_self_conflict_at_distance_zero(self, example):
        automaton = PipelineAutomaton.build(example)
        after_a = automaton.issue(0, "A")
        assert not automaton.can_issue(after_a, "A")

    def test_forbidden_latency_via_advance(self, example):
        """B then advance once: another B is rejected (1 in F[B][B])."""
        automaton = PipelineAutomaton.build(example)
        state = automaton.issue(0, "B")
        state = automaton.advance(state)
        assert not automaton.can_issue(state, "B")

    def test_allowed_latency_accepted(self, example):
        automaton = PipelineAutomaton.build(example)
        state = automaton.issue(0, "B")
        for _ in range(4):
            state = automaton.advance(state)
        assert automaton.can_issue(state, "B")

    def test_drains_to_start(self, example):
        automaton = PipelineAutomaton.build(example)
        state = automaton.issue(0, "B")
        for _ in range(20):
            state = automaton.advance(state)
        assert state == automaton.start()

    def test_reverse_automaton_builds(self, example):
        forward = PipelineAutomaton.build(example)
        backward = PipelineAutomaton.build(example, reverse=True)
        assert backward.reverse
        # Same machine: reversing does not change the state-count order
        # of magnitude (identical for this symmetric example).
        assert backward.num_states > 1
        assert forward.num_states > 1

    def test_max_states_enforced(self):
        with pytest.raises(AutomatonTooLarge):
            PipelineAutomaton.build(mips_r3000(), max_states=1000)

    def test_memory_estimate_positive(self, example):
        automaton = PipelineAutomaton.build(example)
        assert automaton.memory_bytes() > 0


class TestFactoring:
    def test_unit_groups_by_prefix(self, mips):
        groups = factor_resources(mips, "unit")
        prefixes = {group[0].split(".")[0] for group in groups}
        assert prefixes == {"iu", "fp"}

    def test_per_resource_groups(self, mips):
        groups = factor_resources(mips, PER_RESOURCE)
        assert len(groups) == mips.num_resources

    def test_unknown_mode(self, mips):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            factor_resources(mips, "bogus")

    def test_factored_accepts_iff_monolithic(self, example):
        mono = PipelineAutomaton.build(example)
        fact = FactoredAutomata.build(example, mode=PER_RESOURCE)
        # Exhaustive comparison over a schedule prefix tree of depth 4.
        def explore(m_state, f_state, depth):
            if depth == 0:
                return
            for op in example.operation_names:
                assert mono.can_issue(m_state, op) == fact.can_issue(
                    f_state, op
                )
                if mono.can_issue(m_state, op):
                    explore(
                        mono.issue(m_state, op),
                        fact.issue(f_state, op),
                        depth - 1,
                    )
            explore(
                mono.advance(m_state), fact.advance(f_state), depth - 1
            )

        explore(mono.start(), fact.start(), 4)

    def test_per_resource_small_on_example(self, example):
        fact = FactoredAutomata.build(example, mode=PER_RESOURCE)
        assert fact.num_factors == example.num_resources
        mono = PipelineAutomaton.build(example)
        assert fact.max_factor_states < mono.num_states

    def test_per_resource_explodes_without_issue_limiter(self):
        """A lone result-bus row reachable at many offsets blows up when
        factored away from the unit-busy rows that serialize it — the
        automata-size hazard the paper's Section 2 describes."""
        with pytest.raises(AutomatonTooLarge):
            FactoredAutomata.build(
                mips_r3000(), mode=PER_RESOURCE, max_states=50_000
            )

    def test_issue_rejects_conflicts(self, example):
        fact = FactoredAutomata.build(example)
        state = fact.issue(fact.start(), "B")
        assert fact.issue(state, "B") is None
