"""Tests for the error hierarchy and miscellaneous public surface."""

import pytest

from repro import __version__
from repro.errors import (
    EquivalenceError,
    MachineDescriptionError,
    ParseError,
    QueryError,
    ReductionError,
    ReproError,
    ScheduleError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            MachineDescriptionError,
            ReductionError,
            EquivalenceError,
            ScheduleError,
            QueryError,
            ParseError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_equivalence_is_a_reduction_error(self):
        assert issubclass(EquivalenceError, ReductionError)

    def test_equivalence_carries_mismatches(self):
        mismatches = [("A", "B", frozenset({1}), frozenset())]
        error = EquivalenceError("boom", mismatches)
        assert error.mismatches == mismatches
        assert EquivalenceError("boom").mismatches == []

    def test_parse_error_formats_line(self):
        error = ParseError("bad token", line=7)
        assert "line 7" in str(error)
        assert error.line == 7
        assert ParseError("no line").line is None

    def test_single_catch_covers_library(self):
        from repro import mdl

        with pytest.raises(ReproError):
            mdl.loads("not a machine at all\n")


class TestPackageSurface:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_root_reexports(self):
        import repro

        for name in (
            "MachineDescription",
            "reduce_machine",
            "example_machine",
            "ForbiddenLatencyMatrix",
        ):
            assert hasattr(repro, name)

    def test_main_module_runs(self, capsys):
        import runpy
        import sys

        argv = sys.argv
        sys.argv = ["repro", "stats", "example", "--word-cycles", "1"]
        try:
            with pytest.raises(SystemExit) as info:
                runpy.run_module("repro", run_name="__main__")
            assert info.value.code == 0
        finally:
            sys.argv = argv
        assert "paper-example" in capsys.readouterr().out

    def test_cli_table_command(self, capsys):
        from repro.cli import main

        assert main(["table", "example", "--word-cycles", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "4-cycle-word" in out
        assert "resources" in out


class TestFullCydraReduction:
    def test_full_machine_reduces_exactly(self):
        """The big one: the complete Cydra 5 model, both objectives."""
        from repro.core import matrices_equal, reduce_machine
        from repro.machines import cydra5

        machine = cydra5()
        for kwargs in (
            {},
            {"objective": "word-uses", "word_cycles": 4},
            {"collapse_classes": True},
        ):
            reduction = reduce_machine(machine, **kwargs)
            assert matrices_equal(machine, reduction.reduced)
            assert reduction.reduced.num_resources < machine.num_resources
