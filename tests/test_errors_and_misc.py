"""Tests for the error hierarchy and miscellaneous public surface."""

import pytest

from repro import __version__
from repro.errors import (
    EquivalenceError,
    MachineDescriptionError,
    ParseError,
    QueryError,
    ReductionError,
    ReproError,
    ScheduleError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            MachineDescriptionError,
            ReductionError,
            EquivalenceError,
            ScheduleError,
            QueryError,
            ParseError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_equivalence_is_a_reduction_error(self):
        assert issubclass(EquivalenceError, ReductionError)

    def test_equivalence_carries_mismatches(self):
        mismatches = [("A", "B", frozenset({1}), frozenset())]
        error = EquivalenceError("boom", mismatches)
        assert error.mismatches == mismatches
        assert EquivalenceError("boom").mismatches == []

    def test_equivalence_rendering_capped_at_20_pairs(self):
        from repro.errors import MISMATCH_RENDER_LIMIT

        mismatches = [
            ("op%03d" % i, "op%03d" % i, frozenset({1}), frozenset())
            for i in range(MISMATCH_RENDER_LIMIT + 7)
        ]
        text = str(EquivalenceError("boom", mismatches))
        assert "… and 7 more" in text
        assert "op%03d" % (MISMATCH_RENDER_LIMIT - 1) in text
        assert "op%03d" % MISMATCH_RENDER_LIMIT not in text
        # At or under the cap, no suffix appears.
        short = str(
            EquivalenceError("boom", mismatches[:MISMATCH_RENDER_LIMIT])
        )
        assert "more" not in short

    def test_schedule_error_attributes(self):
        error = ScheduleError(
            "gave up", ii_range=(3, 7), attempts=["a"],
            budget_exceeded=True,
        )
        assert error.ii_range == (3, 7)
        assert error.attempts == ["a"]
        assert error.budget_exceeded is True
        bare = ScheduleError("plain")
        assert bare.ii_range is None
        assert bare.attempts == []
        assert bare.budget_exceeded is False

    def test_budget_and_artifact_errors_are_repro_errors(self):
        from repro.errors import ArtifactIntegrityError, BudgetExceeded

        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(ArtifactIntegrityError, ReproError)
        error = BudgetExceeded(
            "late", phase="ims", elapsed_s=2.0, deadline_s=1.0,
            units=10, max_units=5, progress="II=4", partial={"ii": 4},
        )
        assert error.phase == "ims"
        assert error.partial == {"ii": 4}

    def test_parse_error_formats_line(self):
        error = ParseError("bad token", line=7)
        assert "line 7" in str(error)
        assert error.line == 7
        assert ParseError("no line").line is None

    def test_single_catch_covers_library(self):
        from repro import mdl

        with pytest.raises(ReproError):
            mdl.loads("not a machine at all\n")


class TestPackageSurface:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_root_reexports(self):
        import repro

        for name in (
            "MachineDescription",
            "reduce_machine",
            "example_machine",
            "ForbiddenLatencyMatrix",
        ):
            assert hasattr(repro, name)

    def test_main_module_runs(self, capsys):
        import runpy
        import sys

        argv = sys.argv
        sys.argv = ["repro", "stats", "example", "--word-cycles", "1"]
        try:
            with pytest.raises(SystemExit) as info:
                runpy.run_module("repro", run_name="__main__")
            assert info.value.code == 0
        finally:
            sys.argv = argv
        assert "paper-example" in capsys.readouterr().out

    def test_cli_table_command(self, capsys):
        from repro.cli import main

        assert main(["table", "example", "--word-cycles", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "4-cycle-word" in out
        assert "resources" in out


class TestFullCydraReduction:
    def test_full_machine_reduces_exactly(self):
        """The big one: the complete Cydra 5 model, both objectives."""
        from repro.core import matrices_equal, reduce_machine
        from repro.machines import cydra5

        machine = cydra5()
        for kwargs in (
            {},
            {"objective": "word-uses", "word_cycles": 4},
            {"collapse_classes": True},
        ):
            reduction = reduce_machine(machine, **kwargs)
            assert matrices_equal(machine, reduction.reduced)
            assert reduction.reduced.num_resources < machine.num_resources
