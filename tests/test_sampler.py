"""The background sampling profiler: synthetic frames, SAMPLE charges,
collapsed export, and thread lifecycle."""

import threading
import time

import pytest

from repro import obs
from repro.obs.sampler import (
    DEFAULT_INTERVAL_S,
    StackSampler,
    frame_label,
    stack_path,
)


class FakeFrame:
    """Just enough of a frame object for the sampler: code + back link."""

    class _Code:
        def __init__(self, filename, name):
            self.co_filename = filename
            self.co_name = name

    def __init__(self, filename, name, back=None):
        self.f_code = self._Code(filename, name)
        self.f_back = back


def _stack(*labels):
    """Build a leaf frame whose chain reads root-first as ``labels``."""
    frame = None
    for filename, name in labels:
        frame = FakeFrame(filename, name, back=frame)
    return frame


def _frames_provider(mapping):
    """Frames provider keyed away from the calling thread's ident."""
    def provider():
        own = threading.get_ident()
        return {
            own + 1 + offset: frame
            for offset, frame in enumerate(mapping)
        }
    return provider


LEAF = _stack(
    ("/repo/src/repro/cli.py", "main"),
    ("/repo/src/repro/query/discrete.py", "check"),
)


class TestFrameHelpers:
    def test_frame_label_is_basename_and_function(self):
        assert frame_label(LEAF) == "discrete.py:check"

    def test_stack_path_is_root_first(self):
        assert stack_path(LEAF) == ("cli.py:main", "discrete.py:check")

    def test_stack_path_truncates_at_root_end(self):
        deep = _stack(*[("f.py", "fn%d" % i) for i in range(10)])
        path = stack_path(deep, max_depth=3)
        assert len(path) == 3
        assert path[-1] == "f.py:fn9"  # leaves always kept


class TestSampleOnce:
    def test_counts_accumulate_deterministically(self):
        sampler = StackSampler(frames=_frames_provider([LEAF]))
        assert sampler.sample_once() == 1
        assert sampler.sample_once() == 1
        assert sampler.counts == {
            ("cli.py:main", "discrete.py:check"): 2
        }
        assert sampler.samples == 2

    def test_own_thread_is_excluded(self):
        def provider():
            return {threading.get_ident(): LEAF}
        sampler = StackSampler(frames=provider)
        assert sampler.sample_once() == 0
        assert sampler.counts == {}

    def test_charges_sample_units_through_tracer(self):
        tracer = obs.Tracer()
        sampler = StackSampler(
            tracer=tracer, frames=_frames_provider([LEAF, LEAF])
        )
        sampler.sample_once()
        assert tracer.metrics.counters["query.sample.units"] == 2
        assert tracer.metrics.timers["query.sample"].count == 1

    def test_no_tracer_charges_nothing(self):
        sampler = StackSampler(frames=_frames_provider([LEAF]))
        assert sampler.sample_once() == 1  # accumulates, never raises

    def test_empty_snapshot_charges_nothing(self):
        tracer = obs.Tracer()
        sampler = StackSampler(tracer=tracer, frames=lambda: {})
        assert sampler.sample_once() == 0
        assert "query.sample.units" not in tracer.metrics.counters

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StackSampler(interval_s=0)
        with pytest.raises(ValueError):
            StackSampler(interval_s=-1.0)


class TestCollapsedExport:
    def _sampler(self, ticks=3):
        sampler = StackSampler(
            interval_s=0.002, frames=_frames_provider([LEAF])
        )
        for _ in range(ticks):
            sampler.sample_once()
        return sampler

    def test_lines_are_rooted_and_weighted_in_microseconds(self):
        lines = self._sampler(ticks=3).collapsed_lines()
        assert lines == [
            "sampler;cli.py:main;discrete.py:check 6000"
        ]

    def test_custom_and_empty_root(self):
        sampler = self._sampler(ticks=1)
        assert sampler.collapsed_lines(root="bg")[0].startswith("bg;")
        assert sampler.collapsed_lines(root="")[0].startswith("cli.py:")

    def test_write_collapsed(self, tmp_path):
        out = tmp_path / "stacks.txt"
        self._sampler().write_collapsed(str(out))
        text = out.read_text()
        assert text.endswith("\n")
        assert "sampler;cli.py:main" in text

    def test_write_collapsed_empty_sampler(self, tmp_path):
        out = tmp_path / "stacks.txt"
        StackSampler(frames=lambda: {}).write_collapsed(str(out))
        assert out.read_text() == ""

    def test_merges_with_span_tracer_export(self):
        # The two exports share the microsecond unit, so one flamegraph
        # file can carry both (this is what `profile --sample` writes).
        tracer = obs.Tracer()
        with obs.tracing(tracer=tracer):
            with obs.span("phase", obs.CAT_PROFILE):
                pass
        merged = obs.collapsed_stack_lines(tracer) + (
            self._sampler(ticks=1).collapsed_lines()
        )
        assert any(line.startswith("profile.phase ") for line in merged)
        assert any(line.startswith("sampler;") for line in merged)


class TestLifecycle:
    def test_background_thread_samples_and_stops(self):
        sampler = StackSampler(
            interval_s=0.001, frames=_frames_provider([LEAF])
        )
        with sampler:
            assert sampler.running
            deadline = time.monotonic() + 2.0
            while sampler.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
        assert not sampler.running
        assert sampler.samples > 0
        taken = sampler.samples
        time.sleep(0.01)
        assert sampler.samples == taken  # really stopped

    def test_start_is_idempotent(self):
        sampler = StackSampler(interval_s=0.001, frames=lambda: {})
        try:
            thread_one = sampler.start()._thread
            assert sampler.start()._thread is thread_one
        finally:
            sampler.stop()

    def test_stop_without_start_is_harmless(self):
        StackSampler(frames=lambda: {}).stop()

    def test_default_interval_is_sane(self):
        assert 0 < DEFAULT_INTERVAL_S <= 0.1

    def test_repr_mentions_state(self):
        sampler = StackSampler(frames=_frames_provider([LEAF]))
        sampler.sample_once()
        assert "1 samples" in repr(sampler)
        assert "stopped" in repr(sampler)
