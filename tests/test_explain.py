"""MII attribution, explain reports, workload porting, and the CLI.

The explain observatory answers *why*: which constraint pins MII, why
each II attempt failed, and what the served schedule looks like.  These
tests pin the attribution cases of
:func:`~repro.scheduler.mii.mii_attribution`, the
``repro-explain-report`` v1 document contract, both renderers, the
Cydra-vocabulary porting behind ``repro explain``, and the command
itself (including ``repro schedule --explain``).
"""

import json

import pytest

from repro.cli import main
from repro.analysis import (
    EXPLAIN_SCHEMA_NAME,
    EXPLAIN_SCHEMA_VERSION,
    build_explain_report,
    explain_loop,
    render_explain_html,
    render_explain_text,
    validate_explain_report,
)
from repro.core import MachineDescription
from repro.errors import ScheduleError
from repro.machines import STUDY_MACHINES, cydra5_subset, example_machine
from repro.resilience.artifacts import verify_artifact
from repro.scheduler import mii_attribution
from repro.scheduler.ddg import DependenceGraph
from repro.workloads import KERNELS, PORTS, port_graph


def _single_unit_machine():
    return MachineDescription("tiny", {"u": {"unit": [0]}})


class TestMiiAttribution:
    def test_resource_pinned(self):
        machine = _single_unit_machine()
        graph = DependenceGraph("pair")
        graph.add_operation("a", "u")
        graph.add_operation("b", "u")
        info = mii_attribution(machine, graph)
        assert info["mii"] == 2
        assert info["pinned_by"] == {
            "kind": "resource", "resource": "unit", "usages": 2,
        }
        assert info["usage_totals"] == {"unit": 2}

    def test_recurrence_pinned(self):
        machine = _single_unit_machine()
        graph = DependenceGraph("loop")
        graph.add_operation("a", "u")
        graph.add_operation("b", "u")
        graph.add_dependence("a", "b", 2)
        graph.add_dependence("b", "a", 2, distance=1)
        info = mii_attribution(machine, graph)
        assert info["rec_mii"] == 4
        assert info["pinned_by"] == {"kind": "recurrence", "rec_mii": 4}

    def test_self_contention_pinned(self):
        # One op using the bus at cycles 0 and 2: the self-forbidden
        # latency 2 rules out II=1 and II=2, beating the usage bound.
        machine = MachineDescription("fold", {"op": {"bus": [0, 2]}})
        graph = DependenceGraph("solo")
        graph.add_operation("a", "op")
        info = mii_attribution(machine, graph)
        assert info["res_mii"] == 3
        assert info["pinned_by"] == {
            "kind": "self-contention", "opcode": "op", "min_ii": 3,
        }
        assert info["self_contention"] == {"op": 3}


class TestExplainLoop:
    def test_success_entry(self):
        entry = explain_loop(cydra5_subset(), KERNELS["daxpy"]())
        assert entry["succeeded"] is True
        assert entry["ii"] >= entry["mii"]["mii"]
        assert entry["placements"]
        assert entry["attempts"][-1]["succeeded"] is True
        assert entry["narrative"]
        assert "pinned by" in entry["mii_narrative"]

    def test_failure_entry(self):
        machine = _single_unit_machine()
        graph = DependenceGraph("bad")
        graph.add_operation("a", "u")
        graph.add_operation("b", "u")
        graph.add_dependence("a", "b", 1)
        graph.add_dependence("b", "a", 1)  # zero-distance cycle
        entry = explain_loop(machine, graph)
        assert entry["succeeded"] is False
        assert entry["ii"] is None
        assert entry["error"]
        assert "ledger_tail" in entry
        assert entry["mii"]["pinned_by"] == {"kind": "invalid"}
        assert entry["mii_narrative"].startswith("MII undefined")
        # An invalid entry still renders and validates inside a report.
        report = build_explain_report(machine, [graph])
        validate_explain_report(report)
        assert report["summary"]["failed"] == 1
        assert "MII undefined" in render_explain_text(report)
        assert "MII undefined" in render_explain_html(report)


class TestReportDocument:
    def test_build_and_validate(self):
        machine = cydra5_subset()
        graphs = [KERNELS["daxpy"](), KERNELS["tridiagonal"]()]
        report = build_explain_report(machine, graphs)
        validate_explain_report(report)
        assert report["schema"] == {
            "name": EXPLAIN_SCHEMA_NAME,
            "version": EXPLAIN_SCHEMA_VERSION,
        }
        assert report["machine"] == machine.name
        assert report["summary"]["loops"] == 2
        assert report["summary"]["scheduled"] == 2
        assert json.loads(json.dumps(report)) == report

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            validate_explain_report({"schema": {"name": "other"}})
        report = build_explain_report(
            cydra5_subset(), [KERNELS["daxpy"]()]
        )
        del report["summary"]
        with pytest.raises(ValueError):
            validate_explain_report(report)

    def test_validate_rejects_broken_loop_entry(self):
        report = build_explain_report(
            cydra5_subset(), [KERNELS["daxpy"]()]
        )
        del report["loops"][0]["narrative"]
        with pytest.raises(ValueError):
            validate_explain_report(report)

    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_study_machines_name_their_pin(self, name):
        machine = STUDY_MACHINES[name]()
        graphs = [
            port_graph(KERNELS[k](), machine)
            for k in ("daxpy", "tridiagonal")
        ]
        report = build_explain_report(machine, graphs)
        validate_explain_report(report)
        for entry in report["loops"]:
            pinned = entry["mii"]["pinned_by"]
            assert pinned["kind"] in (
                "recurrence", "resource", "self-contention"
            )
            assert entry["mii_narrative"].startswith("pinned by")


class TestRenderers:
    def _report(self):
        machine = cydra5_subset()
        report = build_explain_report(
            machine, [KERNELS["daxpy"](), KERNELS["tridiagonal"]()]
        )
        return machine, report

    def test_text_narrates(self):
        machine, report = self._report()
        text = render_explain_text(report, machine=machine)
        assert text.startswith("explain: cydra5-subset")
        assert "MII=" in text
        assert "scheduled at II=" in text
        # With the machine handy, the MRT occupancy chart rides along.
        assert "legend:" in text

    def test_html_is_escaped_and_self_contained(self):
        machine, report = self._report()
        report["machine"] = "<m&chine>"
        # Blame tables render only when checks failed; inject one so the
        # table path is exercised deterministically.
        entry = report["loops"][0]
        entry["blame"] = {"fp<bus>": 3}
        entry["pressure"] = {"fp<bus>": {3: 2, 4: 1}}
        html = render_explain_html(report, machine=machine)
        assert html.startswith("<!DOCTYPE html>")
        assert "&lt;m&amp;chine&gt;" in html
        assert "<m&chine>" not in html
        assert "<table>" in html
        assert "&lt;bus&gt;" in html
        assert "cycles 3-4" in html

    def test_text_renders_blame_line(self):
        machine, report = self._report()
        entry = report["loops"][0]
        entry["blame"] = {"fp_bus": 3}
        entry["pressure"] = {"fp_bus": {3: 2, 5: 1}}
        text = render_explain_text(report)
        assert "most-blamed resources: fp_bus x3 (cycles 3, 5)" in text


class TestPortGraph:
    def test_pass_through_when_opcodes_resolve(self):
        machine = cydra5_subset()
        graph = KERNELS["daxpy"]()
        assert port_graph(graph, machine) is graph

    @pytest.mark.parametrize("name", sorted(PORTS))
    def test_ports_cover_the_kernel_suite(self, name):
        from repro.machines import alpha21064, mips_r3000, playdoh

        builders = {
            "playdoh": playdoh,
            "alpha-21064": alpha21064,
            "mips-r3000": mips_r3000,
        }
        machine = builders[name]()
        assert machine.name == name
        for kernel in sorted(KERNELS):
            ported = port_graph(KERNELS[kernel](), machine)
            for opcode in ported.opcodes():
                machine.alternatives_of(opcode)  # must not raise

    def test_unportable_machine_raises(self):
        machine = example_machine()
        with pytest.raises(ScheduleError):
            port_graph(KERNELS["daxpy"](), machine)


class TestCli:
    def test_explain_text(self, capsys):
        assert main(["explain", "cydra5-subset", "--loops", "2"]) == 0
        out = capsys.readouterr().out
        assert "explain: cydra5-subset" in out
        assert "pinned by" in out

    def test_explain_json_artifact(self, tmp_path):
        out = str(tmp_path / "explain.json")
        rc = main(
            [
                "explain", "cydra5-subset", "--loops", "2",
                "--format", "json", "-o", out,
            ]
        )
        assert rc == 0
        with open(out) as handle:
            document = json.load(handle)
        validate_explain_report(document)
        assert verify_artifact(out)["kind"] == "explain"

    def test_explain_html(self, tmp_path):
        out = str(tmp_path / "explain.html")
        rc = main(
            [
                "explain", "cydra5-subset", "--kernel", "daxpy",
                "--format", "html", "-o", out,
            ]
        )
        assert rc == 0
        with open(out) as handle:
            html = handle.read()
        assert html.startswith("<!DOCTYPE html>")

    def test_explain_ported_machine(self, capsys):
        assert main(["explain", "alpha21064", "--kernel", "daxpy"]) == 0
        assert "explain: alpha-21064" in capsys.readouterr().out

    def test_schedule_explain_sidecar(self, tmp_path, capsys):
        out = str(tmp_path / "sidecar.json")
        rc = main(
            ["schedule", "cydra5-subset", "--loops", "2", "--explain", out]
        )
        assert rc == 0
        with open(out) as handle:
            document = json.load(handle)
        validate_explain_report(document)
