"""Tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro import obs
from repro.machines import cydra5_subset, example_machine
from repro.obs.metrics import HISTOGRAM_BUCKETS, Histogram, MetricsRegistry, TimerStats
from repro.query import FUNCTIONS, make_query_module
from repro.query.discrete import DiscreteQueryModule
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import KERNELS


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test must leave tracing disabled."""
    assert obs.current() is None
    yield
    assert obs.current() is None


class TestTracer:
    def test_disabled_by_default(self):
        assert obs.current() is None
        assert not obs.enabled()

    def test_module_helpers_are_noops_when_disabled(self):
        with obs.span("nothing"):
            pass
        obs.event("nothing")
        obs.count("nothing")  # must not raise, must not create a tracer
        assert obs.current() is None

    def test_tracing_context_activates_and_restores(self):
        with obs.tracing() as tracer:
            assert obs.current() is tracer
            with obs.tracing() as inner:
                assert obs.current() is inner
            assert obs.current() is tracer
        assert obs.current() is None

    def test_start_stop(self):
        tracer = obs.start()
        try:
            assert obs.current() is tracer
        finally:
            assert obs.stop() is tracer
        assert obs.current() is None

    def test_span_records_duration_and_args(self):
        with obs.tracing() as tracer:
            with obs.span("phase", obs.CAT_REDUCE, machine="m"):
                pass
        (record,) = tracer.spans
        assert record.name == "phase"
        assert record.category == obs.CAT_REDUCE
        assert record.duration >= 0
        assert record.args == {"machine": "m"}
        assert tracer.metrics.timers["reduce.phase"].count == 1

    def test_span_set_attaches_outcome_args(self):
        with obs.tracing() as tracer:
            with obs.span("attempt", obs.CAT_SCHED, ii=3) as span:
                span.set(succeeded=True)
        (record,) = tracer.spans
        assert record.args == {"ii": 3, "succeeded": True}

    def test_event_and_counter(self):
        with obs.tracing() as tracer:
            tracer.event("place", obs.CAT_SCHED, op="a")
            tracer.count("decisions", 3)
        (record,) = tracer.events
        assert record.name == "place"
        assert tracer.metrics.counters["sched.place"] == 1
        assert tracer.metrics.counters["decisions"] == 3

    def test_record_cap_drops_but_keeps_metrics(self):
        with obs.tracing(max_records=4) as tracer:
            for index in range(10):
                tracer.event("e%d" % index)
        assert tracer.num_records == 4
        assert tracer.dropped == 6
        # Aggregates are exact despite the dropped records.
        assert sum(tracer.metrics.counters.values()) == 10

    def test_span_survives_exceptions(self):
        with obs.tracing() as tracer:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
        assert len(tracer.spans) == 1


class TestMetricsRegistry:
    def test_timer_stats(self):
        timer = TimerStats()
        for duration in (0.2, 0.1, 0.4):
            timer.observe(duration)
        assert timer.count == 3
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(0.4)
        assert timer.mean == pytest.approx(0.7 / 3)

    def test_timer_merge(self):
        a, b = TimerStats(), TimerStats()
        a.observe(0.2)
        b.observe(0.1)
        b.observe(0.5)
        a.merge(b)
        assert a.count == 3
        assert a.min == pytest.approx(0.1)
        assert a.max == pytest.approx(0.5)
        a.merge(TimerStats())  # merging empty is the identity
        assert a.count == 3

    def test_histogram_buckets_and_quantiles(self):
        hist = Histogram()
        for us in (0.5, 1.5, 3.0, 100.0):
            hist.observe(us / 1e6)
        assert hist.count == 4
        assert hist.quantile(0.5) in HISTOGRAM_BUCKETS
        assert hist.quantile(0.99) >= hist.quantile(0.5)
        assert hist.quantile(0.0) >= 0

    def test_histogram_overflow(self):
        hist = Histogram()
        hist.observe(1e6)  # a million seconds
        assert hist.overflow == 1

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.add("c", 1)
        b.add("c", 2)
        b.observe("t", 0.1)
        b.histogram("h").observe(1e-6)
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.timers["t"].count == 1
        assert a.histograms["h"].count == 1


class TestQueryInstrumentation:
    def test_function_names_match_work_counters(self):
        # obs deliberately avoids importing repro.query; the duplicated
        # function-name constants must stay in sync.
        assert obs.QUERY_FUNCTIONS == FUNCTIONS

    def test_factory_returns_plain_class_when_disabled(self):
        qm = make_query_module(example_machine())
        assert type(qm) is DiscreteQueryModule

    def test_factory_returns_observed_class_when_tracing(self):
        with obs.tracing():
            qm = make_query_module(example_machine())
        assert type(qm).__name__ == "ObservedDiscreteQueryModule"
        assert isinstance(qm, DiscreteQueryModule)

    def test_observed_calls_and_units_match_work_counters(self):
        machine = example_machine()
        op = machine.operation_names[0]
        with obs.tracing() as tracer:
            qm = make_query_module(machine)
            assert qm.check(op, 0)
            token = qm.assign(op, 0)
            qm.free(token)
        metrics = tracer.metrics
        assert metrics.timers["query.check"].count == qm.work.calls["check"]
        assert metrics.timers["query.assign"].count == 1
        assert metrics.timers["query.free"].count == 1
        assert (
            metrics.counters["query.check.units"] == qm.work.units["check"]
        )

    def test_observed_module_behaves_like_plain_module(self):
        machine = example_machine()
        ops = machine.operation_names

        def drive(qm):
            seen = []
            tokens = []
            for cycle in range(6):
                for op in ops:
                    seen.append(qm.check(op, cycle))
                    if qm.check(ops[0], cycle):
                        tokens.append(qm.assign(ops[0], cycle))
            qm.free(tokens[0])
            seen.append(qm.check(ops[0], 0))
            return seen

        def drive_forcing(qm):
            token, evicted = qm.assign_free(ops[0], 0)
            _token2, evicted2 = qm.assign_free(ops[0], 0)
            return [len(evicted), len(evicted2), token.ident]

        plain = drive(make_query_module(machine))
        plain_forced = drive_forcing(make_query_module(machine))
        with obs.tracing():
            observed = drive(make_query_module(machine))
            observed_forced = drive_forcing(make_query_module(machine))
        assert observed == plain
        assert observed_forced == plain_forced

    def test_query_spans_only_with_trace_queries(self):
        machine = example_machine()
        op = machine.operation_names[0]
        with obs.tracing(trace_queries=False) as tracer:
            make_query_module(machine).check(op, 0)
        assert not tracer.spans
        with obs.tracing(trace_queries=True) as tracer:
            make_query_module(machine).check(op, 0)
        (record,) = tracer.spans
        assert record.category == obs.CAT_QUERY
        assert record.name == "check"


class TestPipelineInstrumentation:
    def test_reduction_phase_spans_and_rule_counters(self):
        from repro.core import reduce_machine

        with obs.tracing() as tracer:
            reduce_machine(example_machine())
        names = {record.name for record in tracer.spans}
        assert {
            "forbidden_matrix", "generating_set", "prune_covered",
            "selection", "verify",
        } <= names
        counters = tracer.metrics.counters
        assert counters["reduce.algorithm1.pairs"] > 0
        assert counters["reduce.selection.iterations"] > 0
        # Every processed pair fires at least one of rules 1-3.
        fired = sum(
            counters.get("reduce.algorithm1.rule%d" % rule, 0)
            for rule in (1, 2, 3)
        )
        assert fired >= counters["reduce.algorithm1.pairs"]

    def test_ims_events_and_spans(self):
        machine = cydra5_subset()
        graph = KERNELS["daxpy"]()
        with obs.tracing() as tracer:
            result = IterativeModuloScheduler(machine).schedule(graph)
        categories = {record.category for record in tracer.spans}
        assert obs.CAT_SCHED in categories
        names = {record.name for record in tracer.spans}
        assert "ims.schedule" in names
        assert "ims.attempt" in names
        assert (
            tracer.metrics.counters["sched.ims.decisions"]
            == result.total_decisions
        )
        # One placement event per scheduling decision.
        place_events = [
            record for record in tracer.events
            if record.name in ("ims.place", "ims.force")
        ]
        assert len(place_events) == result.total_decisions

    def test_untraced_scheduling_unchanged(self):
        machine = cydra5_subset()
        graph = KERNELS["daxpy"]()
        baseline = IterativeModuloScheduler(machine).schedule(graph)
        with obs.tracing():
            traced = IterativeModuloScheduler(machine).schedule(graph)
        assert traced.times == baseline.times
        assert traced.ii == baseline.ii
        assert traced.work.calls == baseline.work.calls
        assert traced.work.units == baseline.work.units

    def test_list_scheduler_span(self):
        from repro.scheduler import OperationDrivenScheduler
        from repro.workloads.blockgen import generate_block

        machine = cydra5_subset()
        block = generate_block(seed=7)
        with obs.tracing() as tracer:
            result = OperationDrivenScheduler(machine).schedule(block)
        (record,) = [
            r for r in tracer.spans if r.name == "list.schedule"
        ]
        assert record.args["placements"] == len(result.times)
        place_events = [
            r for r in tracer.events if r.name == "list.place"
        ]
        assert len(place_events) == len(result.times)


class TestExports:
    def _traced_run(self, trace_queries=True):
        machine = cydra5_subset()
        from repro.core import reduce_machine

        with obs.tracing(trace_queries=trace_queries) as tracer:
            tracer.meta.update(machine=machine.name)
            reduce_machine(machine)
            IterativeModuloScheduler(machine).schedule(KERNELS["daxpy"]())
        return tracer

    def test_metrics_document_schema(self):
        tracer = self._traced_run()
        document = obs.metrics_document(tracer)
        assert document["schema"] == obs.METRICS_SCHEMA_NAME
        assert document["version"] == obs.METRICS_SCHEMA_VERSION
        for key in ("counters", "timers", "histograms", "queries",
                    "records", "meta"):
            assert key in document
        # Round-trips through JSON.
        clone = json.loads(json.dumps(document))
        assert clone["queries"]["check"]["calls"] > 0
        entry = clone["queries"]["check"]
        assert entry["units_per_call"] >= 1.0
        assert entry["units_per_s"] is None or entry["units_per_s"] > 0
        for timer in clone["timers"].values():
            assert timer["count"] > 0
            assert timer["total_s"] >= timer["min_s"]

    def test_chrome_trace_document(self):
        tracer = self._traced_run()
        document = obs.chrome_trace_document(tracer)
        events = document["traceEvents"]
        assert events
        categories = {event["cat"] for event in events}
        assert {"reduce", "sched", "query"} <= categories
        for event in events:
            assert event["ph"] in ("X", "i")
            assert event["ts"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Timestamps are sorted, as trace viewers prefer.
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)
        json.dumps(document)  # serializable

    def test_write_exports(self, tmp_path):
        tracer = self._traced_run()
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        obs.write_metrics(tracer, str(metrics_path))
        obs.write_chrome_trace(tracer, str(trace_path))
        metrics = json.loads(metrics_path.read_text())
        assert metrics["version"] == obs.METRICS_SCHEMA_VERSION
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["producer"] == "repro.obs"

    def test_render_text_breakdown(self):
        tracer = self._traced_run()
        text = obs.render_text(tracer)
        assert "phases" in text
        assert "reduce.generating_set" in text
        assert "query functions" in text
        assert "check" in text
        assert "counters" in text


class TestProfilePipeline:
    def test_profile_kernel(self):
        from repro.obs.profile import profile_machine

        tracer = profile_machine(
            cydra5_subset(), kernel="daxpy", trace_queries=True
        )
        assert obs.current() is None  # deactivated on return
        assert tracer.meta["kernel"] == "daxpy"
        names = {record.name for record in tracer.spans}
        assert {"reduce", "schedule", "ims.schedule"} <= names
        assert tracer.metrics.counters["profile.loops"] == 1

    def test_profile_native_fallback_for_foreign_repertoire(self):
        from repro.obs.profile import profile_machine, workload_for

        machine = example_machine()
        graphs = workload_for(machine, None, 3)
        assert len(graphs) == 3
        assert all(
            op in machine for graph in graphs for op in graph.opcodes()
        )
        tracer = profile_machine(machine, loops=2)
        assert tracer.metrics.counters["profile.loops"] == 2

    def test_profile_reduced_schedules_on_reduced_machine(self):
        from repro.obs.profile import profile_machine

        tracer = profile_machine(
            cydra5_subset(), kernel="daxpy", schedule_reduced=True
        )
        assert tracer.meta["scheduled_on"] == "reduced"
        assert tracer.metrics.counters["profile.loops_at_mii"] == 1


class TestExclusiveTimes:
    """Self-time reconstruction from flat span records."""

    def _synthetic_tracer(self):
        from repro.obs.trace import SpanRecord

        tracer = obs.Tracer()
        # reduce [0, 10) with children generating_set [1, 4) and
        # verify [5, 8); sched [10, 16) with nested query [11, 12).
        tracer.spans = [
            SpanRecord("reduce", "reduce", 0.0, 10.0),
            SpanRecord("generating_set", "reduce", 1.0, 3.0),
            SpanRecord("verify", "reduce", 5.0, 3.0),
            SpanRecord("ims.schedule", "sched", 10.0, 6.0),
            SpanRecord("check", "query", 11.0, 1.0),
        ]
        return tracer

    def test_exclusive_times_subtract_direct_children(self):
        times = obs.exclusive_times(self._synthetic_tracer())
        assert times["reduce.reduce"] == pytest.approx(4.0)
        assert times["reduce.generating_set"] == pytest.approx(3.0)
        assert times["reduce.verify"] == pytest.approx(3.0)
        assert times["sched.ims.schedule"] == pytest.approx(5.0)
        assert times["query.check"] == pytest.approx(1.0)
        # Totals are conserved: sum of self == sum of root durations.
        assert sum(times.values()) == pytest.approx(16.0)

    def test_exclusive_times_clamp_overlong_children(self):
        from repro.obs.trace import SpanRecord

        tracer = obs.Tracer()
        # Clock skew can make a child look longer than its parent;
        # self time must never go negative.
        tracer.spans = [
            SpanRecord("outer", "sched", 0.0, 1.0),
            SpanRecord("inner", "sched", 0.1, 2.0),
        ]
        times = obs.exclusive_times(tracer)
        assert times["sched.outer"] == 0.0

    def test_collapsed_stack_lines(self):
        lines = obs.collapsed_stack_lines(self._synthetic_tracer())
        as_map = {}
        for line in lines:
            stack, _, value = line.rpartition(" ")
            as_map[stack] = int(value)
        assert as_map["reduce.reduce"] == 4_000_000
        assert as_map["reduce.reduce;reduce.generating_set"] == 3_000_000
        assert as_map["sched.ims.schedule;query.check"] == 1_000_000
        # Deterministic ordering.
        assert lines == sorted(lines)

    def test_collapsed_stack_merges_repeated_paths(self):
        from repro.obs.trace import SpanRecord

        tracer = obs.Tracer()
        tracer.spans = [
            SpanRecord("check", "query", float(i), 0.5) for i in range(4)
        ]
        (line,) = obs.collapsed_stack_lines(tracer)
        assert line == "query.check 2000000"

    def test_write_collapsed_stack(self, tmp_path):
        out = tmp_path / "flame.txt"
        obs.write_collapsed_stack(self._synthetic_tracer(), str(out))
        content = out.read_text()
        assert "reduce.reduce;reduce.verify 3000000" in content
        assert content.endswith("\n")

    def test_real_run_totals_match(self):
        machine = cydra5_subset()
        from repro.core import reduce_machine

        with obs.tracing(trace_queries=True) as tracer:
            reduce_machine(machine)
            IterativeModuloScheduler(machine).schedule(KERNELS["daxpy"]())
        times = obs.exclusive_times(tracer)
        assert times
        # Self time never exceeds the timer's inclusive total.
        for key, self_s in times.items():
            stats = tracer.metrics.timers.get(key)
            assert stats is not None, key
            assert self_s <= stats.total + 1e-9
        document = obs.metrics_document(tracer)
        assert set(document["exclusive_s"]) == set(times)
        text = obs.render_text(tracer)
        assert "self ms" in text


class TestEmptyTraceGuards:
    """Span-math guards: exports must survive empty and trivial traces."""

    def test_exclusive_times_empty_trace(self):
        assert obs.exclusive_times(obs.Tracer()) == {}

    def test_collapsed_stack_lines_empty_trace(self):
        assert obs.collapsed_stack_lines(obs.Tracer()) == []

    def test_single_span_is_its_own_self_time(self):
        from repro.obs.trace import SpanRecord

        tracer = obs.Tracer()
        tracer.spans = [SpanRecord("reduce", "reduce", 0.0, 2.0)]
        assert obs.exclusive_times(tracer) == {
            "reduce.reduce": pytest.approx(2.0)
        }
        assert obs.collapsed_stack_lines(tracer) == [
            "reduce.reduce 2000000"
        ]

    def test_write_collapsed_stack_empty_trace_writes_empty_file(
        self, tmp_path
    ):
        # A lone blank line reads as a malformed frame to flamegraph
        # tooling; a no-span trace must produce a genuinely empty file.
        out = tmp_path / "flame.txt"
        obs.write_collapsed_stack(obs.Tracer(), str(out))
        assert out.read_text() == ""
