"""The digest-keyed reduction cache: tiers, verification, self-healing."""

import json
import os
import random

import pytest

from repro.core import matrices_equal
from repro.machines import cydra5_subset, example_machine
from repro.resilience import (
    FAULTS,
    cached_reduce,
    cache_entry_path,
    clear_reduction_memo,
    reduction_digest,
    run_chaos,
    sidecar_path,
)
from repro.resilience.chaos import FAULT_CORRUPT_CACHE


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_reduction_memo()
    yield
    clear_reduction_memo()


class TestDigest:
    def test_digest_is_stable_and_parameter_sensitive(self):
        machine = example_machine()
        base = reduction_digest(machine)
        assert base == reduction_digest(example_machine())
        assert base != reduction_digest(machine, objective="word-uses")
        assert base != reduction_digest(machine, word_cycles=4)
        assert base != reduction_digest(cydra5_subset())

    def test_entry_path_uses_digest_prefix(self, tmp_path):
        digest = reduction_digest(example_machine())
        path = cache_entry_path(str(tmp_path), digest)
        assert digest[:16] in path
        assert path.endswith(".mdl")


class TestTiers:
    def test_fresh_then_memo_then_disk(self, tmp_path):
        machine = example_machine()
        first = cached_reduce(machine, cache_dir=str(tmp_path))
        second = cached_reduce(machine, cache_dir=str(tmp_path))
        clear_reduction_memo()
        third = cached_reduce(machine, cache_dir=str(tmp_path))
        assert (first.source, second.source, third.source) == (
            "fresh", "memo", "disk"
        )
        assert first.reduced == second.reduced == third.reduced
        assert os.path.exists(first.path)
        assert os.path.exists(sidecar_path(first.path))
        # Fresh runs carry the full Reduction; disk hits only the machine.
        assert first.reduction is not None
        assert third.reduction is None

    def test_memo_disabled_reduces_fresh_each_time(self):
        machine = example_machine()
        first = cached_reduce(machine, use_memo=False)
        second = cached_reduce(machine, use_memo=False)
        assert first.source == second.source == "fresh"

    def test_served_reduction_is_equivalent(self, tmp_path):
        machine = cydra5_subset()
        cached_reduce(machine, cache_dir=str(tmp_path))
        clear_reduction_memo()
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        assert served.source == "disk"
        assert matrices_equal(machine, served.reduced)

    def test_no_cache_dir_never_touches_disk(self):
        outcome = cached_reduce(example_machine())
        assert outcome.path is None
        assert outcome.source == "fresh"


class TestCorruptionFallback:
    def test_truncated_entry_falls_back_and_heals(self, tmp_path):
        machine = example_machine()
        primed = cached_reduce(machine, cache_dir=str(tmp_path))
        with open(primed.path, "r+b") as handle:
            handle.truncate(max(0, os.path.getsize(primed.path) - 12))
        clear_reduction_memo()
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        assert served.source == "fresh"
        assert served.reduced == primed.reduced
        clear_reduction_memo()
        healed = cached_reduce(machine, cache_dir=str(tmp_path))
        assert healed.source == "disk"

    def test_flipped_sidecar_checksum_falls_back(self, tmp_path):
        machine = example_machine()
        primed = cached_reduce(machine, cache_dir=str(tmp_path))
        side = sidecar_path(primed.path)
        header = json.load(open(side))
        digit = "0" if header["sha256"][0] != "0" else "1"
        header["sha256"] = digit + header["sha256"][1:]
        with open(side, "w", encoding="utf-8") as handle:
            json.dump(header, handle)
        clear_reduction_memo()
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        assert served.source == "fresh"
        assert served.reduced == primed.reduced

    def test_wrong_machine_in_entry_is_rejected(self, tmp_path):
        """A valid artifact that is not equivalent must not be served."""
        from repro.resilience.artifacts import write_machine

        machine = example_machine()
        digest = reduction_digest(machine)
        # Plant a *well-formed* artifact holding a different machine at
        # this machine's slot: checksum and matrix digest verify, but the
        # equivalence proof against the requesting machine fails.
        path = cache_entry_path(str(tmp_path), digest)
        os.makedirs(str(tmp_path), exist_ok=True)
        write_machine(path, cydra5_subset())
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        assert served.source == "fresh"
        assert matrices_equal(machine, served.reduced)

    def test_chaos_fault_class_covers_cache(self, tmp_path):
        assert FAULT_CORRUPT_CACHE in FAULTS
        report = run_chaos(
            example_machine(),
            seed=3,
            faults=[FAULT_CORRUPT_CACHE],
            workdir=str(tmp_path),
        )
        assert report.ok
        outcome = report.outcomes[0]
        assert outcome.fault == FAULT_CORRUPT_CACHE
        assert "fresh" in outcome.detail and "disk" in outcome.detail

    def test_chaos_fault_is_seed_deterministic(self, tmp_path):
        first = run_chaos(
            example_machine(), seed=5,
            faults=[FAULT_CORRUPT_CACHE],
            workdir=str(tmp_path / "a"),
        )
        second = run_chaos(
            example_machine(), seed=5,
            faults=[FAULT_CORRUPT_CACHE],
            workdir=str(tmp_path / "b"),
        )
        assert first.to_dict()["outcomes"] == second.to_dict()["outcomes"]

    def test_corrupt_certificate_falls_back_and_rewrites(self, tmp_path):
        from repro.resilience import certificate_entry_path

        machine = example_machine()
        primed = cached_reduce(machine, cache_dir=str(tmp_path))
        cert_path = certificate_entry_path(
            str(tmp_path), primed.digest
        )
        assert os.path.exists(cert_path)
        text = open(cert_path, "r", encoding="utf-8").read()
        with open(cert_path, "w", encoding="utf-8") as handle:
            handle.write(text.replace('"witnesses"', '"witnesess"', 1))
        clear_reduction_memo()
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        assert served.source == "fresh"
        clear_reduction_memo()
        healed = cached_reduce(machine, cache_dir=str(tmp_path))
        assert healed.source == "disk"
        assert healed.verification == "certificate"

    def test_random_byte_corruption_never_served(self, tmp_path):
        machine = example_machine()
        rng = random.Random(11)
        for trial in range(5):
            clear_reduction_memo()
            cache = tmp_path / ("t%d" % trial)
            primed = cached_reduce(machine, cache_dir=str(cache))
            data = bytearray(open(primed.path, "rb").read())
            if not data:
                continue
            index = rng.randrange(len(data))
            data[index] ^= 1 << rng.randrange(8)
            with open(primed.path, "wb") as handle:
                handle.write(bytes(data))
            clear_reduction_memo()
            served = cached_reduce(machine, cache_dir=str(cache))
            # Either the flip was caught (fresh) or it produced byte-
            # identical content; served output must stay equivalent.
            assert matrices_equal(machine, served.reduced)


class TestCertificateVerification:
    def test_disk_hit_verified_via_certificate(self, tmp_path):
        from repro.core import check_certificate, equivalence_work_units

        machine = cydra5_subset()
        primed = cached_reduce(machine, cache_dir=str(tmp_path))
        assert primed.verification == "fresh"
        assert primed.certificate is not None
        clear_reduction_memo()
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        assert served.source == "disk"
        assert served.verification == "certificate"
        assert served.certificate is not None
        # The certificate check is the measurable saving: strictly
        # cheaper than re-deriving both forbidden matrices.
        assert 0 < served.verify_units < equivalence_work_units(
            machine, served.reduced
        )
        check_certificate(
            served.certificate, machine, served.reduced,
            recompute_matrix=False,
        )

    def test_paranoid_restores_full_equivalence(self, tmp_path):
        machine = example_machine()
        cached_reduce(machine, cache_dir=str(tmp_path))
        clear_reduction_memo()
        served = cached_reduce(
            machine, cache_dir=str(tmp_path), paranoid=True
        )
        assert served.source == "disk"
        assert served.verification == "equivalence"
        assert served.verify_units == 0

    def test_legacy_entry_without_certificate_is_healed(self, tmp_path):
        from repro.resilience import certificate_entry_path

        machine = example_machine()
        primed = cached_reduce(machine, cache_dir=str(tmp_path))
        cert_path = certificate_entry_path(str(tmp_path), primed.digest)
        os.remove(cert_path)
        os.remove(sidecar_path(cert_path))
        clear_reduction_memo()
        served = cached_reduce(machine, cache_dir=str(tmp_path))
        # Verified the old way, and the missing certificate reissued.
        assert served.source == "disk"
        assert served.verification == "equivalence"
        assert os.path.exists(cert_path)
        clear_reduction_memo()
        healed = cached_reduce(machine, cache_dir=str(tmp_path))
        assert healed.verification == "certificate"

    def test_memo_hit_carries_certificate(self, tmp_path):
        machine = example_machine()
        cached_reduce(machine, cache_dir=str(tmp_path))
        memoed = cached_reduce(machine, cache_dir=str(tmp_path))
        assert memoed.source == "memo"
        assert memoed.verification == "memo"
        assert memoed.certificate is not None


class TestBudgetedWarmHit:
    """A budget trip during warm-hit verification must surface as a
    structured BudgetExceeded — never a silent fresh-reduction fallback,
    never an unverified serve."""

    def test_warm_hit_budget_exceeded_propagates(self, tmp_path):
        from repro.errors import BudgetExceeded
        from repro.resilience.budget import Budget

        machine = example_machine()
        cached_reduce(machine, cache_dir=str(tmp_path))
        clear_reduction_memo()
        with pytest.raises(BudgetExceeded) as info:
            cached_reduce(
                machine,
                cache_dir=str(tmp_path),
                budget=Budget(max_units=1),
            )
        assert info.value.phase == "certificate"

    def test_warm_hit_with_ample_budget_serves_verified(self, tmp_path):
        from repro.resilience.budget import Budget

        machine = example_machine()
        cached_reduce(machine, cache_dir=str(tmp_path))
        clear_reduction_memo()
        hit = cached_reduce(
            machine,
            cache_dir=str(tmp_path),
            budget=Budget(max_units=10**9),
        )
        assert hit.source == "disk"
        assert hit.verification == "certificate"
        assert matrices_equal(machine, hit.reduced)

    def test_fresh_reduction_budget_exceeded_propagates(self, tmp_path):
        from repro.errors import BudgetExceeded
        from repro.resilience.budget import Budget

        with pytest.raises(BudgetExceeded):
            cached_reduce(
                example_machine(),
                cache_dir=str(tmp_path),
                budget=Budget(max_units=1),
            )
