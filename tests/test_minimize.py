"""Tests for pipeline-automaton minimization."""

import random

import pytest

from repro.automata import PipelineAutomaton, is_minimal, minimize
from repro.machines import (
    alternatives_machine,
    example_machine,
    single_op_machine,
)


@pytest.fixture(scope="module")
def example_automaton():
    return PipelineAutomaton.build(example_machine())


class TestMinimize:
    def test_example_shrinks_dramatically(self, example_automaton):
        """Pending-reservation state sets distinguish histories that are
        behaviourally identical; minimization collapses 116 states to a
        handful — the gap Proebsting-Fraser's collision-matrix-based
        construction avoids by design."""
        minimized = minimize(example_automaton)
        assert minimized.num_states < example_automaton.num_states // 10

    def test_minimized_is_minimal(self, example_automaton):
        minimized = minimize(example_automaton)
        assert is_minimal(minimized)
        assert minimize(minimized).num_states == minimized.num_states

    def test_single_op_machine_already_minimal(self):
        automaton = PipelineAutomaton.build(single_op_machine())
        assert is_minimal(automaton)

    def test_start_state_is_zero(self, example_automaton):
        assert minimize(example_automaton).start() == 0

    @pytest.mark.parametrize(
        "factory", [example_machine, alternatives_machine, single_op_machine]
    )
    def test_behavioural_equivalence(self, factory):
        """Random walks through original and minimized automata must
        agree on every can-issue answer."""
        machine = factory()
        original = PipelineAutomaton.build(machine)
        minimized = minimize(original)
        rng = random.Random(12)
        for _trial in range(30):
            s_orig = original.start()
            s_min = minimized.start()
            for _step in range(30):
                if rng.random() < 0.4:
                    s_orig = original.advance(s_orig)
                    s_min = minimized.advance(s_min)
                    continue
                op = rng.choice(machine.operation_names)
                a = original.can_issue(s_orig, op)
                b = minimized.can_issue(s_min, op)
                assert a == b
                if a:
                    s_orig = original.issue(s_orig, op)
                    s_min = minimized.issue(s_min, op)

    def test_minimized_usable_in_query_module(self):
        from repro.automata import AutomatonQueryModule
        from repro.query import DiscreteQueryModule

        machine = example_machine()
        minimized = minimize(PipelineAutomaton.build(machine))
        aqm = AutomatonQueryModule(machine, automaton=minimized)
        dqm = DiscreteQueryModule(machine)
        rng = random.Random(5)
        for _step in range(40):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(0, 15)
            assert aqm.check(op, cycle) == dqm.check(op, cycle)
            if dqm.check(op, cycle):
                aqm.assign(op, cycle)
                dqm.assign(op, cycle)
