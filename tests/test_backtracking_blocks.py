"""Tests for the backtracking (Multiflow-style) block scheduler."""

import pytest

from repro.core import schedule_is_contention_free
from repro.errors import ScheduleError
from repro.machines import cydra5_subset, example_machine
from repro.scheduler import DependenceGraph, OperationDrivenScheduler, chain
from repro.workloads import block_suite


def _tricky_graph():
    """Zero-latency pred/succ pair where height-order places the
    successor first into the only slot the predecessor could use."""
    graph = DependenceGraph("tricky")
    graph.add_operation("a_succ", "A")
    graph.add_operation("z_pred", "A")
    graph.add_dependence("z_pred", "a_succ", 0)
    return graph


@pytest.fixture
def machine():
    return example_machine()


class TestBacktracking:
    def test_plain_scheduler_fails_on_tricky(self, machine):
        with pytest.raises(ScheduleError):
            OperationDrivenScheduler(machine).schedule(_tricky_graph())

    def test_backtracking_succeeds_on_tricky(self, machine):
        scheduler = OperationDrivenScheduler(machine, budget_ratio=6)
        result = scheduler.schedule(_tricky_graph())
        result.graph.verify_schedule(result.times)
        placements = [
            (result.chosen_opcodes[n], t) for n, t in result.times.items()
        ]
        assert schedule_is_contention_free(machine, placements)

    def test_matches_plain_when_plain_succeeds(self, machine):
        graph = chain("c", ["B", "A", "B"], latency=1)
        plain = OperationDrivenScheduler(machine).schedule(
            chain("c", ["B", "A", "B"], latency=1)
        )
        backtracking = OperationDrivenScheduler(
            machine, budget_ratio=6
        ).schedule(graph)
        # Both must be legal; identical times are expected because the
        # first pass never needs to backtrack on this graph.
        assert backtracking.times == plain.times

    def test_suite_verifies(self):
        machine = cydra5_subset()
        scheduler = OperationDrivenScheduler(machine, budget_ratio=6)
        for graph in block_suite(15, seed=4):
            result = scheduler.schedule(graph)
            placements = [
                (result.chosen_opcodes[n], t)
                for n, t in result.times.items()
            ]
            assert schedule_is_contention_free(machine, placements)

    def test_budget_exhaustion_raises(self, machine):
        graph = _tricky_graph()
        scheduler = OperationDrivenScheduler(machine, budget_ratio=1)
        with pytest.raises(ScheduleError):
            # Budget of 2 placements cannot fit the required 3+.
            scheduler.schedule(graph)

    def test_boundary_never_evicted(self, machine):
        """A pinned boundary reservation survives forced placements."""
        graph = DependenceGraph("blk")
        graph.add_operation("b", "B")
        scheduler = OperationDrivenScheduler(machine, budget_ratio=8)
        result = scheduler.schedule(graph, boundary=[("B", -2)])
        # B@-2 holds r3 through cycle 3 and r4 through 5; our B must
        # dodge distances -3..3 from it, so earliest legal is cycle 2.
        assert result.times["b"] >= 2
        placements = [
            (result.chosen_opcodes[n], t) for n, t in result.times.items()
        ] + [("B", -2)]
        assert schedule_is_contention_free(machine, placements)

    def test_work_counters_populated(self, machine):
        scheduler = OperationDrivenScheduler(machine, budget_ratio=6)
        result = scheduler.schedule(_tricky_graph())
        assert result.work.calls["assign&free"] >= 2
