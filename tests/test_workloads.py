"""Tests for the loop generator and the named kernels."""

import os
import subprocess
import sys

import pytest

from repro.machines import cydra5_subset
from repro.workloads import loopgen
from repro.workloads.loopgen import graph_signature
from repro.workloads import (
    KERNELS,
    MAX_OPS,
    MIN_OPS,
    RESULT_LATENCY,
    all_kernels,
    generate_loop,
    loop_suite,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestGenerateLoop:
    def test_deterministic(self):
        first = generate_loop(42)
        second = generate_loop(42)
        assert [op.name for op in first.operations()] == [
            op.name for op in second.operations()
        ]
        assert list(first.edges()) == list(second.edges())

    def test_different_seeds_differ(self):
        a = generate_loop(1)
        b = generate_loop(2)
        assert (
            a.num_operations != b.num_operations
            or [op.name for op in a.operations()]
            != [op.name for op in b.operations()]
        )

    def test_graphs_are_valid(self):
        for seed in range(40):
            generate_loop(seed).validate()

    def test_opcodes_exist_on_subset_machine(self):
        machine = cydra5_subset()
        for seed in range(30):
            for opcode in generate_loop(seed).opcodes():
                machine.alternatives_of(opcode)  # raises if unknown

    def test_every_loop_has_loop_control(self):
        for seed in range(30):
            opcodes = generate_loop(seed).opcodes()
            assert opcodes.count("brtop") == 1

    def test_named_graph(self):
        assert generate_loop(3, name="custom").name == "custom"


class TestSuiteStatistics:
    @pytest.fixture(scope="class")
    def suite(self):
        return loop_suite(400, seed=0)

    def test_size_bounds(self, suite):
        sizes = [g.num_operations for g in suite]
        assert min(sizes) >= MIN_OPS
        assert max(sizes) <= MAX_OPS

    def test_mean_size_near_paper(self, suite):
        """Table 5 reports a mean of 17.54 ops/loop; ours is calibrated
        to land in the same band."""
        sizes = [g.num_operations for g in suite]
        mean = sum(sizes) / len(sizes)
        assert 10.0 < mean < 25.0

    def test_minority_of_loops_have_recurrences(self, suite):
        def has_data_recurrence(graph):
            return any(
                e.distance > 0 and e.src != e.dst for e in graph.edges()
            )

        fraction = sum(map(has_data_recurrence, suite)) / len(suite)
        assert 0.05 < fraction < 0.7

    def test_suite_reproducible(self):
        a = loop_suite(10, seed=5)
        b = loop_suite(10, seed=5)
        assert [g.num_operations for g in a] == [
            g.num_operations for g in b
        ]


class TestSuiteMemo:
    """The corpus path calls ``loop_suite`` repeatedly; it must be
    memoized per ``(count, seed)`` yet deterministic without the memo
    (a fresh interpreter regenerates the identical suite)."""

    def test_repeat_calls_share_graph_objects(self):
        a = loop_suite(12, seed=3)
        b = loop_suite(12, seed=3)
        assert a is not b  # fresh list: callers may slice/reorder
        assert all(x is y for x, y in zip(a, b))
        assert [graph_signature(g) for g in a] == [
            graph_signature(g) for g in b
        ]

    def test_distinct_keys_do_not_collide(self):
        assert [graph_signature(g) for g in loop_suite(6, seed=1)] != [
            graph_signature(g) for g in loop_suite(6, seed=2)
        ]

    def test_memo_is_bounded(self):
        loopgen._SUITE_MEMO.clear()
        for count in range(1, loopgen._SUITE_MEMO_MAX + 3):
            loop_suite(count, seed=9)
            assert len(loopgen._SUITE_MEMO) <= loopgen._SUITE_MEMO_MAX
        # Eviction never breaks determinism — only object identity.
        before = [graph_signature(g) for g in loop_suite(2, seed=9)]
        loopgen._SUITE_MEMO.clear()
        assert [graph_signature(g) for g in loop_suite(2, seed=9)] == (
            before
        )

    def test_fresh_interpreter_regenerates_identical_suite(self):
        """Cross-process determinism: the memo is an optimization, the
        seeded generator is the contract (corpus workers rely on it)."""
        script = (
            "from repro.workloads import loop_suite\n"
            "from repro.workloads.loopgen import graph_signature\n"
            "print('\\n'.join(graph_signature(g)"
            " for g in loop_suite(16, seed=4)))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(REPO_ROOT, "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        env["PYTHONHASHSEED"] = "random"
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.split()
        assert output == [
            graph_signature(g) for g in loop_suite(16, seed=4)
        ]


class TestKernels:
    def test_all_kernels_build_and_validate(self):
        for graph in all_kernels():
            graph.validate()

    def test_kernel_names_registered(self):
        assert set(KERNELS) == {
            "hydro",
            "inner-product",
            "first-difference",
            "tridiagonal",
            "daxpy",
            "state",
            "matmul-inner",
            "partial-sums",
            "banded-linear",
            "predicated-select",
        }

    def test_inner_product_has_accumulator(self):
        graph = KERNELS["inner-product"]()
        assert any(
            e.src == e.dst == "acc" and e.distance == 1
            for e in graph.edges()
        )

    def test_tridiagonal_recurrence_spans_two_ops(self):
        graph = KERNELS["tridiagonal"]()
        assert any(
            e.src == "mul" and e.dst == "sub" and e.distance == 1
            for e in graph.edges()
        )

    def test_latencies_match_table(self):
        for graph in all_kernels():
            for edge in graph.edges():
                src_opcode = graph.operation(edge.src).opcode
                assert edge.latency <= RESULT_LATENCY[src_opcode] + 1


class TestTranslate:
    def test_translation_preserves_shape(self):
        from repro.machines import playdoh
        from repro.workloads import CYDRA_TO_PLAYDOH, translate_graph

        machine = playdoh()
        original = generate_loop(5)
        ported = translate_graph(original, CYDRA_TO_PLAYDOH, machine)
        assert ported.num_operations == original.num_operations
        assert ported.num_edges == original.num_edges
        for before, after in zip(original.edges(), ported.edges()):
            assert (before.src, before.dst, before.distance) == (
                after.src, after.dst, after.distance,
            )

    def test_latencies_recomputed_from_target(self):
        from repro.machines import playdoh
        from repro.workloads import CYDRA_TO_PLAYDOH, translate_graph

        machine = playdoh()
        original = generate_loop(5)
        ported = translate_graph(original, CYDRA_TO_PLAYDOH, machine)
        for edge in ported.edges():
            if edge.latency > 0:
                producer = ported.operation(edge.src).opcode
                assert edge.latency == machine.latency_of(producer)

    def test_untranslatable_opcode_rejected(self):
        from repro.errors import ScheduleError
        from repro.machines import playdoh
        from repro.scheduler import DependenceGraph
        from repro.workloads import translate_graph

        graph = DependenceGraph("g")
        graph.add_operation("x", "exotic_op")
        with pytest.raises(ScheduleError):
            translate_graph(graph, {}, playdoh())

    def test_translated_loops_schedule(self):
        from repro.machines import playdoh
        from repro.scheduler import IterativeModuloScheduler
        from repro.workloads import CYDRA_TO_PLAYDOH, translate_graph

        machine = playdoh()
        scheduler = IterativeModuloScheduler(machine)
        for seed in range(8):
            ported = translate_graph(
                generate_loop(seed), CYDRA_TO_PLAYDOH, machine
            )
            result = scheduler.schedule(ported)
            result.graph.verify_schedule(result.times, ii=result.ii)


class TestLatencyConsistency:
    def test_loopgen_table_matches_machine_metadata(self):
        """The workload generator's latency table and the Cydra 5
        model's embedded metadata must agree — one source of truth."""
        from repro.machines import cydra5_subset

        machine = cydra5_subset()
        for opcode, latency in RESULT_LATENCY.items():
            assert machine.latency_of(opcode) == latency, opcode
