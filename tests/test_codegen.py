"""Tests for the compiled-checker code generator."""

import random

import pytest

from repro.codegen import compile_checker, generate_checker_source
from repro.core import reduce_machine, schedule_is_contention_free
from repro.machines import STUDY_MACHINES, example_machine
from repro.query import BitvectorQueryModule


class TestSource:
    def test_source_is_valid_python(self):
        source = generate_checker_source(example_machine(), 4)
        compile(source, "<test>", "exec")

    def test_source_mentions_machine(self):
        source = generate_checker_source(example_machine(), 2)
        assert "paper-example" in source
        assert "WORD_CYCLES = 2" in source

    def test_bad_word_cycles(self):
        with pytest.raises(ValueError):
            generate_checker_source(example_machine(), 0)

    def test_masks_cover_every_operation(self):
        checker = compile_checker(example_machine(), 3)
        masks = checker._module["MASKS"]
        assert set(masks) == {"A", "B"}
        assert all(len(masks[op]) == 3 for op in masks)


class TestBehaviour:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_interpreted_module(self, k):
        machine = example_machine()
        compiled = compile_checker(machine, k).new()
        interpreted = BitvectorQueryModule(machine, word_cycles=k)
        rng = random.Random(17)
        placed = []
        for _step in range(60):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(0, 40)
            a = compiled.check(op, cycle)
            b = interpreted.check(op, cycle)
            assert a == b, (op, cycle)
            if a:
                compiled.assign(op, cycle)
                interpreted.assign(op, cycle)
                placed.append((op, cycle))
        assert schedule_is_contention_free(machine, placed)

    def test_free_restores(self):
        checker = compile_checker(example_machine(), 2).new()
        checker.assign("B", 0)
        assert not checker.check("B", 1)
        checker.free("B", 0)
        assert checker.check("B", 1)

    def test_reset(self):
        checker = compile_checker(example_machine(), 2).new()
        checker.assign("A", 0)
        checker.reset()
        assert checker.check("A", 0)

    def test_instances_are_independent(self):
        handle = compile_checker(example_machine(), 2)
        first = handle.new()
        second = handle.new()
        first.assign("A", 0)
        assert second.check("A", 0)

    @pytest.mark.parametrize("name", sorted(STUDY_MACHINES))
    def test_reduced_study_machines_compile(self, name):
        machine = reduce_machine(STUDY_MACHINES[name]()).reduced
        checker = compile_checker(machine, 4).new()
        ops = machine.operation_names
        assert all(checker.check(op, 0) for op in ops if True)


class TestSpeed:
    def test_compiled_not_slower_than_interpreted(self):
        """Sanity rather than a benchmark: the compiled checker should
        at least keep up on a check-heavy workload."""
        import time

        machine = reduce_machine(example_machine()).reduced
        compiled = compile_checker(machine, 4).new()
        interpreted = BitvectorQueryModule(machine, word_cycles=4)
        queries = [("B", c % 64) for c in range(20_000)]

        start = time.perf_counter()
        for op, cycle in queries:
            compiled.check(op, cycle)
        compiled_time = time.perf_counter() - start

        start = time.perf_counter()
        for op, cycle in queries:
            interpreted.check(op, cycle)
        interpreted_time = time.perf_counter() - start
        # Generous factor: we only guard against gross regressions.
        assert compiled_time < interpreted_time * 1.5
