"""Unit tests for machine descriptions and the builder."""

import pytest

from repro.core import MachineBuilder, MachineDescription, ReservationTable
from repro.errors import MachineDescriptionError


class TestMachineDescription:
    def test_basic(self):
        md = MachineDescription(
            "toy", {"A": {"alu": [0]}, "B": {"alu": [0], "mul": [0, 1]}}
        )
        assert md.operation_names == ("A", "B")
        assert md.num_operations == 2
        assert md.num_resources == 2
        assert md.total_usages == 4

    def test_requires_operations(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription("empty", {})

    def test_table_accepts_reservation_table(self):
        table = ReservationTable({"r": [0]})
        md = MachineDescription("toy", {"A": table})
        assert md.table("A") == table

    def test_unknown_operation(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        with pytest.raises(MachineDescriptionError):
            md.table("Z")

    def test_contains(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        assert "A" in md
        assert "B" not in md

    def test_resource_order_preserved(self):
        md = MachineDescription(
            "toy", {"A": {"z": [0], "a": [1]}}, resources=["z", "a"]
        )
        assert md.resources == ("z", "a")

    def test_resources_sorted_when_inferred(self):
        md = MachineDescription("toy", {"A": {"z": [0], "a": [1]}})
        assert md.resources == ("a", "z")

    def test_undeclared_resource_rejected(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription("toy", {"A": {"r": [0]}}, resources=["other"])

    def test_duplicate_resources_rejected(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription("toy", {"A": {"r": [0]}}, resources=["r", "r"])

    def test_unused_declared_resource_kept(self):
        md = MachineDescription(
            "toy", {"A": {"r": [0]}}, resources=["r", "idle"]
        )
        assert "idle" in md.resources

    def test_max_table_length(self):
        md = MachineDescription(
            "toy", {"A": {"r": [0]}, "B": {"r": [5]}}
        )
        assert md.max_table_length == 6

    def test_equality(self):
        a = MachineDescription("m", {"A": {"r": [0]}})
        b = MachineDescription("m", {"A": {"r": [0]}})
        assert a == b

    def test_repr(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        assert "toy" in repr(md)


class TestAlternatives:
    def test_alternatives_of_plain_op(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        assert md.alternatives_of("A") == ("A",)

    def test_alternatives_of_group(self):
        md = MachineDescription(
            "toy",
            {"X.0": {"p": [0]}, "X.1": {"q": [0]}},
            alternatives={"X": ["X.0", "X.1"]},
        )
        assert md.alternatives_of("X") == ("X.0", "X.1")

    def test_alternatives_of_unknown(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        with pytest.raises(MachineDescriptionError):
            md.alternatives_of("nope")

    def test_group_member_must_exist(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription(
                "toy", {"A": {"r": [0]}}, alternatives={"X": ["ghost"]}
            )

    def test_empty_group_rejected(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription(
                "toy", {"A": {"r": [0]}}, alternatives={"X": []}
            )


class TestDerived:
    def test_with_operations(self):
        md = MachineDescription(
            "toy", {"A": {"r": [0]}, "B": {"s": [0]}}
        )
        sub = md.with_operations(["A"])
        assert sub.operation_names == ("A",)
        assert sub.resources == md.resources  # resource rows preserved

    def test_with_operations_prunes_alternatives(self):
        md = MachineDescription(
            "toy",
            {"X.0": {"p": [0]}, "X.1": {"q": [0]}, "A": {"p": [1]}},
            alternatives={"X": ["X.0", "X.1"]},
        )
        sub = md.with_operations(["X.0", "A"])
        assert sub.alternatives_of("X") == ("X.0",)

    def test_with_operations_unknown(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        with pytest.raises(MachineDescriptionError):
            md.with_operations(["Z"])

    def test_renamed(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        assert md.renamed("new").name == "new"
        assert md.renamed("new") == md.renamed("other")  # name not compared


class TestBuilder:
    def test_operations_and_resources(self):
        b = MachineBuilder("m")
        b.resource("first")
        b.operation("A", {"second": [0], "first": [1]})
        md = b.build()
        assert md.resources[0] == "first"
        assert md.table("A").usage_count == 2

    def test_duplicate_operation_rejected(self):
        b = MachineBuilder("m")
        b.operation("A", {"r": [0]})
        with pytest.raises(MachineDescriptionError):
            b.operation("A", {"r": [1]})

    def test_alternatives_expand(self):
        b = MachineBuilder("m")
        b.operation_with_alternatives("X", [{"p": [0]}, {"q": [0]}])
        md = b.build()
        assert md.alternatives_of("X") == ("X.0", "X.1")
        assert md.table("X.0").resources == ("p",)

    def test_single_variant_stays_plain(self):
        b = MachineBuilder("m")
        b.operation_with_alternatives("X", [{"p": [0]}])
        md = b.build()
        assert md.alternatives_of("X") == ("X",)

    def test_no_variants_rejected(self):
        b = MachineBuilder("m")
        with pytest.raises(MachineDescriptionError):
            b.operation_with_alternatives("X", [])

    def test_chaining(self):
        md = (
            MachineBuilder("m")
            .operation("A", {"r": [0]})
            .operation("B", {"r": [1]})
            .build()
        )
        assert md.num_operations == 2


class TestLatencies:
    def test_latency_metadata_carried(self):
        md = MachineDescription(
            "toy", {"A": {"r": [0]}}, latencies={"A": 3}
        )
        assert md.latencies == {"A": 3}
        assert md.latency_of("A") == 3

    def test_latency_for_unknown_op_rejected(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription(
                "toy", {"A": {"r": [0]}}, latencies={"ghost": 1}
            )

    def test_negative_latency_rejected(self):
        with pytest.raises(MachineDescriptionError):
            MachineDescription(
                "toy", {"A": {"r": [0]}}, latencies={"A": -1}
            )

    def test_variant_falls_back_to_group_latency(self):
        md = MachineDescription(
            "toy",
            {"X.0": {"p": [0]}, "X.1": {"q": [0]}},
            alternatives={"X": ["X.0", "X.1"]},
            latencies={"X": 7},
        )
        assert md.latency_of("X") == 7
        assert md.latency_of("X.0") == 7
        assert md.latency_of("X.1") == 7

    def test_default_when_no_entry(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        assert md.latency_of("A") is None
        assert md.latency_of("A", default=1) == 1

    def test_latency_of_unknown_op_raises(self):
        md = MachineDescription("toy", {"A": {"r": [0]}})
        with pytest.raises(MachineDescriptionError):
            md.latency_of("ghost")

    def test_latencies_survive_subsetting(self):
        md = MachineDescription(
            "toy",
            {"A": {"r": [0]}, "B": {"s": [0]}},
            latencies={"A": 2, "B": 5},
        )
        sub = md.with_operations(["A"])
        assert sub.latencies == {"A": 2}

    def test_latencies_in_equality(self):
        a = MachineDescription("m", {"A": {"r": [0]}}, latencies={"A": 1})
        b = MachineDescription("m", {"A": {"r": [0]}}, latencies={"A": 2})
        c = MachineDescription("m", {"A": {"r": [0]}})
        assert a != b and a != c

    def test_builder_latency(self):
        md = (
            MachineBuilder("m")
            .operation("A", {"r": [0]}, latency=4)
            .build()
        )
        assert md.latency_of("A") == 4

    def test_builder_group_latency(self):
        b = MachineBuilder("m")
        b.operation_with_alternatives(
            "X", [{"p": [0]}, {"q": [0]}], latency=9
        )
        md = b.build()
        assert md.latency_of("X.1") == 9

    def test_study_machines_carry_latencies(self):
        from repro.machines import STUDY_MACHINES, playdoh

        for factory in list(STUDY_MACHINES.values()) + [playdoh]:
            machine = factory()
            assert machine.latencies, machine.name
            # Every latency entry resolves for its own key.
            for op in machine.latencies:
                assert machine.latency_of(op) is not None

    def test_latency_survives_reduction(self):
        from repro.core import reduce_machine
        from repro.machines import mips_r3000

        reduced = reduce_machine(mips_r3000()).reduced
        assert reduced.latency_of("div") == 35

    def test_latency_mdl_round_trip(self):
        from repro import mdl
        from repro.machines import playdoh

        machine = playdoh()
        again = mdl.loads(mdl.dumps(machine))
        assert again.latencies == machine.latencies
        assert again == machine
