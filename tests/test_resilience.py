"""Tests for the resilience layer: budgets, artifacts, fallback ladders."""

import json
import os

import pytest

from repro.core import assert_equivalent, matrices_equal, reduce_machine
from repro._atomic import atomic_write_text
from repro.errors import (
    ArtifactIntegrityError,
    BudgetExceeded,
    ScheduleError,
)
from repro.machines import cydra5_subset, example_machine
from repro.resilience import (
    Budget,
    FallbackPolicy,
    RUNG_IMS,
    RUNG_LIST,
    RUNG_ORIGINAL,
    RUNG_PARTIAL,
    RUNG_REDUCED,
    UNVERIFIED_POLICY,
    artifacts,
    reduce_with_fallback,
    schedule_with_fallback,
)
from repro.workloads import KERNELS


class FakeClock:
    """Manual monotonic clock for deterministic deadline tests."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestBudget:
    def test_deadline_raises_with_context(self):
        clock = FakeClock()
        budget = Budget(deadline_s=10.0, clock=clock, label="req-1")
        budget.checkpoint("phase_a", units=5, progress="5/10")
        clock.advance(11.0)
        with pytest.raises(BudgetExceeded) as info:
            budget.checkpoint("phase_a", units=5, progress="9/10",
                              partial=["best"])
        exc = info.value
        assert exc.phase == "phase_a"
        assert exc.elapsed_s == pytest.approx(11.0)
        assert exc.deadline_s == 10.0
        assert exc.units == 10
        assert exc.progress == "9/10"
        assert exc.partial == ["best"]
        assert "req-1" in str(exc)

    def test_unit_cap_raises(self):
        budget = Budget(max_units=100)
        budget.checkpoint("p", units=99)
        with pytest.raises(BudgetExceeded) as info:
            budget.checkpoint("p", units=2)
        assert info.value.units == 101
        assert info.value.max_units == 100

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.checkpoint("p", units=10**9)
        assert not budget.exhausted()

    def test_restart_grants_fresh_allowance(self):
        clock = FakeClock()
        budget = Budget(deadline_s=5.0, max_units=10, clock=clock)
        clock.advance(4.0)
        budget.checkpoint("p", units=9)
        budget.restart()
        clock.advance(4.0)
        budget.checkpoint("p", units=9)  # would raise without restart

    def test_exhausted_probe_does_not_raise(self):
        clock = FakeClock()
        budget = Budget(deadline_s=1.0, clock=clock)
        assert not budget.exhausted()
        clock.advance(2.0)
        assert budget.exhausted()


class TestBudgetedPipeline:
    def test_reduce_budget_exceeded_names_phase(self):
        with pytest.raises(BudgetExceeded) as info:
            reduce_machine(example_machine(), budget=Budget(max_units=1))
        assert info.value.phase == "forbidden_matrix"

    def test_reduce_within_budget_matches_unbudgeted(self):
        machine = example_machine()
        plain = reduce_machine(machine)
        budgeted = reduce_machine(machine, budget=Budget(max_units=10**9))
        assert matrices_equal(plain.reduced, budgeted.reduced)

    def test_selection_partial_carries_pool(self):
        with pytest.raises(BudgetExceeded) as info:
            reduce_machine(
                cydra5_subset(), budget=Budget(max_units=200)
            )
        exc = info.value
        assert exc.phase == "selection"
        assert isinstance(exc.partial, dict)
        assert "pool" in exc.partial and exc.partial["pool"]
        assert exc.partial["total"] >= exc.partial["covered"] >= 0


class TestAtomicWrite:
    def test_failed_write_leaves_no_partial_file(self, tmp_path,
                                                 monkeypatch):
        target = tmp_path / "out.json"

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_text(str(target), "x" * 4096)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(str(target), "first")
        atomic_write_text(str(target), "second")
        assert target.read_text() == "second"
        assert list(tmp_path.iterdir()) == [target]


class TestArtifacts:
    def test_machine_round_trip(self, tmp_path):
        machine = example_machine()
        path = str(tmp_path / "m.mdl")
        header = artifacts.write_machine(path, machine)
        assert header["kind"] == "mdl"
        loaded = artifacts.load_machine(path)
        assert matrices_equal(machine, loaded)

    def test_sidecar_is_valid_json_with_schema(self, tmp_path):
        path = str(tmp_path / "m.mdl")
        artifacts.write_machine(path, example_machine())
        with open(artifacts.sidecar_path(path)) as handle:
            header = json.load(handle)
        assert header["schema"] == artifacts.ARTIFACT_SCHEMA_NAME
        assert header["version"] == artifacts.ARTIFACT_SCHEMA_VERSION
        assert len(header["sha256"]) == 64

    def test_corrupt_content_rejected_with_digests(self, tmp_path):
        path = str(tmp_path / "m.mdl")
        artifacts.write_machine(path, example_machine())
        with open(path, "a") as handle:
            handle.write("# tampered\n")
        with pytest.raises(ArtifactIntegrityError) as info:
            artifacts.load_machine(path)
        exc = info.value
        assert exc.kind == "checksum"
        assert exc.expected and exc.actual and exc.expected != exc.actual
        assert exc.expected in str(exc) and exc.actual in str(exc)

    def test_missing_sidecar_rejected(self, tmp_path):
        path = str(tmp_path / "m.mdl")
        artifacts.write_machine(path, example_machine())
        os.unlink(artifacts.sidecar_path(path))
        with pytest.raises(ArtifactIntegrityError) as info:
            artifacts.load_machine(path)
        assert info.value.kind == "sidecar"

    def test_matrix_digest_catches_semantic_skew(self, tmp_path):
        """Content swapped for a *valid* but non-equivalent machine (with
        a matching byte checksum) still fails the matrix-digest check."""
        from repro import mdl
        from repro.machines import mips_r3000

        path = str(tmp_path / "m.mdl")
        artifacts.write_machine(path, example_machine())
        other_text = mdl.dumps(mips_r3000())
        side = artifacts.sidecar_path(path)
        header = json.loads(open(side).read())
        header["sha256"] = artifacts.content_digest(other_text)
        header["size"] = len(other_text.encode("utf-8"))
        atomic_write_text(side, json.dumps(header))
        atomic_write_text(path, other_text)
        with pytest.raises(ArtifactIntegrityError) as info:
            artifacts.load_machine(path)
        assert info.value.kind == "matrix-digest"

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "r.json")
        artifacts.write_json(path, {"a": 1}, kind="chaos")
        with pytest.raises(ArtifactIntegrityError) as info:
            artifacts.read_artifact(path, expect_kind="mdl")
        assert info.value.kind == "kind"

    def test_matrix_digest_stable_across_equivalent_machines(self):
        machine = example_machine()
        reduced = reduce_machine(machine).reduced
        assert artifacts.matrix_digest(machine) == (
            artifacts.matrix_digest(reduced)
        )


class TestReduceLadder:
    def test_healthy_machine_serves_reduced(self):
        outcome = reduce_with_fallback(example_machine())
        assert outcome.rung == RUNG_REDUCED
        assert outcome.verified and not outcome.degraded
        assert outcome.marker == "verified"
        assert outcome.reduction is not None

    def test_served_machine_always_verified(self):
        machine = example_machine()
        outcome = reduce_with_fallback(machine)
        assert_equivalent(machine, outcome.machine)

    def test_corrupt_reduction_degrades_to_partial(self):
        machine = example_machine()

        def corrupt(reduced):
            ops = {op: t for op, t in reduced.items()}
            first = sorted(ops)[0]
            ops[first] = ops[first].shifted(1)
            return type(reduced)(reduced.name + "-bad", ops)

        outcome = reduce_with_fallback(
            machine, FallbackPolicy(mutate_reduced=corrupt)
        )
        assert outcome.rung == RUNG_PARTIAL
        assert outcome.verified
        assert_equivalent(machine, outcome.machine)
        # Every reduced-rung attempt failed and was recorded.
        failed = [a for a in outcome.attempts if a.failed]
        assert len(failed) == 2  # one per objective
        assert all(a.rung == RUNG_REDUCED for a in failed)

    def test_zero_budget_degrades_to_original(self):
        machine = example_machine()
        outcome = reduce_with_fallback(
            machine, FallbackPolicy(max_units=0)
        )
        assert outcome.rung == RUNG_ORIGINAL
        assert outcome.verified  # identity: exact by construction
        assert outcome.machine is machine
        assert all(
            a.error_type == "BudgetExceeded"
            for a in outcome.attempts if a.failed
        )

    def test_unverified_marker_is_explicit(self):
        outcome = reduce_with_fallback(
            example_machine(), FallbackPolicy(verify=False)
        )
        assert not outcome.verified
        assert outcome.unverified_reason == UNVERIFIED_POLICY
        assert outcome.marker == "unverified(%s)" % UNVERIFIED_POLICY

    def test_retry_uses_second_objective(self):
        """When only the first objective's attempt fails, the retry with
        the word-uses objective can still serve the reduced rung."""
        machine = example_machine()
        calls = []

        def corrupt_first_only(reduced):
            calls.append(reduced.name)
            if len(calls) == 1:
                ops = {op: t for op, t in reduced.items()}
                first = sorted(ops)[0]
                ops[first] = ops[first].shifted(1)
                return type(reduced)(reduced.name + "-bad", ops)
            return reduced

        outcome = reduce_with_fallback(
            machine, FallbackPolicy(mutate_reduced=corrupt_first_only)
        )
        assert outcome.rung == RUNG_REDUCED
        assert outcome.verified
        assert len(calls) == 2
        assert outcome.attempts[0].failed and not outcome.attempts[1].failed

    def test_backoff_called_between_retries(self):
        sleeps = []
        policy = FallbackPolicy(
            max_units=0,
            backoff_s=0.5,
            backoff_factor=2.0,
            sleep=sleeps.append,
        )
        reduce_with_fallback(example_machine(), policy)
        # one retry between the two objectives, jittered deterministically
        assert sleeps == [policy.backoff_delay(1)]
        assert 0.45 <= sleeps[0] <= 0.55


class TestBackoffDelay:
    def test_exact_exponential_without_jitter(self):
        policy = FallbackPolicy(
            backoff_s=0.5, backoff_factor=2.0, backoff_jitter=0.0
        )
        delays = [policy.backoff_delay(i) for i in range(1, 5)]
        assert delays == [0.5, 1.0, 2.0, 4.0]

    def test_growth_is_capped(self):
        policy = FallbackPolicy(
            backoff_s=1.0, backoff_factor=10.0, backoff_max_s=5.0,
            backoff_jitter=0.0,
        )
        assert policy.backoff_delay(1) == 1.0
        assert policy.backoff_delay(2) == 5.0
        assert policy.backoff_delay(50) == 5.0

    def test_jitter_stays_in_band_and_under_cap(self):
        policy = FallbackPolicy(
            backoff_s=1.0, backoff_factor=2.0, backoff_max_s=4.0,
            backoff_jitter=0.25,
        )
        for index in range(1, 20):
            delay = policy.backoff_delay(index)
            base = min(1.0 * 2.0 ** (index - 1), 4.0)
            assert base * 0.75 <= delay <= min(base * 1.25, 4.0)
            assert delay <= 4.0  # jitter never busts the bound

    def test_sequence_deterministic_across_instances(self):
        first = FallbackPolicy(backoff_s=0.5, backoff_seed=7)
        second = FallbackPolicy(backoff_s=0.5, backoff_seed=7)
        sequence = [first.backoff_delay(i) for i in range(1, 8)]
        assert sequence == [second.backoff_delay(i) for i in range(1, 8)]

    def test_seed_changes_jitter(self):
        a = FallbackPolicy(backoff_s=0.5, backoff_seed=0)
        b = FallbackPolicy(backoff_s=0.5, backoff_seed=1)
        assert [a.backoff_delay(i) for i in range(1, 5)] != [
            b.backoff_delay(i) for i in range(1, 5)
        ]

    def test_disabled_backoff_never_sleeps(self):
        sleeps = []
        policy = FallbackPolicy(backoff_s=0.0, sleep=sleeps.append)
        assert policy.backoff_delay(1) == 0.0
        policy.backoff(1)
        assert sleeps == []


class TestScheduleLadder:
    def test_healthy_kernel_serves_ims(self):
        outcome = schedule_with_fallback(
            cydra5_subset(), KERNELS["daxpy"]()
        )
        assert outcome.rung == RUNG_IMS
        assert outcome.verified
        assert outcome.ii == outcome.mii
        assert outcome.result is not None

    def test_zero_budget_degrades_to_list(self):
        machine = cydra5_subset()
        graph = KERNELS["daxpy"]()
        outcome = schedule_with_fallback(
            machine, graph, FallbackPolicy(max_units=0)
        )
        assert outcome.rung == RUNG_LIST
        assert outcome.degraded and outcome.verified
        assert outcome.ii >= outcome.mii
        # The flat schedule still satisfies every dependence and the MRT.
        graph.verify_schedule(outcome.times, ii=outcome.ii)
        failed = [a for a in outcome.attempts if a.failed]
        assert len(failed) == len(FallbackPolicy().ims_escalation)
        assert all(a.error_type == "BudgetExceeded" for a in failed)

    def test_flat_schedule_covers_recurrences(self):
        machine = cydra5_subset()
        graph = KERNELS["inner-product"]()
        outcome = schedule_with_fallback(
            machine, graph, FallbackPolicy(max_units=0)
        )
        assert outcome.rung == RUNG_LIST
        graph.verify_schedule(outcome.times, ii=outcome.ii)

    def test_escalation_ladder_is_tried_in_order(self):
        sleeps = []
        policy = FallbackPolicy(
            max_units=0, backoff_s=1.0, sleep=sleeps.append,
            ims_escalation=((6, 16), (12, 32)),
        )
        outcome = schedule_with_fallback(
            cydra5_subset(), KERNELS["daxpy"](), policy
        )
        failed = [a for a in outcome.attempts if a.failed]
        assert [a.detail for a in failed] == [
            "budget_ratio=6 max_ii_slack=16",
            "budget_ratio=12 max_ii_slack=32",
        ]
        assert sleeps == [policy.backoff_delay(1)]

    def test_impossible_graph_raises_clean_schedule_error(self):
        from repro.scheduler.ddg import DependenceGraph

        machine = cydra5_subset()
        graph = DependenceGraph("impossible")
        graph.add_operation("a", "no_such_opcode")
        with pytest.raises((ScheduleError, Exception)):
            schedule_with_fallback(machine, graph)


class TestScheduleErrorAttributes:
    def test_give_up_carries_ii_range_and_attempts(self):
        from repro.scheduler import IterativeModuloScheduler

        scheduler = IterativeModuloScheduler(
            cydra5_subset(), budget_ratio=1, max_ii_slack=0
        )
        with pytest.raises(ScheduleError) as info:
            scheduler.schedule(KERNELS["tridiagonal"]())
        exc = info.value
        assert exc.ii_range is not None
        assert exc.ii_range[0] <= exc.ii_range[1]
        assert exc.attempts and exc.attempts[0].ii == exc.ii_range[0]
        assert exc.budget_exceeded is True
