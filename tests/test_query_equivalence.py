"""Cross-representation equivalence: discrete, bitvector, automaton, and
reduced-machine modules must answer every query identically.

This is the paper's core guarantee: querying with the original or the
reduced description — in any representation — yields the same answer.
"""

import random

import pytest

from repro.automata import AutomatonQueryModule, PipelineAutomaton
from repro.core import reduce_machine, schedule_is_contention_free
from repro.machines import alternatives_machine, example_machine
from repro.query import BitvectorQueryModule, DiscreteQueryModule


def _modules(machine, reduced):
    return [
        DiscreteQueryModule(machine),
        BitvectorQueryModule(machine, word_cycles=1),
        BitvectorQueryModule(machine, word_cycles=3),
        DiscreteQueryModule(reduced),
        BitvectorQueryModule(reduced, word_cycles=2),
        BitvectorQueryModule(reduced, word_cycles=4),
    ]


@pytest.mark.parametrize("seed", range(5))
def test_scalar_equivalence(seed, example):
    reduced = reduce_machine(example).reduced
    rng = random.Random(seed)
    modules = _modules(example, reduced)
    placed = []
    for _step in range(40):
        op = rng.choice(example.operation_names)
        cycle = rng.randint(-5, 25)
        answers = {module.check(op, cycle) for module in modules}
        assert len(answers) == 1
        truth = schedule_is_contention_free(example, placed + [(op, cycle)])
        assert answers.pop() == truth
        if truth:
            for module in modules:
                module.assign(op, cycle)
            placed.append((op, cycle))


@pytest.mark.parametrize("seed", range(5))
def test_modulo_equivalence(seed, example):
    reduced = reduce_machine(example).reduced
    rng = random.Random(1000 + seed)
    ii = rng.randint(1, 10)
    modules = [
        DiscreteQueryModule(example, modulo=ii),
        BitvectorQueryModule(example, word_cycles=2, modulo=ii),
        DiscreteQueryModule(reduced, modulo=ii),
        BitvectorQueryModule(reduced, word_cycles=4, modulo=ii),
    ]
    placed = []
    for _step in range(25):
        op = rng.choice(example.operation_names)
        cycle = rng.randint(0, 40)
        answers = {module.check(op, cycle) for module in modules}
        assert len(answers) == 1
        reserved = {}
        truth = True
        for other_op, other_cycle in placed + [(op, cycle)]:
            for resource, c in example.table(other_op).iter_usages():
                slot = (resource, (other_cycle + c) % ii)
                if slot in reserved:
                    truth = False
                reserved[slot] = True
        assert answers.pop() == truth
        if truth:
            for module in modules:
                module.assign(op, cycle)
            placed.append((op, cycle))


@pytest.mark.parametrize("seed", range(3))
def test_automaton_agrees_with_tables(seed):
    machine = example_machine()
    automaton = PipelineAutomaton.build(machine)
    rng = random.Random(2000 + seed)
    aqm = AutomatonQueryModule(machine, automaton=automaton)
    dqm = DiscreteQueryModule(machine)
    tokens = []
    for _step in range(30):
        op = rng.choice(machine.operation_names)
        cycle = rng.randint(0, 15)
        assert aqm.check(op, cycle) == dqm.check(op, cycle)
        if dqm.check(op, cycle):
            tokens.append((aqm.assign(op, cycle), dqm.assign(op, cycle)))
        elif tokens and rng.random() < 0.4:
            ta, td = tokens.pop(rng.randrange(len(tokens)))
            aqm.free(ta)
            dqm.free(td)


def test_eviction_equivalence(example):
    """assign&free must evict the same operations in both representations."""
    rng = random.Random(99)
    reduced = reduce_machine(example).reduced
    for _trial in range(20):
        modules = [
            DiscreteQueryModule(example),
            BitvectorQueryModule(example, word_cycles=2),
            DiscreteQueryModule(reduced),
            BitvectorQueryModule(reduced, word_cycles=2),
        ]
        live = [dict() for _ in modules]
        for _step in range(12):
            op = rng.choice(example.operation_names)
            cycle = rng.randint(0, 10)
            evicted_sets = []
            for index, module in enumerate(modules):
                token, evicted = module.assign_free(op, cycle)
                live[index][token.ident] = (op, cycle)
                evicted_sets.append(
                    sorted((t.op, t.cycle) for t in evicted)
                )
            assert all(e == evicted_sets[0] for e in evicted_sets)


def test_alternatives_equivalence(dual_pipe):
    rng = random.Random(5)
    reduced = reduce_machine(dual_pipe).reduced
    first = DiscreteQueryModule(dual_pipe)
    second = BitvectorQueryModule(reduced, word_cycles=2)
    for _step in range(30):
        op = rng.choice(("add", "mul", "mov"))
        cycle = rng.randint(0, 8)
        a = first.check_with_alternatives(op, cycle)
        b = second.check_with_alternatives(op, cycle)
        assert a == b
        if a is not None:
            first.assign(a, cycle)
            second.assign(a, cycle)
