"""Tests for the chaos harness: every fault class detected or survived."""

import pytest

from repro.errors import ReproError
from repro.machines import example_machine, mips_r3000
from repro.resilience import FAULTS, DelayedClock, run_chaos
from repro.resilience.chaos import (
    FAULT_DROP_USAGE,
    FAULT_FLIP_CHECKSUM,
    FAULT_PHASE_DELAY,
    FAULT_SHIFT_USAGE,
    FAULT_TRUNCATE_WRITE,
    MODE_DETECTED,
    MODE_SURVIVED,
)


class TestChaosRun:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_faults_handled_example(self, seed, tmp_path):
        report = run_chaos(
            example_machine(), seed=seed, workdir=str(tmp_path)
        )
        assert report.ok, report.render_text()
        assert {o.fault for o in report.outcomes} == set(FAULTS)

    def test_all_faults_handled_mips(self, tmp_path):
        report = run_chaos(mips_r3000(), seed=0, workdir=str(tmp_path))
        assert report.ok, report.render_text()

    def test_deterministic_in_seed(self, tmp_path):
        first = run_chaos(
            example_machine(), seed=7, workdir=str(tmp_path / "a")
        )
        second = run_chaos(
            example_machine(), seed=7, workdir=str(tmp_path / "b")
        )
        assert first.to_dict() == second.to_dict()

    def test_fault_subset(self, tmp_path):
        report = run_chaos(
            example_machine(),
            faults=[FAULT_TRUNCATE_WRITE],
            workdir=str(tmp_path),
        )
        assert len(report.outcomes) == 1
        assert report.outcomes[0].fault == FAULT_TRUNCATE_WRITE
        assert report.outcomes[0].mode == MODE_DETECTED

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError):
            run_chaos(example_machine(), faults=["no-such-fault"])

    def test_report_schema(self, tmp_path):
        report = run_chaos(example_machine(), workdir=str(tmp_path))
        doc = report.to_dict()
        assert doc["schema"] == "repro-chaos-report"
        assert doc["version"] == 1
        assert doc["ok"] is True
        assert len(doc["outcomes"]) == len(FAULTS)

    def test_corruption_faults_survive_via_ladder(self, tmp_path):
        report = run_chaos(
            example_machine(),
            faults=[FAULT_DROP_USAGE, FAULT_SHIFT_USAGE],
            workdir=str(tmp_path),
        )
        for outcome in report.outcomes:
            assert outcome.mode == MODE_SURVIVED
            assert outcome.verified is True
            # The corruption forced a degradation off the reduced rung
            # (or was benign and the reduced rung verified anyway).
            assert outcome.rung in (
                "reduced", "partially-selected", "original"
            )

    def test_phase_delay_degrades_but_verifies(self, tmp_path):
        report = run_chaos(
            example_machine(),
            faults=[FAULT_PHASE_DELAY],
            workdir=str(tmp_path),
        )
        (outcome,) = report.outcomes
        assert outcome.handled
        assert outcome.verified is True

    def test_artifact_faults_detected(self, tmp_path):
        report = run_chaos(
            example_machine(),
            faults=[FAULT_TRUNCATE_WRITE, FAULT_FLIP_CHECKSUM],
            workdir=str(tmp_path),
        )
        for outcome in report.outcomes:
            assert outcome.handled
            assert outcome.mode == MODE_DETECTED
            assert "load refused" in outcome.detail


class TestDelayedClock:
    def test_trips_after_n_calls(self):
        clock = DelayedClock(trip=3)
        small = [clock() for _ in range(3)]
        assert all(v < 1e-6 for v in small)
        assert clock() > 1000.0

    def test_post_trip_intervals_stay_huge(self):
        """Budgets constructed after the trip must still blow their
        deadlines: consecutive readings differ by >= 1000s."""
        clock = DelayedClock(trip=1)
        clock()
        a, b = clock(), clock()
        assert b - a >= 1000.0
