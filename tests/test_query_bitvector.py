"""Unit tests for the bitvector-representation query module."""

import pytest

from repro.errors import QueryError
from repro.query import ASSIGN_FREE, CHECK, BitvectorQueryModule


@pytest.fixture(params=[1, 2, 4])
def k(request):
    return request.param


class TestBasics:
    def test_check_assign_free_roundtrip(self, example, k):
        qm = BitvectorQueryModule(example, word_cycles=k)
        token = qm.assign("B", 0)
        assert not qm.check("B", 0)
        qm.free(token)
        assert qm.check("B", 0)
        assert qm.word_at(0) == 0

    def test_conflicts_match_semantics(self, example, k):
        qm = BitvectorQueryModule(example, word_cycles=k)
        qm.assign("B", 0)
        for f in (-3, -2, -1, 0, 1, 2, 3):
            assert not qm.check("B", f)
        assert qm.check("B", 4)
        assert qm.check("B", -4)

    def test_negative_cycles(self, example, k):
        qm = BitvectorQueryModule(example, word_cycles=k)
        qm.assign("A", -7)
        assert not qm.check("A", -7)
        assert qm.check("A", -6)

    def test_bad_word_cycles(self, example):
        with pytest.raises(ValueError):
            BitvectorQueryModule(example, word_cycles=0)

    def test_bits_per_word(self, example):
        qm = BitvectorQueryModule(example, word_cycles=4)
        assert qm.bits_per_word() == 4 * 5


class TestWordWork:
    def test_check_work_counts_words_not_usages(self, example):
        # B uses cycles 0..7: with k=4 that is 2 words.
        qm = BitvectorQueryModule(example, word_cycles=4)
        qm.check("B", 0)
        assert qm.work.units[CHECK] == 2

    def test_alignment_affects_word_count(self, example):
        qm = BitvectorQueryModule(example, word_cycles=4)
        qm.check("B", 3)  # cycles 3..10 -> words 0,1,2
        assert qm.work.units[CHECK] == 3

    def test_k1_words_equal_distinct_cycles(self, example):
        qm = BitvectorQueryModule(example, word_cycles=1)
        qm.check("B", 0)
        assert qm.work.units[CHECK] == len(
            example.table("B").cycles_used()
        )


class TestOptimisticAssignFree:
    def test_stays_optimistic_without_conflicts(self, example):
        qm = BitvectorQueryModule(example, word_cycles=2)
        qm.assign_free("A", 0)
        qm.assign_free("B", 4)
        assert not qm.in_update_mode

    def test_transition_on_first_conflict(self, example):
        qm = BitvectorQueryModule(example, word_cycles=2)
        first, _ = qm.assign_free("B", 0)
        _t, evicted = qm.assign_free("B", 1)
        assert evicted == [first]
        assert qm.in_update_mode

    def test_transition_charged_as_work(self, example):
        qm = BitvectorQueryModule(example, word_cycles=2)
        qm.assign_free("B", 0)
        before = qm.work.units[ASSIGN_FREE]
        qm.assign_free("B", 1)
        delta = qm.work.units[ASSIGN_FREE] - before
        # At least: scan of the scheduled list (8 usages of B) plus the
        # incoming op's own usages.
        assert delta >= example.table("B").usage_count

    def test_update_mode_keeps_owner_fields(self, example):
        qm = BitvectorQueryModule(example, word_cycles=2)
        qm.assign_free("B", 0)
        t2, _ = qm.assign_free("B", 1)  # evicts, enters update mode
        t3, evicted = qm.assign_free("B", 2)  # evicts t2 via owner fields
        assert evicted == [t2]
        qm.free(t3)
        assert qm.check("B", 0)

    def test_free_in_optimistic_mode(self, example):
        qm = BitvectorQueryModule(example, word_cycles=2)
        token, _ = qm.assign_free("B", 0)
        qm.free(token)
        assert qm.check("B", 0)
        assert not qm.in_update_mode


class TestModulo:
    def test_wraps(self, example, k):
        qm = BitvectorQueryModule(example, word_cycles=k, modulo=5)
        qm.assign("A", 1)
        assert not qm.check("A", 6)
        assert not qm.check("A", 11)

    def test_self_collision(self, example, k):
        qm = BitvectorQueryModule(example, word_cycles=k, modulo=3)
        assert not qm.check("B", 0)  # r3 held 4 cycles wraps onto itself

    def test_partial_last_word(self, example):
        # II=5 with k=2: words cover cycles {0,1},{2,3},{4}.
        qm = BitvectorQueryModule(example, word_cycles=2, modulo=5)
        token = qm.assign("B", 0)
        qm.free(token)
        for t in range(5):
            assert qm.check("A", t)

    def test_eviction_under_modulo(self, example):
        qm = BitvectorQueryModule(example, word_cycles=2, modulo=8)
        first, _ = qm.assign_free("B", 0)
        _t, evicted = qm.assign_free("B", 9)  # distance 1 mod 8
        assert evicted == [first]


class TestConsistencyWithGroundTruth:
    def test_randomized_against_oracle(self, example):
        import random

        from repro.core import schedule_is_contention_free

        rng = random.Random(7)
        for _trial in range(50):
            qm = BitvectorQueryModule(example, word_cycles=rng.choice((1, 2, 3, 4)))
            placed = []
            for _step in range(10):
                op = rng.choice(example.operation_names)
                cycle = rng.randint(-4, 12)
                expected = schedule_is_contention_free(
                    example, placed + [(op, cycle)]
                )
                assert qm.check(op, cycle) == expected
                if expected:
                    qm.assign(op, cycle)
                    placed.append((op, cycle))
