"""The benchmark observatory: stats, result store, comparator, diffprof.

Comparator edge cases covered per the perf-gate design: zero-variance
samples, missing metrics on one side, schema-version mismatches,
single-repetition runs, workload mismatches, and determinism of the
work-unit gate.  The end-to-end run -> compare -> report round trip
(including the injected-slowdown regression) lives in
``tests/test_bench_cli.py``.
"""

import json

import pytest

from repro.bench import (
    BenchCase,
    BenchResult,
    CompareConfig,
    bootstrap_ci,
    compare_results,
    diff_profiles,
    intervals_overlap,
    load_result,
    mad,
    median,
    render_comparison_text,
    render_diff_text,
    render_result_text,
    save_result,
    summarize,
)
from repro.bench.result import RESULT_SCHEMA_NAME, RESULT_SCHEMA_VERSION
from repro.errors import ArtifactIntegrityError, BenchFormatError


# ----------------------------------------------------------------------
# Robust statistics
# ----------------------------------------------------------------------
def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


def test_mad_zero_variance():
    assert mad([5.0, 5.0, 5.0]) == 0.0
    assert mad([7.0]) == 0.0


def test_bootstrap_ci_deterministic():
    samples = [1.0, 1.2, 0.9, 1.1, 1.05]
    assert bootstrap_ci(samples, seed=3) == bootstrap_ci(samples, seed=3)
    low, high = bootstrap_ci(samples)
    assert low <= median(samples) <= high


def test_bootstrap_ci_single_sample_is_point():
    assert bootstrap_ci([2.5]) == (2.5, 2.5)


def test_bootstrap_ci_zero_variance_is_point():
    assert bootstrap_ci([3.0, 3.0, 3.0, 3.0]) == (3.0, 3.0)


def test_summarize_keeps_samples():
    summary = summarize([2.0, 1.0, 3.0])
    assert summary["n"] == 3
    assert summary["median"] == 2.0
    assert summary["samples"] == [2.0, 1.0, 3.0]
    assert summary["ci_low"] <= summary["median"] <= summary["ci_high"]


def test_intervals_overlap():
    assert intervals_overlap((0.0, 2.0), (1.0, 3.0))
    assert intervals_overlap((1.0, 1.0), (1.0, 1.0))
    assert not intervals_overlap((0.0, 1.0), (1.5, 2.0))


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
def _make_case(
    machine="m",
    representation="discrete",
    work=None,
    wall_samples=(0.010, 0.011, 0.0105),
    quality=None,
    phases=None,
):
    return BenchCase(
        machine=machine,
        representation=representation,
        work=dict(
            work
            if work is not None
            else {"query.check.units": 1000.0, "sched.ims.decisions": 64.0}
        ),
        wall=summarize(list(wall_samples)),
        phases=dict(phases or {}),
        quality=dict(
            quality
            if quality is not None
            else {
                "loops": 4, "loops_at_mii": 4,
                "ii_total": 20, "mii_total": 20, "mii_gap": 0,
            }
        ),
    )


def _make_result(**case_kwargs):
    result = BenchResult(
        meta={"git_sha": "deadbeef"},
        config={"loops": 4, "repetitions": 3},
    )
    result.add_case(_make_case(**case_kwargs))
    return result


def test_result_round_trip_dict():
    result = _make_result()
    parsed = BenchResult.from_dict(result.to_dict())
    assert parsed.to_dict() == result.to_dict()


def test_result_schema_mismatch_rejected():
    document = _make_result().to_dict()
    document["version"] = RESULT_SCHEMA_VERSION + 1
    with pytest.raises(BenchFormatError) as excinfo:
        BenchResult.from_dict(document)
    assert str(RESULT_SCHEMA_VERSION + 1) in str(excinfo.value)
    document["version"] = RESULT_SCHEMA_VERSION
    document["schema"] = "something-else"
    with pytest.raises(BenchFormatError):
        BenchResult.from_dict(document)
    with pytest.raises(BenchFormatError):
        BenchResult.from_dict(["not", "an", "object"])


def test_result_save_load_checksummed(tmp_path):
    path = str(tmp_path / "run.json")
    result = _make_result()
    save_result(path, result)
    assert (tmp_path / "run.json.sum.json").exists()
    loaded = load_result(path)
    assert loaded.to_dict() == result.to_dict()


def test_result_load_detects_corruption(tmp_path):
    path = str(tmp_path / "run.json")
    save_result(path, _make_result())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n")
    with pytest.raises(ArtifactIntegrityError):
        load_result(path)


def test_result_load_without_sidecar(tmp_path):
    # CI-downloaded artifacts may arrive without their sidecar.
    path = str(tmp_path / "bare.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_make_result().to_dict(), handle)
    assert load_result(path).cases


def test_result_load_rejects_non_json(tmp_path):
    path = str(tmp_path / "garbage.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json")
    with pytest.raises(BenchFormatError):
        load_result(path)


# ----------------------------------------------------------------------
# Comparator
# ----------------------------------------------------------------------
def test_identical_runs_compare_neutral():
    base = _make_result()
    new = BenchResult.from_dict(base.to_dict())
    comparison = compare_results(base, new)
    assert comparison.ok
    assert not comparison.regressions
    assert not comparison.improvements


def test_work_unit_increase_gates_hard():
    base = _make_result()
    new = _make_result(work={
        "query.check.units": 1100.0, "sched.ims.decisions": 64.0,
    })
    comparison = compare_results(base, new)
    assert not comparison.ok
    (regression,) = comparison.regressions
    assert regression.metric == "query.check.units"
    assert regression.kind == "work"
    assert regression.gated


def test_work_unit_decrease_is_improvement():
    base = _make_result()
    new = _make_result(work={
        "query.check.units": 500.0, "sched.ims.decisions": 64.0,
    })
    comparison = compare_results(base, new)
    assert comparison.ok
    assert any(
        d.metric == "query.check.units" for d in comparison.improvements
    )


def test_work_unit_within_ratio_is_neutral():
    base = _make_result()
    new = _make_result(work={
        "query.check.units": 1005.0, "sched.ims.decisions": 64.0,
    })
    assert compare_results(base, new).ok


def test_small_counters_not_gated():
    # One extra event on a 4-event counter is a 25% "regression" — the
    # min_units floor keeps it advisory.
    base = _make_result(work={"reduce.algorithm1.rule1": 4.0})
    new = _make_result(work={"reduce.algorithm1.rule1": 5.0})
    comparison = compare_results(base, new)
    assert comparison.ok
    delta = [
        d for d in comparison.deltas
        if d.metric == "reduce.algorithm1.rule1"
    ][0]
    assert delta.classification == "neutral"
    assert "min_units" in delta.note


def test_missing_metric_on_one_side_not_gated():
    base = _make_result()
    new = _make_result(work={
        "query.check.units": 1000.0,
        "sched.ims.decisions": 64.0,
        "query.assign.units": 400.0,
    })
    comparison = compare_results(base, new)
    assert comparison.ok
    missing = [
        d for d in comparison.deltas if d.metric == "query.assign.units"
    ][0]
    assert missing.classification == "missing-base"
    assert not missing.gated
    # And the mirror image.
    comparison = compare_results(new, base)
    assert comparison.ok
    missing = [
        d for d in comparison.deltas if d.metric == "query.assign.units"
    ][0]
    assert missing.classification == "missing-new"


def test_zero_variance_wall_identical_is_neutral():
    base = _make_result(wall_samples=(0.010, 0.010, 0.010))
    new = _make_result(wall_samples=(0.010, 0.010, 0.010))
    comparison = compare_results(base, new)
    walls = [d for d in comparison.deltas if d.metric == "wall"]
    assert walls[0].classification == "neutral"
    assert comparison.ok


def test_zero_variance_wall_difference_is_classified():
    # Point intervals that do not touch → classified regression, but
    # ungated under the default (CI) policy...
    base = _make_result(wall_samples=(0.010, 0.010, 0.010))
    new = _make_result(wall_samples=(0.020, 0.020, 0.020))
    comparison = compare_results(base, new)
    wall = [d for d in comparison.deltas if d.metric == "wall"][0]
    assert wall.classification == "regression"
    assert not wall.gated
    assert comparison.ok
    # ...and gated when wall gating is opted into.
    gated = compare_results(base, new, CompareConfig(gate_wall=True))
    assert not gated.ok
    assert gated.regressions[0].metric == "wall"


def test_single_repetition_wall_never_classified():
    base = _make_result(wall_samples=(0.010,))
    new = _make_result(wall_samples=(0.030,))
    comparison = compare_results(
        base, new, CompareConfig(gate_wall=True)
    )
    wall = [d for d in comparison.deltas if d.metric == "wall"][0]
    assert wall.classification == "neutral"
    assert "single-repetition" in wall.note
    assert comparison.ok


def test_overlapping_wall_intervals_stay_neutral():
    base = _make_result(wall_samples=(0.010, 0.012, 0.011))
    new = _make_result(wall_samples=(0.011, 0.013, 0.012))
    comparison = compare_results(
        base, new, CompareConfig(gate_wall=True)
    )
    wall = [d for d in comparison.deltas if d.metric == "wall"][0]
    assert wall.classification == "neutral"
    assert comparison.ok


def test_quality_regression_gates():
    base = _make_result()
    new = _make_result(quality={
        "loops": 4, "loops_at_mii": 3,
        "ii_total": 22, "mii_total": 20, "mii_gap": 2,
    })
    comparison = compare_results(base, new)
    assert not comparison.ok
    metrics = {d.metric for d in comparison.regressions}
    assert "quality.ii_total" in metrics
    assert "quality.loops_at_mii" in metrics


def test_workload_mismatch_skips_case():
    base = _make_result()
    new = _make_result(quality={
        "loops": 8, "loops_at_mii": 8,
        "ii_total": 40, "mii_total": 40, "mii_gap": 0,
    })
    comparison = compare_results(base, new)
    assert comparison.ok
    assert not comparison.deltas  # nothing comparable
    assert any("workload mismatch" in note for note in comparison.notes)


def test_case_on_one_side_only_is_noted():
    base = _make_result()
    new = _make_result(representation="bitvector")
    comparison = compare_results(base, new)
    assert comparison.ok
    assert len(comparison.notes) >= 2  # one per one-sided case


def test_nondeterministic_counters_excluded_from_gate():
    base = _make_result()
    new = _make_result(work={
        "query.check.units": 9999.0, "sched.ims.decisions": 64.0,
    })
    new.cases["m/discrete"].nondeterministic = ["query.check.units"]
    assert compare_results(base, new).ok


def test_comparison_document_shape():
    base = _make_result()
    new = _make_result(work={
        "query.check.units": 1100.0, "sched.ims.decisions": 64.0,
    })
    document = compare_results(base, new).to_dict()
    assert document["schema"] == "repro-bench-compare"
    assert document["ok"] is False
    assert document["regressions"][0]["metric"] == "query.check.units"
    assert document["policy"]["work_ratio"] == pytest.approx(1.01)


# ----------------------------------------------------------------------
# Differential profiling
# ----------------------------------------------------------------------
def _phases(reduce_self, sched_self):
    return {
        "reduce.generating_set": {
            "count": 1,
            "total": summarize([reduce_self] * 3),
            "self": summarize([reduce_self] * 3),
        },
        "sched.ims.schedule": {
            "count": 4,
            "total": summarize([sched_self] * 3),
            "self": summarize([sched_self] * 3),
        },
    }


def test_diff_profiles_ranks_by_delta_and_attributes_counters():
    base = _make_result(
        work={
            "reduce.algorithm1.rule3": 100.0,
            "query.check.units": 1000.0,
        },
        phases=_phases(0.010, 0.020),
    )
    new = _make_result(
        work={
            "reduce.algorithm1.rule3": 118.0,
            "query.check.units": 1500.0,
        },
        phases=_phases(0.012, 0.050),
    )
    diffs = diff_profiles(base, new, top=2)
    deltas = diffs["m/discrete"]
    # Largest |delta| first: the scheduler phase moved 30ms.
    assert deltas[0].phase == "sched.ims.schedule"
    assert deltas[0].delta_s == pytest.approx(0.030)
    assert deltas[0].measure == "self"
    # The scheduler phase is annotated with the query-work movement...
    sched_counters = {c.name for c in deltas[0].counters}
    assert "query.check.units" in sched_counters
    # ...and the reduce phase with Algorithm 1's rule counter (+18%).
    reduce_delta = [
        d for d in deltas if d.phase == "reduce.generating_set"
    ][0]
    rule = [
        c for c in reduce_delta.counters
        if c.name == "reduce.algorithm1.rule3"
    ][0]
    assert rule.percent == pytest.approx(18.0)
    assert "+18.0%" in rule.describe()
    text = render_diff_text(diffs)
    assert "sched.ims.schedule" in text
    assert "reduce.algorithm1.rule3 +18.0%" in text


def test_diff_profiles_empty_when_no_shared_phases():
    base = _make_result(phases={})
    new = _make_result(phases=_phases(0.01, 0.02))
    assert diff_profiles(base, new) == {}
    assert "no shared phases" in render_diff_text({})


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def test_render_result_text_mentions_cases_and_phases():
    result = _make_result(phases=_phases(0.01, 0.02))
    text = render_result_text(result)
    assert "m/discrete" in text
    assert "sha=deadbeef" in text
    assert "sched.ims.schedule" in text
    assert "self ms" in text


def test_render_comparison_text_verdicts():
    base = _make_result()
    ok_text = render_comparison_text(
        compare_results(base, BenchResult.from_dict(base.to_dict()))
    )
    assert ok_text.startswith("verdict: OK")
    new = _make_result(work={
        "query.check.units": 1100.0, "sched.ims.decisions": 64.0,
    })
    bad = render_comparison_text(compare_results(base, new), base, new)
    assert bad.startswith("verdict: REGRESSION")
    assert "query.check.units" in bad


def test_schema_constants_stable():
    # The checked-in baseline depends on these; bump deliberately.
    assert RESULT_SCHEMA_NAME == "repro-bench-result"
    assert RESULT_SCHEMA_VERSION == 1


# ----------------------------------------------------------------------
# Forward compatibility with pre-attribution results
# ----------------------------------------------------------------------
def test_pre_attribution_fixture_compares_clean(tmp_path):
    """A PR-5-era result (no ``query.attribute.*``) still gates today.

    The attribution plane added a new work currency to the shared
    registries; older stored bench results know nothing about it.  The
    comparator must classify the one-sided counters as informational
    (never gated) instead of failing on the unknown metric.
    """
    import os

    from repro.bench.compare import MISSING_BASE

    fixture = os.path.join(
        os.path.dirname(__file__), "fixtures", "bench-result-pr5.json"
    )
    base = load_result(fixture)
    assert "cydra5-subset/compiled" in base.cases

    new = BenchResult(
        meta={"git_sha": "feedface"},
        config={"loops": 4, "repetitions": 3, "seed": 0},
    )
    new_work = dict(base.cases["cydra5-subset/compiled"].work)
    new_work["query.attribute.units"] = 42.0  # the new currency
    new.add_case(
        BenchCase(
            machine="cydra5-subset",
            representation="compiled",
            work=new_work,
            wall=summarize([0.0101, 0.0104, 0.0108]),
            phases={},
            quality=dict(base.cases["cydra5-subset/compiled"].quality),
        )
    )

    comparison = compare_results(base, new)
    assert comparison.ok  # the new counter must not gate
    missing = [
        delta for delta in comparison.deltas
        if delta.metric == "query.attribute.units"
    ]
    assert missing, "new counter should surface as an ungated delta"
    assert all(d.classification == MISSING_BASE for d in missing)
    assert all(d.kind == "work" for d in missing)
    assert not any(delta.gated for delta in missing)
    # And the rendered report stays usable.
    text = render_comparison_text(comparison, base, new)
    assert text.startswith("verdict: OK")


def test_pre_batch_fixture_compares_clean(tmp_path):
    """A PR-5-era result (no ``query.batch.*``) still gates today.

    The corpus batch plane added the BATCH currency and the
    ``corpus-batch``/``corpus-perloop`` cells; stored results that
    predate both must load, compare, and never gate on the one-sided
    counter or the extra cases.
    """
    import os

    from repro.bench.compare import MISSING_BASE

    fixture = os.path.join(
        os.path.dirname(__file__), "fixtures", "bench-result-pr5.json"
    )
    base = load_result(fixture)
    case = base.cases["cydra5-subset/compiled"]
    assert not any("batch" in key for key in case.work)

    new = BenchResult(
        meta={"git_sha": "feedface"},
        config={"loops": 4, "repetitions": 3, "seed": 0},
    )
    new_work = dict(case.work)
    new_work["query.batch.units"] = 42.0  # the batch plane's currency
    new.add_case(
        BenchCase(
            machine="cydra5-subset",
            representation="compiled",
            work=new_work,
            wall=summarize([0.0101, 0.0104, 0.0108]),
            phases={},
            quality=dict(case.quality),
        )
    )
    # A corpus cell the old result never ran must be skipped, not gated.
    new.add_case(
        BenchCase(
            machine="cydra5-subset",
            representation="corpus-batch",
            work={"query.batch.units": 420.0},
            wall=summarize([0.05, 0.051, 0.052]),
            phases={},
            quality={"loops": 8.0},
        )
    )

    comparison = compare_results(base, new)
    assert comparison.ok  # the new counter must not gate
    missing = [
        delta for delta in comparison.deltas
        if delta.metric == "query.batch.units"
    ]
    assert missing, "new counter should surface as an ungated delta"
    assert all(d.classification == MISSING_BASE for d in missing)
    assert not any(delta.gated for delta in missing)
    text = render_comparison_text(comparison, base, new)
    assert text.startswith("verdict: OK")
    assert "corpus-batch" in text  # skipped case is still reported


def test_pre_sampler_fixture_compares_clean(tmp_path):
    """A PR-8-era result (no ``query.sample.*``) still gates today.

    The sampling profiler added the SAMPLE currency; stored results that
    predate it must load, compare, and never gate on the one-sided
    counter — the same forward-compatibility contract the attribution
    currency established.
    """
    import os

    from repro.bench.compare import MISSING_BASE

    fixture = os.path.join(
        os.path.dirname(__file__), "fixtures", "bench-result-pr5.json"
    )
    base = load_result(fixture)
    case = base.cases["cydra5-subset/compiled"]
    assert not any("sample" in key for key in case.work)

    new = BenchResult(
        meta={"git_sha": "feedface"},
        config={"loops": 4, "repetitions": 3, "seed": 0},
    )
    new_work = dict(case.work)
    new_work["query.sample.units"] = 42.0  # the sampler's currency
    new.add_case(
        BenchCase(
            machine="cydra5-subset",
            representation="compiled",
            work=new_work,
            wall=summarize([0.0101, 0.0104, 0.0108]),
            phases={},
            quality=dict(case.quality),
        )
    )

    comparison = compare_results(base, new)
    assert comparison.ok  # the new counter must not gate
    missing = [
        delta for delta in comparison.deltas
        if delta.metric == "query.sample.units"
    ]
    assert missing, "new counter should surface as an ungated delta"
    assert all(d.classification == MISSING_BASE for d in missing)
    assert not any(delta.gated for delta in missing)
    text = render_comparison_text(comparison, base, new)
    assert text.startswith("verdict: OK")
