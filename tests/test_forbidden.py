"""Unit tests for forbidden latency matrices (paper Step 1)."""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineDescription,
    canonical_instance,
    collapse_to_classes,
)


class TestCanonicalInstance:
    def test_positive_unchanged(self):
        assert canonical_instance("A", "B", 3) == ("A", "B", 3)

    def test_negative_mirrors(self):
        assert canonical_instance("A", "B", -3) == ("B", "A", 3)

    def test_zero_orders_pair(self):
        assert canonical_instance("B", "A", 0) == ("A", "B", 0)
        assert canonical_instance("A", "B", 0) == ("A", "B", 0)


class TestExampleMatrix:
    """The matrix of the paper's Figure 1b, checked entry by entry."""

    def test_self_a(self, example_matrix):
        assert example_matrix.latencies("A", "A") == frozenset({0})

    def test_self_b(self, example_matrix):
        assert example_matrix.latencies("B", "B") == frozenset(
            {-3, -2, -1, 0, 1, 2, 3}
        )

    def test_b_after_a(self, example_matrix):
        assert example_matrix.latencies("B", "A") == frozenset({1})

    def test_a_after_b(self, example_matrix):
        assert example_matrix.latencies("A", "B") == frozenset({-1})

    def test_symmetry(self, example_matrix):
        for op_x, op_y, latencies in example_matrix.pairs():
            for f in latencies:
                assert example_matrix.is_forbidden(op_y, op_x, -f)

    def test_instances(self, example_matrix):
        assert example_matrix.instances() == [
            ("A", "A", 0),
            ("B", "A", 1),
            ("B", "B", 0),
            ("B", "B", 1),
            ("B", "B", 2),
            ("B", "B", 3),
        ]

    def test_instance_count(self, example_matrix):
        assert example_matrix.instance_count == 6

    def test_max_latency(self, example_matrix):
        assert example_matrix.max_latency == 3

    def test_uses_resources(self, example_matrix):
        assert example_matrix.uses_resources("A")


class TestGeneralProperties:
    def test_zero_self_contention_for_any_used_op(self, mips):
        matrix = ForbiddenLatencyMatrix.from_machine(mips)
        for op in mips.operation_names:
            assert matrix.is_forbidden(op, op, 0)

    def test_disjoint_ops_have_no_cross_latencies(self):
        md = MachineDescription(
            "d", {"A": {"left": [0]}, "B": {"right": [0]}}
        )
        matrix = ForbiddenLatencyMatrix.from_machine(md)
        assert matrix.latencies("A", "B") == frozenset()
        assert matrix.latencies("A", "A") == frozenset({0})

    def test_empty_op_has_no_latencies(self):
        md = MachineDescription("d", {"A": {"r": [0]}, "NOP": {}})
        matrix = ForbiddenLatencyMatrix.from_machine(md)
        assert not matrix.uses_resources("NOP")
        assert matrix.latencies("NOP", "A") == frozenset()

    def test_matches_brute_force_overlap(self, example):
        """F[X][Y] contains f iff overlapping the tables at distance f
        collides — the definition, checked against ReservationTable."""
        matrix = ForbiddenLatencyMatrix.from_machine(example)
        for op_x in example.operation_names:
            for op_y in example.operation_names:
                table_x = example.table(op_x)
                table_y = example.table(op_y)
                for f in range(-10, 11):
                    # X issues f cycles after Y: collision iff usage sets
                    # of Y overlap X shifted by f.
                    collides = table_y.conflicts_at(table_x, f)
                    assert collides == matrix.is_forbidden(op_x, op_y, f)


class TestOperationClasses:
    def test_identical_ops_merge(self):
        md = MachineDescription(
            "c",
            {"A1": {"r": [0]}, "A2": {"r": [0]}, "B": {"r": [0], "s": [1, 2]}},
        )
        matrix = ForbiddenLatencyMatrix.from_machine(md)
        assert ("A1", "A2") in matrix.operation_classes()

    def test_mips_class_count(self, mips):
        matrix = ForbiddenLatencyMatrix.from_machine(mips)
        assert len(matrix.operation_classes()) == 15

    def test_same_class_is_reflexive(self, example_matrix):
        assert example_matrix.same_class("A", "A")

    def test_different_ops_not_same_class(self, example_matrix):
        assert not example_matrix.same_class("A", "B")

    def test_collapse_to_classes(self):
        md = MachineDescription(
            "c", {"A1": {"r": [0]}, "A2": {"r": [0]}, "B": {"s": [0, 1]}}
        )
        collapsed, mapping = collapse_to_classes(md)
        assert collapsed.num_operations == 2
        assert mapping["A2"] == "A1"
        assert mapping["B"] == "B"


class TestDifferences:
    def test_equal_matrices(self, example, example_matrix):
        other = ForbiddenLatencyMatrix.from_machine(example)
        assert example_matrix == other
        assert example_matrix.differences(other) == []

    def test_detects_missing_latency(self, example, example_matrix):
        weaker = MachineDescription(
            "weak",
            {
                "A": {"r0": [0]},
                "B": {"r3": [2, 3, 4, 5], "r4": [6, 7]},
            },
        )
        diffs = example_matrix.differences(
            ForbiddenLatencyMatrix.from_machine(weaker)
        )
        assert any(x == "B" and y == "A" for x, y, _, _ in diffs)
