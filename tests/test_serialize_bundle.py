"""Tests for schedule serialization and VLIW bundling."""

import pytest

from repro.errors import ScheduleError
from repro.machines import cydra5_subset, playdoh
from repro.scheduler import (
    DependenceGraph,
    IterativeModuloScheduler,
    OperationDrivenScheduler,
    bundle,
    issue_unit,
    serialize,
)
from repro.workloads import KERNELS, generate_loop


@pytest.fixture(scope="module")
def daxpy_result():
    return IterativeModuloScheduler(cydra5_subset()).schedule(
        KERNELS["daxpy"]()
    )


class TestGraphJson:
    def test_round_trip(self):
        graph = KERNELS["tridiagonal"]()
        data = serialize.graph_to_json(graph)
        again = serialize.graph_from_json(data)
        assert [op.name for op in again.operations()] == [
            op.name for op in graph.operations()
        ]
        assert list(again.edges()) == list(graph.edges())

    def test_text_round_trip(self):
        graph = generate_loop(11)
        text = serialize.dumps(serialize.graph_to_json(graph))
        again = serialize.graph_from_json(serialize.loads(text))
        assert again.num_edges == graph.num_edges

    def test_version_checked(self):
        with pytest.raises(ScheduleError):
            serialize.graph_from_json({"version": 99, "name": "x"})

    def test_stable_output(self):
        graph = KERNELS["daxpy"]()
        a = serialize.dumps(serialize.graph_to_json(graph))
        b = serialize.dumps(serialize.graph_to_json(KERNELS["daxpy"]()))
        assert a == b


class TestResultJson:
    def test_modulo_result(self, daxpy_result):
        data = serialize.modulo_result_to_json(daxpy_result)
        assert data["kind"] == "modulo"
        assert data["ii"] == daxpy_result.ii
        assert data["times"] == daxpy_result.times
        assert data["stats"]["optimal"] is True
        serialize.dumps(data)  # JSON-serializable

    def test_block_result(self):
        scheduler = OperationDrivenScheduler(cydra5_subset())
        graph = DependenceGraph("b")
        graph.add_operation("x", "iadd")
        result = scheduler.schedule(graph)
        data = serialize.block_result_to_json(result)
        assert data["kind"] == "block"
        assert data["length"] == result.length
        rebuilt = serialize.graph_from_json(data["graph"])
        assert rebuilt.num_operations == 1


class TestIssueUnit:
    def test_cydra_units(self):
        machine = cydra5_subset()
        assert issue_unit(machine, "iadd") == "fa"
        assert issue_unit(machine, "fmul_s") == "fm"
        assert issue_unit(machine, "load_s.0") == "m0"
        assert issue_unit(machine, "brtop") == "br"

    def test_machine_without_convention_falls_back(self):
        from repro.machines import example_machine

        assert issue_unit(example_machine(), "A") == "misc"


class TestBundle:
    def test_kernel_bundles_into_ii_words(self, daxpy_result):
        bundling = bundle(
            daxpy_result.machine,
            daxpy_result.times,
            daxpy_result.chosen_opcodes,
            modulo=daxpy_result.ii,
        )
        assert bundling.num_words == daxpy_result.ii
        placed = sum(len(word.fields) for word in bundling.words)
        assert placed == daxpy_result.num_operations

    def test_density_and_nops(self, daxpy_result):
        bundling = bundle(
            daxpy_result.machine,
            daxpy_result.times,
            daxpy_result.chosen_opcodes,
            modulo=daxpy_result.ii,
        )
        assert 0.0 < bundling.density <= 1.0
        total = bundling.num_words * len(bundling.units)
        assert bundling.nop_fields == total - daxpy_result.num_operations

    def test_render(self, daxpy_result):
        bundling = bundle(
            daxpy_result.machine,
            daxpy_result.times,
            daxpy_result.chosen_opcodes,
            modulo=daxpy_result.ii,
        )
        art = bundling.render()
        assert "t=" in art
        assert any(unit in art for unit in bundling.units)

    def test_double_booking_detected(self):
        machine = cydra5_subset()
        with pytest.raises(ScheduleError):
            bundle(
                machine,
                {"a": 0, "b": 0},
                {"a": "iadd", "b": "icmp"},  # both on the fa unit
            )

    def test_scalar_bundling(self):
        machine = playdoh()
        scheduler = OperationDrivenScheduler(machine)
        graph = DependenceGraph("blk")
        for index in range(6):
            graph.add_operation("op%d" % index, "ialu")
        result = scheduler.schedule(graph)
        bundling = bundle(
            machine, result.times, result.chosen_opcodes
        )
        # 6 ialu ops over 4 ALUs: at most ceil(6/4) words needed... but
        # first-fit alternatives may spread them; every word is legal.
        assert bundling.num_words >= 2
