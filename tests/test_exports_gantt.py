"""Tests for dot/markdown exporters and occupancy charts."""

import pytest

from repro.analysis import (
    graph_to_dot,
    has_collision,
    machine_to_markdown,
    occupancy_chart,
)
from repro.machines import cydra5_subset, example_machine
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import KERNELS


class TestDot:
    def test_structure(self):
        dot = graph_to_dot(KERNELS["daxpy"]())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"ld_x" -> "mul"' in dot

    def test_loop_carried_edges_marked(self):
        dot = graph_to_dot(KERNELS["inner-product"]())
        assert "constraint=false" in dot
        assert "d1" in dot

    def test_schedule_annotations(self):
        result = IterativeModuloScheduler(cydra5_subset()).schedule(
            KERNELS["daxpy"]()
        )
        dot = graph_to_dot(result.graph, times=result.times, ii=result.ii)
        assert "t=" in dot
        assert "slot" in dot

    def test_kind_styles(self):
        from repro.scheduler import DependenceGraph

        g = DependenceGraph("k")
        g.add_operation("a", "x")
        g.add_operation("b", "x")
        g.add_dependence("a", "b", 1, kind="anti")
        assert "style=dashed" in graph_to_dot(g)

    def test_quoting(self):
        from repro.scheduler import DependenceGraph

        g = DependenceGraph('weird "name"')
        g.add_operation("n", "op")
        dot = graph_to_dot(g)
        assert '"' in dot  # identifiers survive quoting


class TestMarkdown:
    def test_table_shape(self):
        text = machine_to_markdown(example_machine())
        assert "| operation |" in text
        assert "| A |" in text
        lines = [l for l in text.splitlines() if l.startswith("|")]
        widths = {line.count("|") for line in lines}
        assert len(widths) == 1  # consistent column count

    def test_alternatives_listed(self):
        text = machine_to_markdown(cydra5_subset())
        assert "`load_s`" in text

    def test_cell_contents(self):
        text = machine_to_markdown(example_machine())
        assert "r3" in text


class TestOccupancyChart:
    def test_basic_grid(self):
        machine = example_machine()
        art = occupancy_chart(machine, [("B", 0)])
        assert "r3 |" in art
        assert "legend: A=B@0" in art

    def test_collision_marked(self):
        machine = example_machine()
        art = occupancy_chart(machine, [("B", 0), ("B", 1)])
        assert "*" in art

    def test_modulo_folding(self):
        machine = example_machine()
        art = occupancy_chart(machine, [("B", 0)], modulo=4)
        header = art.splitlines()[0]
        assert header.strip().endswith("0123")

    def test_row_order_respected(self):
        machine = example_machine()
        art = occupancy_chart(
            machine, [("B", 0)], resources=["r4", "r3"]
        )
        lines = art.splitlines()
        assert lines[1].startswith("r4")

    def test_has_collision(self):
        machine = example_machine()
        assert not has_collision(machine, [("B", 0), ("B", 4)])
        assert has_collision(machine, [("B", 0), ("B", 1)])
        assert has_collision(machine, [("B", 0), ("B", 4)], modulo=4)
