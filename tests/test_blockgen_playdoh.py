"""Tests for the basic-block generator and the PlayDoh machine."""

import pytest

from repro.core import (
    ForbiddenLatencyMatrix,
    matrices_equal,
    reduce_machine,
    schedule_is_contention_free,
)
from repro.machines import PLAYDOH_LATENCIES, PLAYDOH_MIX, playdoh
from repro.scheduler import OperationDrivenScheduler, res_mii, res_mii_packed
from repro.workloads import block_suite, generate_block
from repro.workloads.blockgen import MAX_BLOCK_OPS


class TestBlockGenerator:
    def test_deterministic(self):
        a = generate_block(7)
        b = generate_block(7)
        assert [op.name for op in a.operations()] == [
            op.name for op in b.operations()
        ]

    def test_blocks_are_acyclic(self):
        for seed in range(40):
            graph = generate_block(seed)
            graph.validate()
            assert graph.is_acyclic()

    def test_no_loop_carried_edges(self):
        for seed in range(20):
            assert all(
                e.distance == 0 for e in generate_block(seed).edges()
            )

    def test_size_bounds(self):
        sizes = [g.num_operations for g in block_suite(150)]
        assert max(sizes) <= MAX_BLOCK_OPS + MAX_BLOCK_OPS // 8
        assert min(sizes) >= 1

    def test_custom_mix(self):
        graph = generate_block(
            3,
            mix=(("ialu", 1),),
            latencies=PLAYDOH_LATENCIES,
        )
        body_opcodes = {
            op.opcode for op in graph.operations()
        }
        assert body_opcodes <= {"ialu", "store_s"}

    def test_blocks_schedule_on_subset(self):
        from repro.machines import cydra5_subset

        scheduler = OperationDrivenScheduler(cydra5_subset())
        for graph in block_suite(12):
            result = scheduler.schedule(graph)
            placements = [
                (result.chosen_opcodes[n], t)
                for n, t in result.times.items()
            ]
            assert schedule_is_contention_free(
                result.machine, placements
            )


class TestPlayDoh:
    @pytest.fixture(scope="class")
    def machine(self):
        return playdoh()

    def test_structure(self, machine):
        assert machine.alternatives_of("ialu") == (
            "ialu.0", "ialu.1", "ialu.2", "ialu.3",
        )
        assert len(machine.alternatives_of("ld")) == 2

    def test_latency_table_covers_all_bases(self, machine):
        bases = set(machine.alternatives) | {
            op for op in machine.operation_names if "." not in op
        }
        assert bases == set(PLAYDOH_LATENCIES)

    def test_mix_opcodes_exist(self, machine):
        for opcode, _weight in PLAYDOH_MIX:
            machine.alternatives_of(opcode)

    def test_reduction_exact(self, machine):
        reduction = reduce_machine(machine)
        assert matrices_equal(machine, reduction.reduced)
        assert reduction.reduced.num_resources < machine.num_resources

    def test_wide_issue(self, machine):
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
        # Two different ALUs can issue in the same cycle...
        assert not matrix.is_forbidden("ialu.0", "ialu.1", 0)
        # ... but the same ALU cannot be used twice.
        assert matrix.is_forbidden("ialu.0", "ialu.0", 0)

    def test_divider_not_pipelined(self, machine):
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
        assert matrix.is_forbidden("fdiv_d.0", "fdiv_d.0", 15)
        assert matrix.max_latency < 41

    def test_res_mii_uses_alternatives(self, machine):
        # 4 ialu ops spread over 4 ALUs: II = 1 suffices.
        assert res_mii(machine, ["ialu"] * 4) == 1
        assert res_mii(machine, ["ialu"] * 5) == 2

    def test_res_mii_packed_at_least_count_bound(self, machine):
        ops = ["ialu"] * 4 + ["fma", "fma", "ld", "ld", "st"]
        assert res_mii_packed(machine, ops) >= res_mii(machine, ops)
