"""Fuzz campaigns: N generated machines through the oracle, plus plans.

One campaign is a pure function of ``(seed, runs, profile, config)``:
machine seeds derive from the campaign seed, every component below is
string-seeded, and the report deliberately records **no wall-clock
fields**, so two consecutive runs of the same campaign emit
byte-identical ``repro-fuzz-report v1`` JSON.

Every fourth run (by default) additionally executes a composed chaos
plan (:mod:`repro.fuzz.plans`) against the machine generated for that
run, so fault *sequences* ride the same generated corpus.  A failed
plan step is a resilience-contract violation and is reported as a bug
alongside oracle divergences.

With shrinking enabled, every machine-level bug is minimized
(:mod:`repro.fuzz.shrink`) and shipped as a checksummed repro bundle.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional

from repro.errors import BudgetExceeded, ReproError
from repro.fuzz.mdlgen import PROFILES, generate_machine
from repro.fuzz.oracle import (
    OracleConfig,
    VERDICT_BUG,
    VERDICT_HANDLED,
    VERDICT_OK,
    run_oracle,
)
from repro.fuzz.plans import compose_plan, run_plan
from repro.fuzz.shrink import shrink, write_repro_bundle
from repro.obs import trace as obs

FUZZ_SCHEMA_NAME = "repro-fuzz-report"
FUZZ_SCHEMA_VERSION = 1

#: Offset multiplier spreading campaign seeds into disjoint machine-seed
#: ranges (so ``--seed 0..4`` campaigns never share a machine).
_SEED_STRIDE = 100003


def machine_seed(campaign_seed: int, run: int) -> int:
    """The generator seed of run ``run`` in campaign ``campaign_seed``."""
    return campaign_seed * _SEED_STRIDE + run


def run_campaign(
    seed: int = 0,
    runs: int = 20,
    profile: str = "mixed",
    max_units: Optional[int] = None,
    do_shrink: bool = False,
    bundle_dir: Optional[str] = None,
    plans_every: int = 4,
    plan_length: int = 3,
    config: Optional[OracleConfig] = None,
) -> Dict[str, object]:
    """Run one fuzz campaign; returns the ``repro-fuzz-report v1`` dict.

    Raises :class:`~repro.errors.ReproError` on an unknown profile.
    ``max_units`` caps each oracle pipeline stage (tight caps turn
    ``ok`` verdicts into ``handled`` ones — still a green campaign).
    """
    if profile not in PROFILES:
        raise ReproError(
            "unknown fuzz profile %r (known: %s)"
            % (profile, ", ".join(sorted(PROFILES)))
        )
    if runs < 1:
        raise ReproError("a fuzz campaign needs at least one run")
    oracle_config = config or OracleConfig(max_units=max_units)
    profile_obj = PROFILES[profile]
    counts = {VERDICT_OK: 0, VERDICT_HANDLED: 0, VERDICT_BUG: 0}
    results: List[Dict[str, object]] = []
    plans: List[Dict[str, object]] = []
    bugs: List[Dict[str, object]] = []
    bundles: List[Dict[str, object]] = []
    for run in range(runs):
        mseed = machine_seed(seed, run)
        obs.count("fuzz.run")
        machine = generate_machine(mseed, profile_obj)
        outcome = run_oracle(
            machine, mseed, oracle_config, profile=profile
        )
        counts[outcome.verdict] += 1
        results.append(outcome.to_dict())
        if outcome.verdict == VERDICT_BUG:
            obs.count("fuzz.bug")
            bug_entry: Dict[str, object] = {
                "run": run,
                "seed": mseed,
                "kind": "oracle",
                "fingerprint": outcome.fingerprint,
                "stage": outcome.stage,
                "detail": outcome.detail,
            }
            if do_shrink and outcome.fingerprint:
                result = shrink(
                    machine,
                    mseed,
                    outcome.fingerprint,
                    config=oracle_config,
                    profile=profile,
                )
                bug_entry["shrunk"] = {
                    "operations": result.machine.num_operations,
                    "resources": result.machine.num_resources,
                    "usages": result.machine.total_usages,
                    "accepted": result.accepted,
                }
                if bundle_dir is not None:
                    manifest = write_repro_bundle(
                        os.path.join(bundle_dir, "run-%d" % run),
                        result,
                        mseed,
                        profile=profile,
                    )
                    bug_entry["bundle"] = manifest
                    bundles.append(manifest)
            bugs.append(bug_entry)
        if plans_every > 0 and run % plans_every == plans_every - 1:
            plan = compose_plan(mseed, length=plan_length)
            with tempfile.TemporaryDirectory(
                prefix="repro-fuzz-plan-"
            ) as workdir:
                try:
                    plan_report = run_plan(machine, plan, workdir)
                except BudgetExceeded as exc:
                    plans.append({
                        "machine": machine.name,
                        "plan": plan.to_dict(),
                        "ok": True,
                        "budget_exceeded": str(exc),
                        "outcomes": [],
                    })
                    continue
            document = plan_report.to_dict()
            document["run"] = run
            plans.append(document)
            if not plan_report.ok:
                obs.count("fuzz.bug")
                failed = sorted(
                    "%s@%s" % (o.step.fault, o.step.phase)
                    for o in plan_report.outcomes
                    if not o.handled
                )
                bugs.append({
                    "run": run,
                    "seed": mseed,
                    "kind": "chaos-plan",
                    "fingerprint": "chaos-plan:%s" % failed[0],
                    "stage": "chaos-plan",
                    "detail": "unhandled plan steps: %s"
                    % ", ".join(failed),
                })
    return {
        "schema": FUZZ_SCHEMA_NAME,
        "version": FUZZ_SCHEMA_VERSION,
        "seed": seed,
        "runs": runs,
        "profile": profile,
        "config": {
            "max_units": max_units,
            "shrink": bool(do_shrink),
            "plans_every": plans_every,
            "plan_length": plan_length,
            "word_cycles": oracle_config.word_cycles,
            "workloads": oracle_config.workloads,
        },
        "counts": counts,
        "ok": counts[VERDICT_BUG] == 0 and not bugs,
        "results": results,
        "plans": plans,
        "bugs": bugs,
        "bundles": bundles,
    }


__all__ = [
    "FUZZ_SCHEMA_NAME",
    "FUZZ_SCHEMA_VERSION",
    "machine_seed",
    "run_campaign",
]
