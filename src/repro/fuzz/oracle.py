"""Differential pipeline oracle.

Runs one (usually generated) machine description through the full
pipeline — structural lint, query-module trajectories, reduce, certify,
equivalence, modulo scheduling, corpus batch scheduling — and
cross-checks every redundant path the library offers:

* the three query representations (discrete, bitvector, compiled) must
  answer every contention check identically, and must agree with the
  brute-force reservation-grid overlay
  (:func:`repro.core.verify.schedule_is_contention_free`);
* the reduced description must be equivalent to the original
  (:func:`repro.core.verify.assert_equivalent`) and its certificate
  must check;
* the modulo scheduler must produce the *identical* schedule on the
  original and the reduced description under every representation —
  the paper's central claim;
* corpus-scheduling the seeded workloads through the columnar batch
  plane (:class:`repro.scheduler.corpus.CorpusScheduler`, shared
  compilation) must match the per-loop compiled path
  signature-for-signature (fingerprint class ``divergence:batch``).

Every outcome is classified:

``ok``
    The whole pipeline ran and every cross-check agreed.
``handled``
    A *structured* failure — :class:`~repro.errors.ScheduleError`,
    :class:`~repro.errors.BudgetExceeded`, or
    :class:`~repro.errors.CertificateError` — raised consistently.
    Expected behavior under tight budgets or unschedulable loops.
``bug``
    Divergence between redundant paths, silent corruption, a structural
    lint finding on a machine the generator promised was clean, or any
    unhandled exception.  A ``bug`` carries a stable *fingerprint*
    (machine-detail-free, e.g. ``divergence:equivalence``) that the
    shrinker preserves while minimizing.

The ``mutate_reduced`` and ``mutate_corpus_signatures`` hooks exist for
tests only: they inject a known-bad transform (between reduction and
verification, or into the batch leg's signature list), simulating a
broken reduction pipeline or batch plane so the bug path and the
shrinker have a deterministic target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.core.reduce import reduce_machine
from repro.core.verify import assert_equivalent, schedule_is_contention_free
from repro.core.certificate import check_certificate, issue_certificate
from repro.errors import (
    BudgetExceeded,
    CertificateError,
    EquivalenceError,
    ReproError,
    ScheduleError,
)
from repro.fuzz.mdlgen import STRUCTURAL_RULES, generate_workload
from repro.lint import lint_machine
from repro.query import BATCH, COMPILED, REPRESENTATIONS, make_query_module
from repro.resilience.budget import Budget
from repro.scheduler.corpus import CorpusScheduler
from repro.scheduler.modulo import IterativeModuloScheduler

VERDICT_OK = "ok"
VERDICT_HANDLED = "handled"
VERDICT_BUG = "bug"

VERDICTS = (VERDICT_OK, VERDICT_HANDLED, VERDICT_BUG)


@dataclass
class OracleConfig:
    """Knobs of one oracle run (all deterministic)."""

    #: Bitvector packing width for the bitvector/compiled probes.
    word_cycles: int = 4
    #: Work-unit cap per pipeline stage; ``None`` = uncapped.
    max_units: Optional[int] = None
    #: Loop workloads scheduled per machine.
    workloads: int = 2
    #: Operations per workload loop body.
    workload_operations: int = 6
    #: Steps of the seeded query-trajectory probe.
    probe_steps: int = 48
    #: Test-only divergence hook applied to the reduced description
    #: before verification — simulates a broken reduction.
    mutate_reduced: Optional[
        Callable[[MachineDescription], MachineDescription]
    ] = None
    #: Test-only divergence hook applied to the corpus (batch) leg's
    #: per-loop signature list before the ``batch`` differential stage
    #: compares it — simulates a broken batch plane.
    mutate_corpus_signatures: Optional[
        Callable[[List], List]
    ] = None


@dataclass
class OracleOutcome:
    """Classification of one machine's trip through the pipeline."""

    verdict: str
    seed: int
    profile: str
    machine_name: str
    stage: str
    #: Stable, machine-detail-free failure class (``bug`` only).
    fingerprint: Optional[str] = None
    #: Human-readable detail of the deciding event.
    detail: str = ""
    #: Structured failures observed along the way (``handled`` events).
    handled: List[str] = field(default_factory=list)
    operations: int = 0
    resources: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "seed": self.seed,
            "profile": self.profile,
            "machine": self.machine_name,
            "stage": self.stage,
            "fingerprint": self.fingerprint,
            "detail": self.detail,
            "handled": list(self.handled),
            "operations": self.operations,
            "resources": self.resources,
        }


class _Bug(Exception):
    """Internal control flow: a divergence was detected."""

    def __init__(self, stage: str, fingerprint: str, detail: str):
        super().__init__(detail)
        self.stage = stage
        self.fingerprint = fingerprint
        self.detail = detail


def _budget(config: OracleConfig) -> Optional[Budget]:
    if config.max_units is None:
        return None
    return Budget(max_units=config.max_units)


def _probe_trajectories(
    machine: MachineDescription, seed: int, config: OracleConfig
) -> None:
    """Drive the three query representations through one seeded
    check/assign/free trajectory, cross-checking every answer against
    the brute-force reservation overlay."""
    rng = random.Random("fuzzprobe:%s:%d" % (machine.name, seed))
    modules = {
        rep: make_query_module(
            machine, rep, word_cycles=config.word_cycles, modulo=None
        )
        for rep in REPRESENTATIONS
    }
    ops = list(machine.operation_names)
    horizon = 3 * max(2, machine.max_table_length)
    placements: List[Tuple[str, int]] = []
    tokens: Dict[str, List[object]] = {rep: [] for rep in REPRESENTATIONS}
    for step in range(config.probe_steps):
        op = rng.choice(ops)
        cycle = rng.randrange(horizon)
        answers = {
            rep: modules[rep].check(op, cycle) for rep in REPRESENTATIONS
        }
        truth = schedule_is_contention_free(
            machine, placements + [(op, cycle)]
        )
        answers["overlay"] = truth
        if len(set(answers.values())) != 1:
            raise _Bug(
                "query",
                "divergence:query-check",
                "step %d: check(%r, %d) answers diverge: %s"
                % (
                    step, op, cycle,
                    sorted((k, v) for k, v in answers.items()),
                ),
            )
        if truth and rng.random() < 0.8:
            for rep in REPRESENTATIONS:
                tokens[rep].append(modules[rep].assign(op, cycle))
            placements.append((op, cycle))
        elif placements and rng.random() < 0.4:
            index = rng.randrange(len(placements))
            placements.pop(index)
            for rep in REPRESENTATIONS:
                modules[rep].free(tokens[rep].pop(index))


def _schedule_signature(result) -> Tuple:
    return (
        result.ii,
        tuple(sorted(result.times.items())),
        tuple(sorted(result.chosen_opcodes.items())),
    )


def _differential_schedules(
    original: MachineDescription,
    reduced: MachineDescription,
    seed: int,
    config: OracleConfig,
    handled: List[str],
) -> None:
    """Schedule seeded workloads on (original, reduced) x all three
    representations; every combination must behave identically."""
    for index in range(config.workloads):
        graph = generate_workload(
            original, seed * config.workloads + index,
            max_operations=config.workload_operations,
        )
        outcomes: Dict[Tuple[str, str], Tuple] = {}
        budget_hit = False
        for label, machine in (("original", original), ("reduced", reduced)):
            for rep in REPRESENTATIONS:
                scheduler = IterativeModuloScheduler(
                    machine,
                    representation=rep,
                    word_cycles=config.word_cycles,
                )
                try:
                    result = scheduler.schedule(
                        graph, budget=_budget(config)
                    )
                except BudgetExceeded:
                    budget_hit = True
                    break
                except ScheduleError as exc:
                    outcomes[(label, rep)] = (
                        "schedule-error", str(exc.ii_range)
                    )
                else:
                    outcomes[(label, rep)] = _schedule_signature(result)
            if budget_hit:
                break
        if budget_hit:
            # Work units differ across representations by design, so a
            # tripped budget forfeits the comparison for this workload.
            handled.append("budget:ims")
            continue
        distinct = set(outcomes.values())
        if len(distinct) != 1:
            raise _Bug(
                "schedule",
                "divergence:schedule",
                "workload %d: outcomes diverge across"
                " (description, representation): %s"
                % (index, sorted(
                    (k, str(v)) for k, v in outcomes.items()
                )),
            )
        only = next(iter(distinct))
        if only[0] == "schedule-error":
            handled.append("schedule-error")


def _differential_corpus(
    machine: MachineDescription,
    seed: int,
    config: OracleConfig,
    handled: List[str],
) -> None:
    """Corpus-schedule the seeded workloads (batch plane, shared
    compilation) against the per-loop compiled path; the two suites
    must match signature-for-signature, failed loops included."""
    graphs = [
        generate_workload(
            machine, seed * config.workloads + index,
            max_operations=config.workload_operations,
        )
        for index in range(config.workloads)
    ]
    legs: Dict[str, List] = {}
    for label, representation in (
        ("corpus-batch", BATCH), ("per-loop", COMPILED),
    ):
        result = CorpusScheduler(
            machine, representation=representation,
        ).schedule_suite(graphs, budget=_budget(config))
        if any(
            outcome.error_type == "BudgetExceeded"
            for outcome in result.outcomes
        ):
            # Work units differ between the batch and per-loop paths by
            # design, so a starved leg forfeits the comparison.
            handled.append("budget:corpus")
            return
        legs[label] = [
            ("schedule-error",) if outcome.failed else outcome.signature
            for outcome in result.outcomes
        ]
    batch_signatures = legs["corpus-batch"]
    if config.mutate_corpus_signatures is not None:
        batch_signatures = config.mutate_corpus_signatures(batch_signatures)
    if batch_signatures != legs["per-loop"]:
        diverging = sorted(
            index for index, (batch_sig, perloop_sig)
            in enumerate(zip(batch_signatures, legs["per-loop"]))
            if batch_sig != perloop_sig
        )
        raise _Bug(
            "batch",
            "divergence:batch",
            "corpus batch schedules diverge from the per-loop compiled"
            " path at workload(s) %s of %d"
            % (diverging, len(graphs)),
        )


def run_oracle(
    machine: MachineDescription,
    seed: int,
    config: Optional[OracleConfig] = None,
    profile: str = "",
) -> OracleOutcome:
    """Classify one machine's trip through the differential pipeline."""
    config = config or OracleConfig()
    handled: List[str] = []
    outcome = OracleOutcome(
        verdict=VERDICT_OK,
        seed=seed,
        profile=profile,
        machine_name=machine.name,
        stage="done",
        operations=machine.num_operations,
        resources=machine.num_resources,
    )
    stage = "lint"
    try:
        report = lint_machine(machine, rules=STRUCTURAL_RULES)
        if report.diagnostics:
            first = sorted(d.rule for d in report.diagnostics)[0]
            raise _Bug(
                "lint",
                "lint:%s" % first,
                "; ".join(
                    sorted(d.message for d in report.diagnostics)[:3]
                ),
            )

        stage = "query"
        _probe_trajectories(machine, seed, config)

        stage = "reduce"
        try:
            reduction = reduce_machine(machine, budget=_budget(config))
        except BudgetExceeded as exc:
            outcome.verdict = VERDICT_HANDLED
            outcome.stage = stage
            outcome.handled = handled + ["budget:%s" % (exc.phase or stage)]
            outcome.detail = str(exc)
            return outcome
        reduced = reduction.reduced
        if config.mutate_reduced is not None:
            reduced = config.mutate_reduced(reduced)

        stage = "equivalence"
        try:
            assert_equivalent(machine, reduced)
        except EquivalenceError as exc:
            # reduce_machine verifies its own output, so inequivalence
            # here is silent corruption between reduce and verify.
            raise _Bug(
                stage, "divergence:equivalence", str(exc)
            ) from exc

        stage = "certify"
        try:
            certificate = issue_certificate(reduction)
            check_certificate(certificate, machine, reduced)
        except BudgetExceeded as exc:
            handled.append("budget:certify")
            outcome.detail = str(exc)
        except CertificateError as exc:
            handled.append("certificate:%s" % (exc.kind or "unknown"))
            outcome.detail = str(exc)

        stage = "schedule"
        _differential_schedules(machine, reduced, seed, config, handled)

        stage = "batch"
        _differential_corpus(machine, seed, config, handled)
    except _Bug as bug:
        outcome.verdict = VERDICT_BUG
        outcome.stage = bug.stage
        outcome.fingerprint = bug.fingerprint
        outcome.detail = bug.detail
        outcome.handled = handled
        return outcome
    except ReproError as exc:
        outcome.verdict = VERDICT_BUG
        outcome.stage = stage
        outcome.fingerprint = "unhandled:%s" % type(exc).__name__
        outcome.detail = str(exc)
        outcome.handled = handled
        return outcome
    except Exception as exc:  # noqa: BLE001 - the oracle's whole job
        outcome.verdict = VERDICT_BUG
        outcome.stage = stage
        outcome.fingerprint = "crash:%s" % type(exc).__name__
        outcome.detail = "%s: %s" % (type(exc).__name__, exc)
        outcome.handled = handled
        return outcome
    outcome.handled = handled
    if handled:
        outcome.verdict = VERDICT_HANDLED
    return outcome


__all__ = [
    "OracleConfig",
    "OracleOutcome",
    "VERDICTS",
    "VERDICT_BUG",
    "VERDICT_HANDLED",
    "VERDICT_OK",
    "run_oracle",
]
