"""Composable chaos scenarios: seeded multi-fault plans.

Generalizes :mod:`repro.resilience.chaos` from six *fixed* fault classes
to seeded fault **plans**: ordered sequences of faults injected at named
pipeline phases.  A plan step names *where* the fault lands, not just
what it is:

``reduce``
    Description corruption (or a clock delay) while the fallback ladder
    is reducing — the classic single-fault chaos scenario.
``mid-ladder``
    Corruption *composed with* a tripping clock, so the ladder is
    already degrading when the corrupted rung is served.  Exercises the
    "never serve unverified" invariant under compound failure.
``cache-warm``
    The reduction cache is primed first and the fault lands on the warm
    entry, so the fault surfaces on a *hit* path, not a miss.
``artifact``
    A stored machine artifact is corrupted between write and load.

:func:`compose_plan` draws a plan from the seeded stream (string-keyed
``random.Random``, like every fuzz component); :func:`run_plan` executes
it step by step and reports per-step outcomes in the chaos harness's
``survived-fallback`` / ``detected`` vocabulary.  A step whose fault was
*not* handled marks the plan failed — the fuzz oracle reports that as a
``bug`` (the resilience layer broke its contract), while a structured
:class:`~repro.errors.BudgetExceeded` from the plan budget stays a
``handled`` outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ReproError
from repro.resilience.chaos import (
    DelayedClock,
    FAULT_DROP_USAGE,
    FAULT_FLIP_CHECKSUM,
    FAULT_PHASE_DELAY,
    FAULT_SHIFT_USAGE,
    FAULT_TRUNCATE_WRITE,
    FaultOutcome,
    inject_artifact_fault,
    inject_cache_fault,
    inject_corruption,
    inject_phase_delay,
)

PHASE_REDUCE = "reduce"
PHASE_MID_LADDER = "mid-ladder"
PHASE_CACHE_WARM = "cache-warm"
PHASE_ARTIFACT = "artifact"

PHASES = (PHASE_REDUCE, PHASE_MID_LADDER, PHASE_CACHE_WARM, PHASE_ARTIFACT)

#: Fault classes that make sense at each phase.
PHASE_FAULTS: Dict[str, Tuple[str, ...]] = {
    PHASE_REDUCE: (FAULT_DROP_USAGE, FAULT_SHIFT_USAGE, FAULT_PHASE_DELAY),
    PHASE_MID_LADDER: (FAULT_DROP_USAGE, FAULT_SHIFT_USAGE),
    PHASE_CACHE_WARM: (FAULT_TRUNCATE_WRITE, FAULT_FLIP_CHECKSUM),
    PHASE_ARTIFACT: (FAULT_TRUNCATE_WRITE, FAULT_FLIP_CHECKSUM),
}


@dataclass(frozen=True)
class PlanStep:
    """One fault at one named pipeline phase."""

    phase: str
    fault: str

    def to_dict(self) -> Dict[str, str]:
        return {"phase": self.phase, "fault": self.fault}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered multi-fault sequence."""

    seed: int
    steps: Tuple[PlanStep, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "steps": [step.to_dict() for step in self.steps],
        }


@dataclass
class StepOutcome:
    """A :class:`~repro.resilience.chaos.FaultOutcome` plus its phase."""

    step: PlanStep
    outcome: FaultOutcome

    @property
    def handled(self) -> bool:
        return self.outcome.handled

    def to_dict(self) -> Dict[str, object]:
        document = self.outcome.to_dict()
        document["phase"] = self.step.phase
        return document


@dataclass
class PlanReport:
    """Per-step outcomes of one executed plan."""

    machine: str
    plan: FaultPlan
    outcomes: List[StepOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.handled for outcome in self.outcomes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "plan": self.plan.to_dict(),
            "ok": self.ok,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def compose_plan(
    seed: int,
    length: int = 3,
    phases: Optional[Tuple[str, ...]] = None,
) -> FaultPlan:
    """Draw an ordered fault plan from the seeded stream.

    Every plan of length >= 2 includes at least one compound phase
    (mid-ladder or cache-warm) so plans exercise fault *interaction*,
    not just a shuffled version of the fixed classes.
    """
    if length < 1:
        raise ReproError("a fault plan needs at least one step")
    phases = tuple(phases if phases is not None else PHASES)
    unknown = [phase for phase in phases if phase not in PHASES]
    if unknown:
        raise ReproError(
            "unknown plan phase(s) %s (known: %s)"
            % (", ".join(sorted(unknown)), ", ".join(PHASES))
        )
    rng = random.Random("fuzzplan:%d" % seed)
    steps = []
    for _ in range(length):
        phase = rng.choice(phases)
        fault = rng.choice(PHASE_FAULTS[phase])
        steps.append(PlanStep(phase=phase, fault=fault))
    compound = (PHASE_MID_LADDER, PHASE_CACHE_WARM)
    wanted = tuple(p for p in compound if p in phases)
    if (
        length >= 2
        and wanted
        and not any(step.phase in compound for step in steps)
    ):
        phase = rng.choice(wanted)
        fault = rng.choice(PHASE_FAULTS[phase])
        index = rng.randrange(length)
        steps[index] = PlanStep(phase=phase, fault=fault)
    return FaultPlan(seed=seed, steps=tuple(steps))


def _run_step(
    machine: MachineDescription,
    seed: int,
    step: PlanStep,
    workdir: str,
) -> FaultOutcome:
    if step.phase == PHASE_REDUCE:
        if step.fault == FAULT_PHASE_DELAY:
            return inject_phase_delay(machine, seed)
        return inject_corruption(machine, seed, step.fault)
    if step.phase == PHASE_MID_LADDER:
        # Corruption with a clock that trips mid-ladder: the rungs race
        # the deadline while the reduced description is corrupt.
        rng = random.Random(
            "fuzzplan:%s:%d:%s" % (machine.name, seed, step.fault)
        )
        clock = DelayedClock(trip=rng.randrange(6, 14))
        outcome = inject_corruption(
            machine, seed, step.fault, clock=clock, deadline_s=60.0
        )
        outcome.detail = "mid-ladder (clock trips after %d calls): %s" % (
            clock.trip, outcome.detail,
        )
        return outcome
    if step.phase == PHASE_CACHE_WARM:
        return inject_cache_fault(machine, seed, workdir, fault=step.fault)
    if step.phase == PHASE_ARTIFACT:
        return inject_artifact_fault(machine, seed, step.fault, workdir)
    raise ReproError("unknown plan phase %r" % step.phase)


def run_plan(
    machine: MachineDescription,
    plan: FaultPlan,
    workdir: str,
    budget=None,
) -> PlanReport:
    """Execute a fault plan step by step.

    Deterministic in ``(machine, plan)``.  ``budget`` is checked before
    every step (phase ``"chaos-plan"``); exceeding it raises
    :class:`~repro.errors.BudgetExceeded` with the outcomes so far as
    the partial result.
    """
    report = PlanReport(machine=machine.name, plan=plan)
    for index, step in enumerate(plan.steps):
        if budget is not None:
            budget.checkpoint(
                "chaos-plan",
                units=machine.total_usages,
                progress="step %d/%d (%s@%s)"
                % (index + 1, len(plan.steps), step.fault, step.phase),
                partial=[o.to_dict() for o in report.outcomes],
            )
        # Vary the per-step seed so repeating a fault class at two plan
        # positions draws two different corruptions.
        outcome = _run_step(machine, plan.seed * 101 + index, step, workdir)
        report.outcomes.append(StepOutcome(step=step, outcome=outcome))
    return report


__all__ = [
    "FaultPlan",
    "PHASES",
    "PHASE_ARTIFACT",
    "PHASE_CACHE_WARM",
    "PHASE_MID_LADDER",
    "PHASE_REDUCE",
    "PHASE_FAULTS",
    "PlanReport",
    "PlanStep",
    "StepOutcome",
    "compose_plan",
    "run_plan",
]
