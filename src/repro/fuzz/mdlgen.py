"""Seeded machine-description generator.

Produces random-but-lintable machine descriptions from a
:class:`random.Random` seeded with a *string* key (string seeding is
deterministic regardless of ``PYTHONHASHSEED``, unlike hashing tuples).
Every structural choice is drawn from the seeded stream and every
iteration order is sorted, so ``generate_machine(seed, profile)`` is a
pure function of its arguments — the whole fuzzing subsystem inherits
byte-determinism from here.

A :class:`GeneratorProfile` parameterizes the shape of the space:
resource and operation counts, usage density, alternative probability,
latency spread, and *modulo-friendliness* (short tables, one usage per
row per operation, which keeps self-conflicts rare and loops
schedulable at small IIs).  Profiles also select a machine *family*:

``pipelined``
    Conventional shared-pipeline shapes (the paper's study machines).
``buffered-pu``
    Exposed-datapath buffered processing units after Dahlem,
    Bhagyanath and Schneider — transport buses are the scarce
    resource and every class has one alternative per bus (the
    permanent corpus machine :func:`repro.machines.buffered_pu` is
    the hand-written representative of this family).
``clustered-vliw``
    Two-cluster VLIW shapes with per-cluster alternatives and a
    shared crossbar (corpus representative
    :func:`repro.machines.clustered_vliw`).

Generated machines are guaranteed to pass the *structural* lint rules
(``negative-cycle``, ``cycle-overflow``, ``empty-operation``,
``duplicate-alternative``, ``dominated-alternative``,
``unused-resource``); the informational redundancy rules are expected
to fire — redundancy is precisely what the reduction under test
removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Tuple

from repro.core.machine import MachineBuilder, MachineDescription
from repro.scheduler.ddg import DependenceGraph

#: Machine families a profile can select.
FAMILY_PIPELINED = "pipelined"
FAMILY_BUFFERED_PU = "buffered-pu"
FAMILY_CLUSTERED = "clustered-vliw"

FAMILIES = (FAMILY_PIPELINED, FAMILY_BUFFERED_PU, FAMILY_CLUSTERED)

#: Lint rules every generated machine is guaranteed to pass.  The
#: oracle treats a finding from one of these as a generator bug.
STRUCTURAL_RULES = (
    "negative-cycle",
    "cycle-overflow",
    "empty-operation",
    "duplicate-alternative",
    "dominated-alternative",
    "unused-resource",
)


@dataclass(frozen=True)
class GeneratorProfile:
    """Shape parameters for one region of the description space."""

    name: str
    family: str = FAMILY_PIPELINED
    min_resources: int = 3
    max_resources: int = 6
    min_operations: int = 3
    max_operations: int = 7
    #: Upper bound on usage cycle indices (well under the lint
    #: ``cycle-overflow`` plausibility bound of 512).
    max_cycle: int = 8
    #: Expected extra usages per operation beyond the mandatory one.
    usage_density: float = 1.5
    #: Probability that an operation class carries alternatives.
    alternative_prob: float = 0.3
    max_alternatives: int = 3
    #: Result-latency metadata range (inclusive).
    max_latency: int = 4
    #: Keep tables short and one-usage-per-row so self-conflicts stay
    #: rare and small loops schedule at small IIs.
    modulo_friendly: bool = True

    def derived(self, **changes) -> "GeneratorProfile":
        """A renamed copy with some fields overridden."""
        return replace(self, **changes)


#: The built-in profile registry, keyed by profile name.
PROFILES: Dict[str, GeneratorProfile] = {}


def _register(profile: GeneratorProfile) -> GeneratorProfile:
    PROFILES[profile.name] = profile
    return profile


MIXED = _register(GeneratorProfile(name="mixed"))
TINY = _register(
    GeneratorProfile(
        name="tiny",
        min_resources=1,
        max_resources=2,
        min_operations=1,
        max_operations=3,
        max_cycle=3,
        usage_density=0.8,
        alternative_prob=0.5,
        max_latency=2,
    )
)
DEEP = _register(
    GeneratorProfile(
        name="deep",
        min_resources=4,
        max_resources=8,
        min_operations=4,
        max_operations=9,
        max_cycle=24,
        usage_density=2.5,
        alternative_prob=0.2,
        max_latency=12,
        modulo_friendly=False,
    )
)
BUFFERED_PU = _register(
    GeneratorProfile(
        name="buffered-pu",
        family=FAMILY_BUFFERED_PU,
        min_resources=2,  # processing units, not raw rows
        max_resources=3,
        min_operations=2,
        max_operations=4,
        max_cycle=6,
        max_latency=6,
    )
)
CLUSTERED = _register(
    GeneratorProfile(
        name="clustered-vliw",
        family=FAMILY_CLUSTERED,
        min_operations=3,
        max_operations=5,
        max_cycle=4,
        max_latency=4,
    )
)


def machine_key(profile_name: str, seed: int) -> str:
    """The string RNG key of one generated machine (stable identity)."""
    return "mdlgen:%s:%d" % (profile_name, seed)


def _usage_set(table: Dict[str, List[int]]) -> FrozenSet[Tuple[str, int]]:
    return frozenset(
        (resource, cycle)
        for resource, cycles in table.items()
        for cycle in cycles
    )


def _comparable(a: FrozenSet, b: FrozenSet) -> bool:
    """True when one usage set contains the other (lint would flag it
    as a duplicate or dominated alternative)."""
    return a <= b or b <= a


def _random_table(
    rng: random.Random,
    resources: List[str],
    profile: GeneratorProfile,
) -> Dict[str, List[int]]:
    """One non-empty reservation table over the given resource pool."""
    count = 1
    while (
        count < len(resources)
        and rng.random() < profile.usage_density / (count + 1)
    ):
        count += 1
    chosen = rng.sample(resources, count)
    table: Dict[str, List[int]] = {}
    for resource in sorted(chosen):
        if profile.modulo_friendly:
            cycles = [rng.randint(0, profile.max_cycle)]
        else:
            first = rng.randint(0, profile.max_cycle)
            span = rng.randint(1, 3)
            cycles = list(
                range(first, min(first + span, profile.max_cycle + 1))
            )
        table[resource] = cycles
    return table


def _pipelined(rng: random.Random, profile: GeneratorProfile, name: str):
    builder = MachineBuilder(name)
    n_res = rng.randint(profile.min_resources, profile.max_resources)
    resources = ["r%d" % i for i in range(n_res)]
    n_ops = rng.randint(profile.min_operations, profile.max_operations)
    for index in range(n_ops):
        op = "op%d" % index
        latency = rng.randint(0, profile.max_latency)
        if rng.random() < profile.alternative_prob:
            wanted = rng.randint(2, profile.max_alternatives)
            variants: List[Dict[str, List[int]]] = []
            kept: List[FrozenSet] = []
            for _ in range(wanted * 3):
                if len(variants) == wanted:
                    break
                candidate = _random_table(rng, resources, profile)
                usages = _usage_set(candidate)
                if any(_comparable(usages, seen) for seen in kept):
                    continue
                variants.append(candidate)
                kept.append(usages)
            builder.operation_with_alternatives(op, variants, latency=latency)
        else:
            builder.operation(
                op, _random_table(rng, resources, profile), latency=latency
            )
    return builder


def _buffered_pu(rng: random.Random, profile: GeneratorProfile, name: str):
    builder = MachineBuilder(name)
    n_pus = rng.randint(profile.min_resources, profile.max_resources)
    n_buses = 2
    buses = ["bus.%d" % i for i in range(n_buses)]
    for index in range(n_pus):
        pu = "pu%d" % index
        span = 1 if profile.modulo_friendly and rng.random() < 0.5 \
            else rng.randint(1, 3)
        rows = {
            "%s.in" % pu: [0],
            "%s.fu" % pu: list(range(1, 1 + span)),
            "%s.out" % pu: [1 + span],
        }
        variants = []
        for bus in buses:
            usages = {bus: [0]}
            usages.update(rows)
            variants.append(usages)
        builder.operation_with_alternatives(
            "%s_op" % pu, variants, latency=1 + span
        )
    # Result moves contend only for transport bandwidth.
    builder.operation_with_alternatives(
        "mov", [{bus: [0]} for bus in buses], latency=1
    )
    return builder


def _clustered(rng: random.Random, profile: GeneratorProfile, name: str):
    builder = MachineBuilder(name)
    clusters = ("c0", "c1")
    n_ops = rng.randint(profile.min_operations, profile.max_operations)
    for index in range(n_ops):
        op = "op%d" % index
        unit = rng.choice(("alu", "mem"))
        span = 1 if profile.modulo_friendly and rng.random() < 0.7 \
            else rng.randint(1, 2)
        latency = rng.randint(0, profile.max_latency)
        variants = []
        for cluster in clusters:
            usages = {
                "%s.issue" % cluster: [0],
                "%s.%s" % (cluster, unit): list(range(span)),
            }
            if rng.random() < 0.7:
                usages["%s.wb" % cluster] = [span]
            variants.append(usages)
        builder.operation_with_alternatives(op, variants, latency=latency)
    # Cross-cluster copies keep the crossbar row used on every shape.
    builder.operation_with_alternatives(
        "xmov",
        [
            {"c0.issue": [0], "xbar": [1], "c1.wb": [2]},
            {"c1.issue": [0], "xbar": [1], "c0.wb": [2]},
        ],
        latency=2,
    )
    return builder


_FAMILY_BUILDERS = {
    FAMILY_PIPELINED: _pipelined,
    FAMILY_BUFFERED_PU: _buffered_pu,
    FAMILY_CLUSTERED: _clustered,
}


def generate_machine(
    seed: int, profile: GeneratorProfile = MIXED
) -> MachineDescription:
    """Generate one machine description, a pure function of its inputs."""
    key = machine_key(profile.name, seed)
    rng = random.Random(key)
    builder = _FAMILY_BUILDERS[profile.family](rng, profile, key)
    return builder.build()


def schedulable_opcodes(machine: MachineDescription) -> List[str]:
    """Opcodes a workload may name: alternative-group bases plus
    operations outside any group (variants are reached through their
    base by ``check_with_alternatives``)."""
    groups = machine.alternatives
    variants = {v for members in groups.values() for v in members}
    names = set(groups)
    names.update(
        op for op in machine.operation_names if op not in variants
    )
    return sorted(names)


def generate_workload(
    machine: MachineDescription,
    seed: int,
    max_operations: int = 6,
) -> DependenceGraph:
    """A small seeded loop body over the machine's own opcodes.

    Edges only go from earlier to later nodes (acyclic at distance 0 by
    construction); an occasional loop-carried self-edge adds a
    recurrence so RecMII is exercised too.
    """
    key = "fuzzload:%s:%d" % (machine.name, seed)
    rng = random.Random(key)
    opcodes = schedulable_opcodes(machine)
    graph = DependenceGraph("fuzz-%d" % seed)
    count = rng.randint(2, max(2, max_operations))
    names = []
    for index in range(count):
        opcode = rng.choice(opcodes)
        node = "n%d" % index
        graph.add_operation(node, opcode)
        names.append((node, opcode))
    for index in range(1, count):
        node, _ = names[index]
        src, src_opcode = names[rng.randrange(index)]
        latency = machine.latency_of(src_opcode, default=1) or 1
        graph.add_dependence(src, node, latency=latency)
        if rng.random() < 0.2:
            extra_src, extra_opcode = names[rng.randrange(index)]
            if extra_src != src:
                graph.add_dependence(
                    extra_src, node,
                    latency=machine.latency_of(extra_opcode, default=1) or 1,
                )
    if count >= 2 and rng.random() < 0.4:
        node, opcode = names[rng.randrange(count)]
        graph.add_dependence(
            node, node,
            latency=max(1, machine.latency_of(opcode, default=1) or 1),
            distance=rng.randint(1, 2),
        )
    return graph


__all__ = [
    "BUFFERED_PU",
    "CLUSTERED",
    "DEEP",
    "FAMILIES",
    "GeneratorProfile",
    "MIXED",
    "PROFILES",
    "STRUCTURAL_RULES",
    "TINY",
    "generate_machine",
    "generate_workload",
    "machine_key",
    "schedulable_opcodes",
]
