"""Seeded, fully deterministic fuzzing for the reduction pipeline.

Four planes (see ``docs/fuzzing.md``):

* :mod:`repro.fuzz.mdlgen` — machine-description generator (profiles,
  machine families, seeded workloads);
* :mod:`repro.fuzz.oracle` — differential pipeline oracle classifying
  every generated machine as ``ok`` / ``handled`` / ``bug``;
* :mod:`repro.fuzz.shrink` — greedy minimizer + checksummed repro
  bundles;
* :mod:`repro.fuzz.plans` — composable chaos scenarios (seeded
  multi-fault plans at named pipeline phases).

:func:`repro.fuzz.campaign.run_campaign` ties them together and backs
the ``repro fuzz`` CLI.
"""

from repro.fuzz.campaign import (
    FUZZ_SCHEMA_NAME,
    FUZZ_SCHEMA_VERSION,
    machine_seed,
    run_campaign,
)
from repro.fuzz.mdlgen import (
    FAMILIES,
    GeneratorProfile,
    PROFILES,
    STRUCTURAL_RULES,
    generate_machine,
    generate_workload,
    schedulable_opcodes,
)
from repro.fuzz.oracle import (
    OracleConfig,
    OracleOutcome,
    VERDICTS,
    VERDICT_BUG,
    VERDICT_HANDLED,
    VERDICT_OK,
    run_oracle,
)
from repro.fuzz.plans import (
    FaultPlan,
    PHASES,
    PlanReport,
    PlanStep,
    compose_plan,
    run_plan,
)
from repro.fuzz.shrink import (
    ShrinkResult,
    load_repro_bundle,
    shrink,
    write_repro_bundle,
)

__all__ = [
    "FAMILIES",
    "FUZZ_SCHEMA_NAME",
    "FUZZ_SCHEMA_VERSION",
    "FaultPlan",
    "GeneratorProfile",
    "OracleConfig",
    "OracleOutcome",
    "PHASES",
    "PROFILES",
    "PlanReport",
    "PlanStep",
    "STRUCTURAL_RULES",
    "ShrinkResult",
    "VERDICTS",
    "VERDICT_BUG",
    "VERDICT_HANDLED",
    "VERDICT_OK",
    "compose_plan",
    "generate_machine",
    "generate_workload",
    "load_repro_bundle",
    "machine_seed",
    "run_campaign",
    "run_oracle",
    "run_plan",
    "schedulable_opcodes",
    "shrink",
    "write_repro_bundle",
]
