"""Greedy minimizer for failing machine descriptions.

Given a machine on which the differential oracle reports a ``bug``, the
shrinker tries a deterministic sequence of simplifying transforms —
drop an alternative group, drop an operation, drop a resource row, drop
a single usage, truncate multi-cycle usages, discard latency metadata —
and accepts a candidate only when the oracle still reports a ``bug``
with the *identical fingerprint*.  The loop restarts after every
accepted candidate (greedy descent) and stops at a fixpoint or the
attempt cap, so the result is a local minimum that still reproduces the
original failure class.

The minimal repro ships as a checksummed artifact bundle — the MDL, the
seed, and the oracle report — written through the resilience store, so
a bundle that survives transport unmodified is verifiable offline and a
corrupted one refuses to load.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.fuzz.oracle import (
    OracleConfig,
    OracleOutcome,
    VERDICT_BUG,
    run_oracle,
)
from repro.resilience import artifacts

#: Schema tag of the repro-bundle report document.
REPRO_SCHEMA_NAME = "repro-fuzz-repro"
REPRO_SCHEMA_VERSION = 1

#: File names inside a repro bundle directory.
BUNDLE_MACHINE = "machine.mdl"
BUNDLE_REPORT = "repro.json"


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    machine: MachineDescription
    outcome: OracleOutcome
    rounds: int
    attempts: int
    accepted: int

    @property
    def fingerprint(self) -> Optional[str]:
        return self.outcome.fingerprint


def _rebuild(
    machine: MachineDescription,
    operations: Dict[str, Dict[str, List[int]]],
) -> Optional[MachineDescription]:
    """A machine with the given operation tables, restricting groups and
    latencies; ``None`` when the result would be degenerate."""
    if not operations:
        return None
    alternatives = {}
    for base, variants in machine.alternatives.items():
        kept = tuple(v for v in variants if v in operations)
        if kept:
            alternatives[base] = kept
    latencies = {
        op: value
        for op, value in machine.latencies.items()
        if op in operations or op in alternatives
    }
    used = set()
    for table in operations.values():
        used.update(table)
    resources = [r for r in machine.resources if r in used]
    return MachineDescription(
        machine.name, operations, resources, alternatives, latencies
    )


def _tables(machine: MachineDescription) -> Dict[str, Dict[str, List[int]]]:
    return {
        op: {
            resource: sorted(machine.table(op).usage_set(resource))
            for resource in machine.table(op).resources
        }
        for op in machine.operation_names
    }


def _candidates(
    machine: MachineDescription,
) -> Iterator[Tuple[str, MachineDescription]]:
    """Simplified variants of ``machine`` in deterministic order, from
    coarsest (drop a whole group) to finest (drop latency metadata)."""
    tables = _tables(machine)

    # Drop a whole alternative group.
    for base in sorted(machine.alternatives):
        remaining = {
            op: table for op, table in tables.items()
            if op not in machine.alternatives[base]
        }
        candidate = _rebuild(machine, remaining)
        if candidate is not None:
            yield ("drop-group:%s" % base, candidate)

    # Drop a single operation (group variant or plain).
    for op in sorted(tables):
        remaining = {
            name: table for name, table in tables.items() if name != op
        }
        candidate = _rebuild(machine, remaining)
        if candidate is not None:
            yield ("drop-op:%s" % op, candidate)

    # Drop a resource row everywhere (and any operation it empties).
    for resource in machine.resources:
        remaining = {}
        for op, table in sorted(tables.items()):
            kept = {r: c for r, c in table.items() if r != resource}
            if kept:
                remaining[op] = kept
        candidate = _rebuild(machine, remaining)
        if candidate is not None:
            yield ("drop-resource:%s" % resource, candidate)

    # Drop one usage row from one operation.
    for op in sorted(tables):
        if len(tables[op]) < 2:
            continue
        for resource in sorted(tables[op]):
            remaining = {
                name: dict(table) for name, table in tables.items()
            }
            remaining[op] = {
                r: c for r, c in remaining[op].items() if r != resource
            }
            candidate = _rebuild(machine, remaining)
            if candidate is not None:
                yield ("drop-usage:%s:%s" % (op, resource), candidate)

    # Truncate a multi-cycle usage to its first cycle.
    for op in sorted(tables):
        for resource in sorted(tables[op]):
            cycles = tables[op][resource]
            if len(cycles) < 2:
                continue
            remaining = {
                name: dict(table) for name, table in tables.items()
            }
            remaining[op] = dict(remaining[op])
            remaining[op][resource] = cycles[:1]
            candidate = _rebuild(machine, remaining)
            if candidate is not None:
                yield ("truncate:%s:%s" % (op, resource), candidate)

    # Discard latency metadata wholesale.
    if machine.latencies:
        candidate = MachineDescription(
            machine.name, tables,
            machine.resources, machine.alternatives, None,
        )
        yield ("drop-latencies", candidate)


def shrink(
    machine: MachineDescription,
    seed: int,
    fingerprint: str,
    config: Optional[OracleConfig] = None,
    profile: str = "",
    max_attempts: int = 400,
) -> ShrinkResult:
    """Greedily minimize ``machine`` while the oracle keeps reporting a
    ``bug`` with exactly ``fingerprint``."""
    config = config or OracleConfig()
    current = machine
    outcome = run_oracle(current, seed, config, profile=profile)
    if outcome.verdict != VERDICT_BUG or outcome.fingerprint != fingerprint:
        raise ValueError(
            "shrink precondition failed: oracle reports %r/%r, expected"
            " bug/%r" % (outcome.verdict, outcome.fingerprint, fingerprint)
        )
    attempts = 0
    rounds = 0
    accepted = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        rounds += 1
        for _label, candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            candidate_outcome = run_oracle(
                candidate, seed, config, profile=profile
            )
            if (
                candidate_outcome.verdict == VERDICT_BUG
                and candidate_outcome.fingerprint == fingerprint
            ):
                current = candidate
                outcome = candidate_outcome
                accepted += 1
                progressed = True
                break
    return ShrinkResult(
        machine=current,
        outcome=outcome,
        rounds=rounds,
        attempts=attempts,
        accepted=accepted,
    )


# ----------------------------------------------------------------------
# Repro bundles
# ----------------------------------------------------------------------
def write_repro_bundle(
    directory: str,
    result: ShrinkResult,
    seed: int,
    profile: str = "",
) -> Dict[str, object]:
    """Write a minimal-repro bundle (checksummed MDL + oracle report).

    Returns a manifest naming both artifacts and their digests, suitable
    for embedding in the fuzz report.
    """
    os.makedirs(directory, exist_ok=True)
    machine_path = os.path.join(directory, BUNDLE_MACHINE)
    report_path = os.path.join(directory, BUNDLE_REPORT)
    machine_meta = artifacts.write_machine(machine_path, result.machine)
    document = {
        "schema": REPRO_SCHEMA_NAME,
        "version": REPRO_SCHEMA_VERSION,
        "seed": seed,
        "profile": profile,
        "fingerprint": result.fingerprint,
        "outcome": result.outcome.to_dict(),
        "shrink": {
            "rounds": result.rounds,
            "attempts": result.attempts,
            "accepted": result.accepted,
        },
    }
    report_meta = artifacts.write_json(
        report_path, document, kind="fuzz-repro"
    )
    return {
        "directory": directory,
        "machine": {
            "path": machine_path,
            "sha256": machine_meta.get("sha256"),
        },
        "report": {
            "path": report_path,
            "sha256": report_meta.get("sha256"),
        },
        "fingerprint": result.fingerprint,
    }


def load_repro_bundle(
    directory: str,
) -> Tuple[MachineDescription, Dict[str, object]]:
    """Load and verify a repro bundle; raises
    :class:`~repro.errors.ArtifactIntegrityError` on any corruption."""
    machine = artifacts.load_machine(os.path.join(directory, BUNDLE_MACHINE))
    text, _header = artifacts.read_artifact(
        os.path.join(directory, BUNDLE_REPORT), expect_kind="fuzz-repro"
    )
    return machine, json.loads(text)


__all__ = [
    "BUNDLE_MACHINE",
    "BUNDLE_REPORT",
    "REPRO_SCHEMA_NAME",
    "REPRO_SCHEMA_VERSION",
    "ShrinkResult",
    "load_repro_bundle",
    "shrink",
    "write_repro_bundle",
]
