"""Code generation: compile a machine description into a checker module."""

from repro.codegen.compiler import (
    CompiledChecker,
    compile_checker,
    generate_checker_source,
)

__all__ = [
    "CompiledChecker",
    "compile_checker",
    "generate_checker_source",
]
