"""Columnar batch plane: corpus-scale contention queries (ROADMAP item 3).

The compiled representation (:mod:`repro.query.compiled`) answers one
window scan by OR-ing one shifted collision bitset per *distinct live
(class, cycle) pair* — cost proportional to the partial schedule.  This
module keeps that OR **incrementally materialized**: per operation
class, a column of per-slot conflict *counts* is updated on every
``assign``/``free`` (one vectorized column addition), so any window scan
is an O(1) fetch of the class column no matter how many operations are
live.

Layout: the counts form an N-slots x M-classes matrix — N = II for a
modulo reservation table (the ring the corpus scheduler lives on), or a
bias-grown cycle axis for scalar tables.  Two interchangeable backends
hold the ring matrix:

* **numpy** (when importable): one ``(classes, II)`` integer array;
  an assign is one rolled matrix addition, a column fetch packs the
  nonzero lanes back into the big-int the compiled window math expects.
* **pure** (always available): per-class packed big-int columns with a
  slot-count dict — no dependencies, bit-identical results.

``REPRO_BATCH_BACKEND`` (``auto``/``numpy``/``pure``) forces the choice;
backends are *bit-identical* by construction (both derive the same
blocked big-ints, and work is charged from logical events, never from
backend internals), so schedules and ``batch`` unit counts never depend
on whether numpy is installed.  Scalar (non-modulo) columns use the
packed-int implementation under both backends — the corpus hot path is
the modulo ring.

Work currency: the read path charges the ``batch`` currency.  A lone
window scan costs one unit (one column fetch); a bulk invocation
(``check_matrix`` / ``first_free_bulk`` / the alternatives scan) costs
one unit in modulo mode — a *single* vectorized ring-matrix fetch
(:meth:`rings_of <._NumpyRingColumns.rings_of>`) covers every class the
invocation touches — and one unit per distinct class column in scalar
mode, where columns are independent packed integers.  Column
*maintenance* is write-path cost: each assign/free tops up the
triggering call's own ``assign``/``assign&free``/``free`` units by one
per column update, so the check-path currencies (``check`` +
``check_range`` + ``first_free`` + ``batch``) stay a pure read-path
measure, comparable against the per-loop numbers they replace.

Schedules are byte-identical to the compiled module's: the blocked
window a column fetch yields equals the compiled OR (a slot's count is
positive iff some live pair's bitset covers it), and all downstream
window math — self-conflict short circuit, effective width, downward
residue scan, variant-major shrink — is inherited, not reimplemented.

:class:`SharedCompilation` amortizes machine-level compilation across a
corpus: one :class:`~repro.query.compiled.CompiledKernel` per machine
digest with shared per-II fold caches, so ``compile`` is charged once
per corpus instead of once per loop per II attempt.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.machine import MachineDescription
from repro.errors import QueryError
from repro.query.alternatives import ROUND_ROBIN, order_variants
from repro.query.base import ScheduledToken
from repro.query.compiled import CompiledQueryModule, compiled_kernel
from repro.query.work import ASSIGN, ASSIGN_FREE, BATCH, FREE

#: Environment override for the column backend: ``auto`` (default),
#: ``numpy``, or ``pure``.
BACKEND_ENV = "REPRO_BATCH_BACKEND"
BACKEND_NUMPY = "numpy"
BACKEND_PURE = "pure"

_NUMPY = None
_NUMPY_PROBED = False


def _numpy_module():
    """The numpy module, or ``None`` when not importable (probed once)."""
    global _NUMPY, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        _NUMPY_PROBED = True
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def numpy_available() -> bool:
    """True when the numpy backend can be selected."""
    return _numpy_module() is not None


def batch_backend() -> str:
    """Resolve the column backend name (env override, then autodetect)."""
    choice = os.environ.get(BACKEND_ENV, "auto").strip().lower()
    if choice in ("", "auto"):
        return BACKEND_NUMPY if numpy_available() else BACKEND_PURE
    if choice == BACKEND_NUMPY:
        if not numpy_available():
            raise QueryError(
                "%s=numpy but numpy is not importable" % BACKEND_ENV
            )
        return BACKEND_NUMPY
    if choice == BACKEND_PURE:
        return BACKEND_PURE
    raise QueryError(
        "unknown batch backend %r (expected auto, numpy, or pure)" % choice
    )


def machine_digest(machine: MachineDescription) -> str:
    """Stable content digest of a machine description.

    The corpus driver keys shared compilations (and shards
    multiprocessing fan-out) by this digest: equal descriptions share
    one kernel regardless of object identity.
    """
    from repro.mdl import dumps

    return hashlib.sha256(dumps(machine).encode("utf-8")).hexdigest()


class _ClassIncrement:
    """Per-source-class column increment: one ring per target class.

    ``rings[x]`` is the packed bitset the source class contributes to
    target class ``x``'s column (before rotation/shift to the source's
    cycle).  The numpy indicator matrix is derived lazily.
    """

    __slots__ = ("rings", "_matrix")

    def __init__(self, rings: List[int]):
        self.rings = rings
        self._matrix = None

    def matrix(self, slots: int):
        """The ``(classes, slots)`` 0/1 indicator array (numpy only)."""
        if self._matrix is None:
            np = _numpy_module()
            mat = np.zeros((len(self.rings), slots), dtype=np.int64)
            for index, ring in enumerate(self.rings):
                bits = ring
                while bits:
                    low = bits & -bits
                    bits ^= low
                    mat[index, low.bit_length() - 1] = 1
            self._matrix = mat
        return self._matrix


class _PureRingColumns:
    """Modulo ring columns: packed big-int per class + slot counts."""

    name = BACKEND_PURE

    def __init__(self, num_classes: int, slots: int):
        self.slots = slots
        self._counts: List[Dict[int, int]] = [
            {} for _ in range(num_classes)
        ]
        self._rings = [0] * num_classes

    def _rotated(self, bits: int, rotation: int) -> int:
        if not rotation:
            return bits
        slots = self.slots
        return ((bits << rotation) | (bits >> (slots - rotation))) & (
            (1 << slots) - 1
        )

    def add(self, incr: _ClassIncrement, rotation: int) -> None:
        for index, ring in enumerate(incr.rings):
            if not ring:
                continue
            bits = self._rotated(ring, rotation)
            counts = self._counts[index]
            while bits:
                low = bits & -bits
                bits ^= low
                slot = low.bit_length() - 1
                count = counts.get(slot, 0) + 1
                counts[slot] = count
                if count == 1:
                    self._rings[index] |= low

    def sub(self, incr: _ClassIncrement, rotation: int) -> None:
        for index, ring in enumerate(incr.rings):
            if not ring:
                continue
            bits = self._rotated(ring, rotation)
            counts = self._counts[index]
            while bits:
                low = bits & -bits
                bits ^= low
                slot = low.bit_length() - 1
                count = counts[slot] - 1
                if count:
                    counts[slot] = count
                else:
                    del counts[slot]
                    self._rings[index] &= ~low

    def ring(self, class_index: int) -> int:
        return self._rings[class_index]

    def rings_of(self, class_indices: Sequence[int]) -> List[int]:
        """Many rings in one fetch — O(1) each, maintained incrementally."""
        return [self._rings[index] for index in class_indices]

    def clear(self) -> None:
        for counts in self._counts:
            counts.clear()
        self._rings = [0] * len(self._rings)


class _NumpyRingColumns:
    """Modulo ring columns: one ``(classes, slots)`` count matrix."""

    name = BACKEND_NUMPY

    def __init__(self, num_classes: int, slots: int):
        np = _numpy_module()
        self.slots = slots
        self._counts = np.zeros((num_classes, slots), dtype=np.int64)

    def add(self, incr: _ClassIncrement, rotation: int) -> None:
        np = _numpy_module()
        self._counts += np.roll(incr.matrix(self.slots), rotation, axis=1)

    def sub(self, incr: _ClassIncrement, rotation: int) -> None:
        np = _numpy_module()
        self._counts -= np.roll(incr.matrix(self.slots), rotation, axis=1)

    def ring(self, class_index: int) -> int:
        np = _numpy_module()
        packed = np.packbits(
            self._counts[class_index] > 0, bitorder="little"
        )
        return int.from_bytes(packed.tobytes(), "little")

    def rings_of(self, class_indices: Sequence[int]) -> List[int]:
        """Many rings in one vectorized fetch: a single sub-matrix
        compare + packbits over all requested rows at once."""
        np = _numpy_module()
        packed = np.packbits(
            self._counts[list(class_indices)] > 0,
            axis=1, bitorder="little",
        )
        return [
            int.from_bytes(row.tobytes(), "little") for row in packed
        ]

    def clear(self) -> None:
        self._counts[:] = 0


class _ScalarColumns:
    """Scalar (non-modulo) columns: bias-grown packed-int per class.

    Used by both backends — the scalar axis is unbounded, so the
    packed-int representation (identical to the compiled reserved
    table's bias scheme) is the natural store.  Positions are kept
    unbiased in the count keys; the packed column grows its bias like
    the compiled module's reserved integer.
    """

    name = "scalar"

    def __init__(self, num_classes: int):
        self._counts: List[Dict[int, int]] = [
            {} for _ in range(num_classes)
        ]
        self._columns = [0] * num_classes
        self._bias = 0

    def _grow(self, position: int) -> None:
        biased = position + self._bias
        if biased < 0:
            grow = -biased
            self._columns = [col << grow for col in self._columns]
            self._bias += grow

    def add(self, incr: _ClassIncrement, base: int) -> None:
        for index, bits in enumerate(incr.rings):
            if not bits:
                continue
            counts = self._counts[index]
            remaining = bits
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                position = base + low.bit_length() - 1
                count = counts.get(position, 0) + 1
                counts[position] = count
                if count == 1:
                    self._grow(position)
                    self._columns[index] |= 1 << (position + self._bias)

    def sub(self, incr: _ClassIncrement, base: int) -> None:
        for index, bits in enumerate(incr.rings):
            if not bits:
                continue
            counts = self._counts[index]
            remaining = bits
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                position = base + low.bit_length() - 1
                count = counts[position] - 1
                if count:
                    counts[position] = count
                else:
                    del counts[position]
                    self._columns[index] &= ~(
                        1 << (position + self._bias)
                    )

    def window(self, class_index: int, start: int, width: int) -> int:
        """Blocked bits of ``[start, start + width)`` for one class."""
        shift = start + self._bias
        column = self._columns[class_index]
        if shift >= 0:
            column >>= shift
        else:
            column <<= -shift
        return column & ((1 << width) - 1)

    def clear(self) -> None:
        for counts in self._counts:
            counts.clear()
        self._columns = [0] * len(self._columns)
        self._bias = 0


class SharedCompilation:
    """Machine-level compiled state shared across a corpus of loops.

    One :class:`~repro.query.compiled.CompiledKernel` per machine
    digest, plus the per-II lazy caches (mask folds, pair rings,
    self-conflict flags, column increments) every
    :class:`BatchQueryModule` of the corpus reuses.  The kernel build
    cost is charged to ``compile`` exactly once — by the first module
    constructed against this handle — instead of once per loop per II
    attempt; per-II folds are likewise charged by whichever module
    builds them first.

    ``charge_compile=False`` suppresses compile charging entirely
    (multiprocessing workers, whose kernel the parent already charged).
    """

    def __init__(
        self, machine: MachineDescription, charge_compile: bool = True
    ):
        self.machine = machine
        self.kernel = compiled_kernel(machine)
        self.digest = machine_digest(machine)
        self.charge_compile = charge_compile
        self._kernel_charged = False
        self._folds: Dict[Optional[int], Dict] = {}
        self._pairs: Dict[Optional[int], Dict] = {}
        self._self_conflicts: Dict[Optional[int], Dict[str, bool]] = {}
        self._increments: Dict[Optional[int], Dict[str, _ClassIncrement]] = {}

    def mark_kernel_charged(self) -> bool:
        """True exactly once, when the kernel build should be charged."""
        if not self.charge_compile or self._kernel_charged:
            return False
        self._kernel_charged = True
        return True

    def fold_cache(self, modulo: Optional[int]) -> Dict:
        return self._folds.setdefault(modulo, {})

    def pair_fold(self, modulo: Optional[int]) -> Dict:
        return self._pairs.setdefault(modulo, {})

    def self_conflicts(self, modulo: Optional[int]) -> Dict[str, bool]:
        return self._self_conflicts.setdefault(modulo, {})

    def increments(
        self, modulo: Optional[int]
    ) -> Dict[str, _ClassIncrement]:
        return self._increments.setdefault(modulo, {})


class BatchQueryModule(CompiledQueryModule):
    """Compiled query module with incrementally-maintained columns.

    Inherits the compiled module's reserved-table protocol verbatim
    (``check``, blame decoding, the optimistic/update-mode
    ``assign&free``), and replaces only the window-scan derivation: the
    per-class blocked column is kept current across assigns and frees,
    so ``first_free``/``check_range`` cost one ``batch`` unit instead
    of one ``check_range`` unit per live collision pair.

    Parameters
    ----------
    machine / modulo:
        As for :class:`~repro.query.compiled.CompiledQueryModule`.
    shared:
        Optional :class:`SharedCompilation` handle: per-II caches are
        shared and compilation is charged once per corpus.  Without it
        the module charges compilation per construction, exactly like
        the compiled representation.
    """

    def __init__(
        self,
        machine: MachineDescription,
        modulo: Optional[int] = None,
        shared: Optional[SharedCompilation] = None,
    ):
        self._shared = shared
        super().__init__(machine, modulo=modulo)
        if shared is not None:
            self._fold_cache = shared.fold_cache(modulo)
            self._pair_fold = shared.pair_fold(modulo)
            self._sc_cache = shared.self_conflicts(modulo)
            self._increments = shared.increments(modulo)
        else:
            self._sc_cache = {}
            self._increments = {}
        kernel = self._kernel
        self._classes = sorted(set(kernel.rep_of.values()))
        self._class_index = {
            rep: index for index, rep in enumerate(self._classes)
        }
        self.backend = batch_backend()
        if modulo is not None:
            if self.backend == BACKEND_NUMPY:
                self._cols = _NumpyRingColumns(len(self._classes), modulo)
            else:
                self._cols = _PureRingColumns(len(self._classes), modulo)
        else:
            self._cols = _ScalarColumns(len(self._classes))
        #: Active bulk invocation's vectorized ring fetch (modulo mode):
        #: ``class_index -> ring``, or ``None`` outside bulk calls.
        self._ring_prefetch: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Shared-compilation charging
    # ------------------------------------------------------------------
    def _charge_construction(self) -> None:
        shared = self._shared
        if shared is None:
            super()._charge_construction()
        elif shared.mark_kernel_charged():
            super()._charge_construction()

    # ------------------------------------------------------------------
    # Column maintenance (the batch plane's write path)
    # ------------------------------------------------------------------
    def _increment_of(self, rep_y: str) -> _ClassIncrement:
        incr = self._increments.get(rep_y)
        if incr is None:
            if self.modulo is not None:
                rings = [
                    self._pair_ring(rep_x, rep_y)
                    for rep_x in self._classes
                ]
            else:
                pair_bits = self._kernel.pair_bits
                rings = [
                    pair_bits.get((rep_x, rep_y), 0)
                    for rep_x in self._classes
                ]
            incr = _ClassIncrement(rings)
            self._increments[rep_y] = incr
        return incr

    def _column_shift(self, cycle: int) -> int:
        if self.modulo is not None:
            return cycle % self.modulo
        # Scalar: collision bit k of a source at cycle c blocks cycle
        # c + k - offset (bit k encodes forbidden distance k - offset).
        return cycle - self._kernel.offset

    def _apply_token(self, token: ScheduledToken, sign: int) -> None:
        incr = self._increment_of(self._kernel.rep_of[token.op])
        shift = self._column_shift(token.cycle)
        if sign > 0:
            self._cols.add(incr, shift)
        else:
            self._cols.sub(incr, shift)

    def _col_add(self, token: ScheduledToken, function: str) -> None:
        self._apply_token(token, +1)
        # Write-path top-up: the column update is part of the assign's
        # own cost, one extra unit on the call super() just charged.
        self.work.units[function] += 1

    def _col_sub(self, token: ScheduledToken, function: str) -> None:
        self._apply_token(token, -1)
        self.work.units[function] += 1

    def _rebuild_columns(self) -> None:
        """Resynchronize columns from the live set (restore path)."""
        self._cols.clear()
        for token in self._live.values():
            self._apply_token(token, +1)
        self.work.charge(BATCH, len(self._live))

    # ------------------------------------------------------------------
    # Public protocol: same answers, columns kept in sync
    # ------------------------------------------------------------------
    def assign(self, op: str, cycle: int) -> ScheduledToken:
        token = super().assign(op, cycle)
        self._col_add(token, ASSIGN)
        return token

    def assign_free(
        self, op: str, cycle: int
    ) -> Tuple[ScheduledToken, List[ScheduledToken]]:
        token, evicted = super().assign_free(op, cycle)
        self._col_add(token, ASSIGN_FREE)
        for gone in evicted:
            self._col_sub(gone, ASSIGN_FREE)
        return token, evicted

    def free(self, token: ScheduledToken) -> None:
        super().free(token)
        self._col_sub(token, FREE)

    def reset(self) -> None:
        super().reset()
        self._cols.clear()

    def restore(self, snapshot: tuple) -> None:
        super().restore(snapshot)
        self._rebuild_columns()

    # ------------------------------------------------------------------
    # The O(1) window derivation
    # ------------------------------------------------------------------
    def _self_conflict(self, op: str) -> bool:
        """Whether the op's usages fold onto one MRT slot at this II.

        Alignment-independent (two usages collide iff their table
        cycles are congruent mod II), so one fold decides for every
        window — the compiled module re-derives it per alignment.
        """
        flag = self._sc_cache.get(op)
        if flag is None:
            flag = self._fold(op, 0)[1]
            self._sc_cache[op] = flag
        return flag

    def _blocked_window(
        self, op: str, start: int, width: int
    ) -> Tuple[int, int]:
        kernel = self._kernel
        rep_x = kernel.rep_of.get(op)
        if rep_x is None:
            self.machine.table(op)  # canonical unknown-operation error
        class_index = self._class_index[rep_x]
        if self.modulo is None:
            blocked = self._cols.window(class_index, start, width)
            return blocked, 1
        modulo = self.modulo
        effective = min(width, modulo)
        window_mask = (1 << effective) - 1
        if self._self_conflict(op):
            # A self-wrapping fold is alignment-independent: every slot
            # of this II is illegal for the operation.
            return window_mask, 1
        prefetch = self._ring_prefetch
        if prefetch is not None and class_index in prefetch:
            ring = prefetch[class_index]
        else:
            ring = self._cols.ring(class_index)
        shift = start % modulo
        if shift:
            ring = (
                (ring >> shift) | (ring << (modulo - shift))
            ) & ((1 << modulo) - 1)
        return ring & window_mask, 1

    def _charge_scan(self, units: int) -> None:
        self.work.charge(BATCH, units)

    # ------------------------------------------------------------------
    # Bulk entry points (all pending ops of a class, one call)
    # ------------------------------------------------------------------
    def _bulk_blocked(
        self, op: str, start: int, width: int, seen_classes: set
    ) -> Tuple[int, int]:
        """(blocked, effective) for one bulk request row."""
        rep = self._kernel.rep_of.get(op)
        if rep is None:
            self.machine.table(op)  # canonical unknown-operation error
        seen_classes.add(rep)
        blocked, _units = self._blocked_window(op, start, width)
        effective = width
        if self.modulo is not None:
            effective = min(width, self.modulo)
        return blocked, effective

    def _bulk_prefetch(self, ops: Iterable[str]) -> None:
        """Fetch every distinct class ring an invocation will touch, in
        one vectorized backend call (modulo mode; scalar columns are
        independent packed integers and are read per class)."""
        if self.modulo is None:
            return
        indices: List[int] = []
        seen: set = set()
        rep_of = self._kernel.rep_of
        for op in ops:
            rep = rep_of.get(op)
            if rep is None:
                continue  # the row scan raises the canonical error
            index = self._class_index[rep]
            if index not in seen:
                seen.add(index)
                indices.append(index)
        rings = self._cols.rings_of(indices) if indices else []
        self._ring_prefetch = dict(zip(indices, rings))

    def _bulk_units(self, seen_classes: set) -> int:
        """The invocation's ``batch`` charge: one unit in modulo mode
        (a single vectorized ring-matrix fetch covers every class the
        invocation touches), one per distinct class column in scalar
        mode.  ``charge`` floors the result at one either way."""
        if self.modulo is not None:
            return 1
        return len(seen_classes)

    def check_matrix(
        self, requests: Sequence[Tuple[str, int, int]]
    ) -> List[List[bool]]:
        """Batched ``check_range`` over many ``(op, start, stop)`` rows.

        Answers every candidate cycle of every request in one charged
        call (see :meth:`_bulk_units` for the charge rule).  Row *i*
        equals ``check_range(*requests[i])``.
        """
        answers: List[List[bool]] = []
        seen: set = set()
        self._bulk_prefetch(op for op, _start, _stop in requests)
        try:
            for op, start, stop in requests:
                width = stop - start
                if width <= 0:
                    answers.append([])
                    continue
                blocked, effective = self._bulk_blocked(
                    op, start, width, seen
                )
                answers.append([
                    not (blocked >> (i % effective)) & 1
                    for i in range(width)
                ])
        finally:
            self._ring_prefetch = None
        self.work.charge(BATCH, self._bulk_units(seen))
        return answers

    def first_free_bulk(
        self, requests: Sequence[Tuple[str, int, int, int]]
    ) -> List[Optional[int]]:
        """Batched ``first_free`` over ``(op, start, stop, direction)``
        rows — one charged call, same per-row answers."""
        answers: List[Optional[int]] = []
        seen: set = set()
        self._bulk_prefetch(op for op, _s, _e, _d in requests)
        try:
            for op, start, stop, direction in requests:
                width = stop - start
                if width <= 0:
                    answers.append(None)
                    continue
                blocked, effective = self._bulk_blocked(
                    op, start, width, seen
                )
                offset = self._pick_free(
                    blocked, width, effective, direction
                )
                answers.append(None if offset is None else start + offset)
        finally:
            self._ring_prefetch = None
        self.work.charge(BATCH, self._bulk_units(seen))
        return answers

    def first_free_with_alternatives(
        self, op: str, start: int, stop: int, direction: int = 1
    ) -> Tuple[Optional[int], Optional[str]]:
        """The IMS/list candidate scan, as one bulk kernel invocation.

        Same variant-major semantics (and answers) as the compiled
        module's :meth:`_first_free_by_variant` — later variants must
        strictly improve on the best cycle — but all variants of the
        decision are answered in *one* charged bulk invocation instead
        of one ``check_range`` charge per variant.
        """
        variants = self.machine.alternatives_of(op)
        ordered = order_variants(
            self.alternative_policy,
            variants,
            self._alt_rotation.get(op, 0),
            self._live_op_counts,
        )
        best_cycle: Optional[int] = None
        best_variant: Optional[str] = None
        lo, hi = start, stop
        seen: set = set()
        self._bulk_prefetch(ordered)
        try:
            for alternative in ordered:
                if lo >= hi:
                    break
                width = hi - lo
                blocked, effective = self._bulk_blocked(
                    alternative, lo, width, seen
                )
                offset = self._pick_free(
                    blocked, width, effective, direction
                )
                if offset is None:
                    continue
                cycle = lo + offset
                best_cycle = cycle
                best_variant = alternative
                # Later variants must find a strictly better cycle.
                if direction >= 0:
                    hi = cycle
                else:
                    lo = cycle + 1
        finally:
            self._ring_prefetch = None
        if best_variant is not None:
            if self.alternative_policy == ROUND_ROBIN and len(variants) > 1:
                self._alt_rotation[op] = self._alt_rotation.get(op, 0) + 1
        self.work.charge(BATCH, self._bulk_units(seen))
        return best_cycle, best_variant

    def place_bulk(
        self, placements: Iterable[Tuple[str, int]]
    ) -> List[ScheduledToken]:
        """Assign many ``(op, cycle)`` placements, in order.

        Equivalent to looping :meth:`assign`; column updates are charged
        per placement so bulk and loop accounting agree exactly.
        """
        return [self.assign(op, cycle) for op, cycle in placements]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shared(self) -> Optional[SharedCompilation]:
        """The shared-compilation handle, when corpus-scoped."""
        return self._shared


__all__ = [
    "BACKEND_ENV",
    "BACKEND_NUMPY",
    "BACKEND_PURE",
    "BatchQueryModule",
    "SharedCompilation",
    "batch_backend",
    "machine_digest",
    "numpy_available",
]
