"""Modulo reservation tables for software pipelining (paper Section 8).

A modulo schedule issues one loop iteration every II cycles, so an
operation placed at schedule cycle ``t`` occupies resources at cycles
``(t + c) mod II`` of the *Modulo Reservation Table* (Patel & Davidson;
Rau's Iterative Modulo Scheduler).  Both query-module representations
support a ``modulo=`` initiation interval natively; this module provides
the factory the scheduler uses to build them uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.machine import MachineDescription
from repro.obs.instrument import observed_class
from repro.obs.trace import current as _current_tracer
from repro.query.base import ContentionQueryModule
from repro.query.batch import BatchQueryModule, SharedCompilation
from repro.query.bitvector import BitvectorQueryModule
from repro.query.compiled import CompiledQueryModule
from repro.query.discrete import DiscreteQueryModule

DISCRETE = "discrete"
BITVECTOR = "bitvector"
COMPILED = "compiled"
BATCH = "batch"

#: The paper's three interpretable/compiled representations, which every
#: differential cross-check drives.  The columnar ``batch`` plane is a
#: byte-identical accelerator of ``compiled`` and is cross-checked by
#: the corpus-vs-per-loop differential stage instead.
REPRESENTATIONS = (DISCRETE, BITVECTOR, COMPILED)

#: Everything :func:`make_query_module` accepts (CLI choice lists).
ALL_REPRESENTATIONS = REPRESENTATIONS + (BATCH,)


def make_query_module(
    machine: MachineDescription,
    representation: str = DISCRETE,
    word_cycles: int = 1,
    modulo: Optional[int] = None,
    shared: Optional[SharedCompilation] = None,
) -> ContentionQueryModule:
    """Build a contention query module.

    Parameters
    ----------
    machine:
        Machine description (original or reduced).
    representation:
        ``"discrete"``, ``"bitvector"``, ``"compiled"`` (packed big-int
        masks plus pairwise collision bitsets; see
        :mod:`repro.query.compiled`), or ``"batch"`` (the columnar
        batch plane over the compiled kernel; see
        :mod:`repro.query.batch`).
    word_cycles:
        Cycle-bitvectors per word (bitvector representation only;
        ignored by the other representations).
    modulo:
        Initiation interval for a modulo reservation table; ``None`` gives
        an ordinary (scalar) reserved table.
    shared:
        Optional :class:`~repro.query.batch.SharedCompilation` handle
        (batch representation only): corpus drivers pass one so kernel
        compilation is charged once per machine digest instead of per
        module.

    While an observability tracer is active (:func:`repro.obs.tracing`)
    the *observed* subclass is constructed instead, so every basic
    function call is timed and accounted (see
    :mod:`repro.obs.instrument`).  With tracing disabled the plain class
    is returned — the untraced hot path is untouched.
    """
    if representation == DISCRETE:
        cls = DiscreteQueryModule
    elif representation == BITVECTOR:
        cls = BitvectorQueryModule
    elif representation == COMPILED:
        cls = CompiledQueryModule
    elif representation == BATCH:
        cls = BatchQueryModule
    else:
        raise ValueError(
            "unknown representation %r (expected one of %s)"
            % (representation, ALL_REPRESENTATIONS)
        )
    if shared is not None and representation != BATCH:
        raise ValueError(
            "shared compilation requires the batch representation"
        )
    if _current_tracer() is not None:
        cls = observed_class(cls)
    if representation == BITVECTOR:
        return cls(machine, word_cycles=word_cycles, modulo=modulo)
    if representation == BATCH:
        return cls(machine, modulo=modulo, shared=shared)
    return cls(machine, modulo=modulo)
