"""Compiled-representation contention query module (query compilation).

Where the discrete and bitvector representations interpret reservation
tables at query time, this module *compiles* the machine description once
and answers queries with arbitrary-precision integer arithmetic:

* **Packed reservation masks** — each operation's reservation table is
  packed into one big integer (bit = ``cycle * stride + resource``), and
  the reserved table is one integer too, so a ``check`` is a single
  shift-AND no matter how many usages the table has.
* **Pairwise collision bitsets** — from the Step-1 forbidden latency
  matrix ``F[X][Y] = {y - z}``, one bitset per (operation class x
  operation class) pair records every forbidden issue distance.  A
  contention test against an already-placed operation is then one
  integer AND of the shifted bitset, and the batched ``first_free`` /
  ``check_range`` kernels OR one shifted bitset per *distinct* live
  (class, cycle) pair to clear a whole candidate window at once —
  instead of one table walk per window cycle.

The machine-level artifacts (masks, matrix, collision bitsets) are
memoized per machine description in a small LRU, and their construction
cost is charged to the ``compile`` work function on *every* module
construction — deterministically, whether the kernel was memoized or
freshly built — so benchmark work counters never depend on cache warmth.
Per-II folded masks for modulo reservation tables are built lazily per
module and charged the same way.

Work currency: ``check`` costs one unit (one AND); a batched scan costs
one unit per collision bitset handled plus one for the window itself,
charged as ``check_range``; ``assign&free`` follows the paper's
optimistic/update-mode protocol with the same per-usage units as the
other representations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.obs import trace as obs
from repro.query.base import (
    BLAME_RESERVED,
    BLAME_SELF,
    Blame,
    ContentionQueryModule,
    ScheduledToken,
)
from repro.query.work import CHECK_RANGE, COMPILE


class CompiledKernel:
    """The II-independent compiled artifacts of one machine description.

    Built once per machine (see :func:`compiled_kernel`) and shared by
    every :class:`CompiledQueryModule` over that machine.  All fields
    are immutable after construction.
    """

    __slots__ = (
        "bit_of",
        "stride",
        "masks",
        "spans",
        "matrix",
        "offset",
        "rep_of",
        "pair_bits",
        "build_units",
    )

    def __init__(self, machine: MachineDescription):
        self.bit_of = {r: i for i, r in enumerate(machine.resources)}
        self.stride = max(1, machine.num_resources)
        units = 0
        self.masks: Dict[str, int] = {}
        self.spans: Dict[str, int] = {}
        for op in machine.operation_names:
            table = machine.table(op)
            mask = 0
            for resource, cycle in table.iter_usages():
                mask |= 1 << (cycle * self.stride + self.bit_of[resource])
                units += 1
            self.masks[op] = mask
            self.spans[op] = table.length
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
        self.matrix = matrix
        #: Bias added to a forbidden latency so bitset indices are >= 0.
        self.offset = matrix.max_latency
        rep_of: Dict[str, str] = {}
        for members in matrix.operation_classes():
            for op in members:
                rep_of[op] = members[0]
        self.rep_of = rep_of
        # One collision bitset per (class representative, class
        # representative) pair with a non-empty forbidden set: bit
        # ``f + offset`` is set iff issuing X ``f`` cycles after Y
        # conflicts.  Class members share rows/columns by definition, so
        # compiling per class is exact and smaller than per operation.
        pair_bits: Dict[Tuple[str, str], int] = {}
        representatives = sorted(set(rep_of.values()))
        for rep_x in representatives:
            for rep_y in representatives:
                latencies = matrix.latencies(rep_x, rep_y)
                if not latencies:
                    continue
                bits = 0
                for latency in latencies:
                    bits |= 1 << (latency + self.offset)
                    units += 1
                pair_bits[(rep_x, rep_y)] = bits
        self.pair_bits = pair_bits
        #: Deterministic construction cost (usages packed + forbidden
        #: latencies folded), charged per module construction.
        self.build_units = units


#: Per-machine kernel memo (LRU): keyed by the description itself, whose
#: equality compares operations/resources/alternatives/latencies.
_KERNEL_CACHE: "OrderedDict[MachineDescription, CompiledKernel]" = (
    OrderedDict()
)
_KERNEL_CACHE_LIMIT = 32


def compiled_kernel(machine: MachineDescription) -> CompiledKernel:
    """The compiled kernel of ``machine`` (memoized, LRU-bounded)."""
    kernel = _KERNEL_CACHE.get(machine)
    if kernel is not None:
        _KERNEL_CACHE.move_to_end(machine)
        return kernel
    with obs.span("kernel.compile", obs.CAT_QUERY, machine=machine.name):
        kernel = CompiledKernel(machine)
    _KERNEL_CACHE[machine] = kernel
    while len(_KERNEL_CACHE) > _KERNEL_CACHE_LIMIT:
        _KERNEL_CACHE.popitem(last=False)
    return kernel


def clear_kernel_cache() -> None:
    """Drop all memoized kernels (tests / memory pressure)."""
    _KERNEL_CACHE.clear()


class CompiledQueryModule(ContentionQueryModule):
    """Query module over packed big-int masks and collision bitsets.

    Parameters
    ----------
    machine:
        Machine description; its resource order defines bit positions.
    modulo:
        Optional initiation interval: cycles wrap, making this a Modulo
        Reservation Table for software pipelining.
    """

    def __init__(
        self, machine: MachineDescription, modulo: Optional[int] = None
    ):
        super().__init__(machine)
        if modulo is not None and modulo < 1:
            raise ValueError("modulo initiation interval must be >= 1")
        self.modulo = modulo
        self._kernel = compiled_kernel(machine)
        # The reserved table: one big integer.  Scalar tables bias the
        # cycle axis so negative cycles (dangling block-boundary
        # requirements) stay at non-negative bit positions; modulo
        # tables are a ring of ``II * stride`` bits.
        self._reserved = 0
        self._bias = 0
        # Owner fields, maintained only in update mode (or plain free).
        self._owners: Dict[Tuple[int, int], int] = {}
        self._update_mode = False
        # Per-II lazy folds (modulo only): operation masks folded onto
        # the MRT ring, and collision bitsets folded mod II.
        self._fold_cache: Dict[Tuple[str, int], Tuple[int, bool]] = {}
        self._pair_fold: Dict[Tuple[str, str], int] = {}
        self._charge_construction()

    def _charge_construction(self) -> None:
        """Charge the kernel build cost (hook: shared-compilation
        modules charge it once per machine digest instead)."""
        self._charge_compile(self._kernel.build_units)

    def _charge_compile(self, units: int) -> None:
        """Charge compilation work (deterministic per construction)."""
        self.work.charge(COMPILE, units)
        obs.count("query.compile.units", max(1, units))

    def _charge_scan(self, units: int) -> None:
        """Charge one batched window scan (hook: the batch plane charges
        its O(1) column fetches to the ``batch`` currency instead)."""
        self.work.charge(CHECK_RANGE, units)

    # ------------------------------------------------------------------
    # Packed-mask arithmetic
    # ------------------------------------------------------------------
    def _mask_of(self, op: str) -> int:
        mask = self._kernel.masks.get(op)
        if mask is None:
            # Raise the canonical unknown-operation error.
            self.machine.table(op)
        return mask

    def _bit_shift(self, cycle: int) -> int:
        """Bit shift of ``cycle`` in the scalar reserved int (grows bias)."""
        position = cycle + self._bias
        if position < 0:
            grow = -position
            self._reserved <<= grow * self._kernel.stride
            self._bias += grow
            position = 0
        return position * self._kernel.stride

    def _placed_mask(self, op: str, cycle: int) -> int:
        """The op's packed mask, positioned for ``cycle`` (scalar tables)."""
        mask = self._mask_of(op)
        shift = (cycle + self._bias) * self._kernel.stride
        if shift >= 0:
            return mask << shift
        # The table head hangs below the biased origin; reserved bits
        # only exist at non-negative positions, so dropping the low
        # cycles is exact for contention tests.
        return mask >> -shift

    def _fold(self, op: str, alignment: int) -> Tuple[int, bool]:
        """The op's mask folded onto the MRT ring at ``alignment``.

        Returns ``(mask, self_conflict)``; a fold that puts two usages
        of one resource onto the same MRT slot (II below a
        self-forbidden latency) makes every placement at this II
        illegal.  Built lazily per (op, alignment), charged to
        ``compile``.
        """
        key = (op, alignment)
        entry = self._fold_cache.get(key)
        if entry is None:
            modulo = self.modulo
            stride = self._kernel.stride
            bit_of = self._kernel.bit_of
            self._mask_of(op)  # canonical unknown-operation error
            mask = 0
            self_conflict = False
            units = 0
            for resource, use_cycle in self.machine.table(op).iter_usages():
                bit = 1 << (
                    ((alignment + use_cycle) % modulo) * stride
                    + bit_of[resource]
                )
                if mask & bit:
                    self_conflict = True
                mask |= bit
                units += 1
            entry = (mask, self_conflict)
            self._fold_cache[key] = entry
            self._charge_compile(units)
        return entry

    def _pair_ring(self, rep_x: str, rep_y: str) -> int:
        """Collision bitset of (X class, Y class) folded mod II (lazy)."""
        key = (rep_x, rep_y)
        bits = self._pair_fold.get(key)
        if bits is None:
            latencies = self._kernel.matrix.latencies(rep_x, rep_y)
            bits = 0
            for latency in latencies:
                bits |= 1 << (latency % self.modulo)
            self._pair_fold[key] = bits
            self._charge_compile(len(latencies))
        return bits

    def _cycle_key(self, cycle: int) -> int:
        if self.modulo is not None:
            return cycle % self.modulo
        return cycle

    def _usage_slots(self, op: str, cycle: int) -> List[Tuple[int, int]]:
        """(resource bit, cycle key) per usage — owner-map granularity."""
        bit_of = self._kernel.bit_of
        return [
            (bit_of[resource], self._cycle_key(cycle + use_cycle))
            for resource, use_cycle in self.machine.table(op).iter_usages()
        ]

    # ------------------------------------------------------------------
    # Representation hooks
    # ------------------------------------------------------------------
    def _check(self, op: str, cycle: int) -> Tuple[bool, int]:
        if self.modulo is None:
            return not (self._reserved & self._placed_mask(op, cycle)), 1
        mask, self_conflict = self._fold(op, cycle % self.modulo)
        if self_conflict:
            return False, 1
        return not (self._reserved & mask), 1

    def _reserved_blame(self, collision: int, cycle_bias: int) -> Blame:
        """Decode the lowest set bit of a collision into the canonical cell.

        Bit = ``cycle * stride + resource index``, so the lowest set bit
        is exactly the blocked cell with the smallest (cycle, resource
        index) — the canonical blame of every representation.
        """
        position = (collision & -collision).bit_length() - 1
        packed_cycle, bit = divmod(position, self._kernel.stride)
        cell_cycle = packed_cycle - cycle_bias
        owner_op = owner_cycle = None
        owner_ident = self._owners.get((bit, cell_cycle))
        if owner_ident is not None:
            owner = self._live.get(owner_ident)
            if owner is not None:
                owner_op, owner_cycle = owner.op, owner.cycle
        return Blame(
            self.machine.resources[bit],
            cell_cycle,
            BLAME_RESERVED,
            owner_op,
            owner_cycle,
        )

    def _check_blame(self, op: str, cycle: int) -> Tuple[bool, Optional[Blame], int]:
        if self.modulo is None:
            collision = self._reserved & self._placed_mask(op, cycle)
            if not collision:
                return True, None, 1
            # Reserved bits only exist at biased positions >= 0, so the
            # low cycles a negative shift drops can never collide —
            # the decode agrees with the discrete reference scan.
            return False, self._reserved_blame(collision, self._bias), 1
        mask, self_conflict = self._fold(op, cycle % self.modulo)
        if self_conflict:
            # Name the smallest duplicated MRT slot by walking the
            # usages (the fold has already collapsed the duplicate).
            bit_of = self._kernel.bit_of
            counts: Dict[Tuple[int, int], int] = {}
            units = 0
            for resource, use_cycle in self.machine.table(op).iter_usages():
                units += 1
                slot = ((cycle + use_cycle) % self.modulo, bit_of[resource])
                counts[slot] = counts.get(slot, 0) + 1
            slot_cycle, bit = min(s for s, n in counts.items() if n > 1)
            blame = Blame(self.machine.resources[bit], slot_cycle, BLAME_SELF)
            return False, blame, units
        collision = self._reserved & mask
        if not collision:
            return True, None, 1
        return False, self._reserved_blame(collision, 0), 1

    def _set_bits(self, op: str, cycle: int) -> None:
        if self.modulo is None:
            shift = self._bit_shift(cycle)
            self._reserved |= self._mask_of(op) << shift
        else:
            mask, _self_conflict = self._fold(op, cycle % self.modulo)
            self._reserved |= mask

    def _clear_bits(self, op: str, cycle: int) -> None:
        if self.modulo is None:
            shift = self._bit_shift(cycle)
            self._reserved &= ~(self._mask_of(op) << shift)
        else:
            mask, _self_conflict = self._fold(op, cycle % self.modulo)
            self._reserved &= ~mask

    def _assign(self, token: ScheduledToken, with_owners: bool) -> int:
        self._set_bits(token.op, token.cycle)
        if with_owners:
            for slot in self._usage_slots(token.op, token.cycle):
                self._owners[slot] = token.ident
        return 1

    def _free(self, token: ScheduledToken, with_owners: bool) -> int:
        self._clear_bits(token.op, token.cycle)
        if with_owners and self._update_mode:
            for slot in self._usage_slots(token.op, token.cycle):
                self._owners.pop(slot, None)
        return 1

    def _assign_free(
        self, token: ScheduledToken
    ) -> Tuple[List[ScheduledToken], int]:
        if not self._update_mode:
            # Optimistic mode: one AND decides, one OR commits.
            units = 1
            if self.modulo is None:
                placed = self._placed_mask(token.op, token.cycle)
            else:
                placed, _ = self._fold(token.op, token.cycle % self.modulo)
            if not (self._reserved & placed):
                self._set_bits(token.op, token.cycle)
                return [], units
            # Mode transition: rebuild owner fields by scanning the
            # whole scheduled-operation list (the paper's transition
            # overhead), then stay in update mode.
            self._update_mode = True
            for scheduled in self._live.values():
                for slot in self._usage_slots(scheduled.op, scheduled.cycle):
                    units += 1
                    self._owners[slot] = scheduled.ident
            return self._assign_free_update(token, units)
        return self._assign_free_update(token, 0)

    def _assign_free_update(
        self, token: ScheduledToken, units: int
    ) -> Tuple[List[ScheduledToken], int]:
        """Update-mode assign&free: iterate usages, evicting owners."""
        evicted: List[ScheduledToken] = []
        evicted_idents = set()
        for slot in self._usage_slots(token.op, token.cycle):
            units += 1
            owner = self._owners.get(slot)
            if (
                owner is not None
                and owner != token.ident
                and owner not in evicted_idents
            ):
                victim = self._live[owner]
                evicted_idents.add(owner)
                evicted.append(victim)
                for victim_slot in self._usage_slots(
                    victim.op, victim.cycle
                ):
                    units += 1
                    self._owners.pop(victim_slot, None)
                self._free(victim, with_owners=False)
            self._owners[slot] = token.ident
        self._assign(token, with_owners=False)
        return evicted, units

    def _reset_state(self) -> None:
        self._reserved = 0
        self._bias = 0
        self._owners.clear()
        self._update_mode = False

    def _snapshot_state(self):
        return (
            self._reserved,
            self._bias,
            dict(self._owners),
            self._update_mode,
        )

    def _restore_state(self, state) -> None:
        reserved, bias, owners, update_mode = state
        self._reserved = reserved
        self._bias = bias
        self._owners = dict(owners)
        self._update_mode = update_mode

    # ------------------------------------------------------------------
    # Batched window scans (the collision-bitset kernels)
    # ------------------------------------------------------------------
    def _blocked_window(
        self, op: str, start: int, width: int
    ) -> Tuple[int, int]:
        """Blocked-cycle bitset of the window, plus its work units.

        Bit ``i`` set means ``start + i`` is contended for ``op``.  For
        modulo tables the result has ``min(width, II)`` meaningful bits
        (positions repeat mod II); scalar tables get ``width`` bits.
        One unit per distinct live (class, cycle) collision bitset
        handled, plus one for the window itself.
        """
        kernel = self._kernel
        rep_x = kernel.rep_of.get(op)
        if rep_x is None:
            self.machine.table(op)  # canonical unknown-operation error
        units = 1
        blocked = 0
        if self.modulo is None:
            offset = kernel.offset
            pair_bits = kernel.pair_bits
            seen = set()
            for token in self._live.values():
                source = (kernel.rep_of[token.op], token.cycle)
                if source in seen:
                    continue
                seen.add(source)
                bits = pair_bits.get((rep_x, source[0]))
                if not bits:
                    continue
                units += 1
                distance = start - token.cycle + offset
                if distance >= 0:
                    blocked |= bits >> distance
                else:
                    blocked |= bits << -distance
            return blocked & ((1 << width) - 1), units

        modulo = self.modulo
        effective = min(width, modulo)
        window_mask = (1 << effective) - 1
        ring_mask = (1 << modulo) - 1
        _mask, self_conflict = self._fold(op, start % modulo)
        if self_conflict:
            # A self-wrapping fold is alignment-independent: every slot
            # of this II is illegal for the operation.
            return window_mask, units
        ring = 0
        seen = set()
        for token in self._live.values():
            source = (kernel.rep_of[token.op], token.cycle % modulo)
            if source in seen:
                continue
            seen.add(source)
            bits = self._pair_ring(rep_x, source[0])
            if not bits:
                continue
            units += 1
            rotation = source[1]
            if rotation:
                bits = (
                    (bits << rotation) | (bits >> (modulo - rotation))
                ) & ring_mask
            ring |= bits
        shift = start % modulo
        if shift:
            ring = (
                (ring >> shift) | (ring << (modulo - shift))
            ) & ring_mask
        return ring & window_mask, units

    def check_range(
        self,
        op: str,
        start: int,
        stop: int,
        attribute: Optional[List[Tuple[int, Blame]]] = None,
    ) -> List[bool]:
        """Batched contention test: one collision-bitset scan per window."""
        if attribute is not None:
            return self._attributed_check_range(op, start, stop, attribute)
        width = stop - start
        if width <= 0:
            self._charge_scan(1)
            return []
        blocked, units = self._blocked_window(op, start, width)
        self._charge_scan(units)
        effective = width
        if self.modulo is not None:
            effective = min(width, self.modulo)
        return [
            not (blocked >> (i % effective)) & 1 for i in range(width)
        ]

    def first_free(
        self,
        op: str,
        start: int,
        stop: int,
        direction: int = 1,
        attribute: Optional[List[Tuple[int, Blame]]] = None,
    ) -> Optional[int]:
        """Batched window scan: find the first clear bit of the window."""
        if attribute is not None:
            return self._attributed_first_free(op, start, stop, direction, attribute)
        width = stop - start
        if width <= 0:
            self._charge_scan(1)
            return None
        blocked, units = self._blocked_window(op, start, width)
        self._charge_scan(units)
        effective = width
        if self.modulo is not None:
            effective = min(width, self.modulo)
        offset = self._pick_free(blocked, width, effective, direction)
        if offset is None:
            return None
        return start + offset

    @staticmethod
    def _pick_free(
        blocked: int, width: int, effective: int, direction: int
    ) -> Optional[int]:
        """Window-relative position of the first clear bit, or ``None``."""
        free_bits = ~blocked & ((1 << effective) - 1)
        if not free_bits:
            return None
        if direction >= 0:
            return (free_bits & -free_bits).bit_length() - 1
        if width <= effective:
            return free_bits.bit_length() - 1
        # Downward scan over a window wider than the ring: the best
        # position of each free residue is its last repetition below
        # the window end.
        best = -1
        bits = free_bits
        while bits:
            low = bits & -bits
            residue = low.bit_length() - 1
            bits ^= low
            position = residue + effective * (
                (width - 1 - residue) // effective
            )
            if position > best:
                best = position
        return best

    def first_free_with_alternatives(
        self, op: str, start: int, stop: int, direction: int = 1
    ) -> Tuple[Optional[int], Optional[str]]:
        return self._first_free_by_variant(op, start, stop, direction)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_update_mode(self) -> bool:
        """True after the first eviction forced owner-field maintenance."""
        return self._update_mode

    def state_bits_per_cycle(self) -> int:
        """Reserved-table bits per schedule cycle: one per resource."""
        return self.machine.num_resources

    @property
    def kernel(self) -> CompiledKernel:
        """The memoized machine-level compiled kernel."""
        return self._kernel


__all__ = [
    "CompiledKernel",
    "CompiledQueryModule",
    "clear_kernel_cache",
    "compiled_kernel",
]
