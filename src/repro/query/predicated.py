"""Predicate-aware contention queries (Enhanced Modulo Scheduling).

The paper notes that discrete reserved-table entries "may contain
additional fields, such as ... a field identifying the predicate under
which the resource is reserved, as proposed in the Enhanced Modulo
Scheduling scheme" (Warter et al.).  On a predicated machine like the
Cydra 5, two operations guarded by *disjoint* predicates (an if-converted
then/else pair) can never both execute, so they may legally share a
resource slot — the reserved table must track who holds each entry under
which predicate.

:class:`PredicateSpace` models the predicate relation (complements are
disjoint; disjointness is declared explicitly otherwise and propagated to
nothing — a conservative may-overlap default).  The query module keeps a
list of (predicate, owner) holders per slot and reports contention only
against holders whose predicate may overlap the query's.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.machine import MachineDescription
from repro.errors import QueryError
from repro.query.base import ScheduledToken
from repro.query.work import ASSIGN, ASSIGN_FREE, CHECK, FREE, WorkCounters

#: The always-true predicate: overlaps everything.
TRUE = "true"


class PredicateSpace:
    """Disjointness relation over predicate names.

    Complementary pairs created by :meth:`complement` are disjoint by
    construction; any other pair *may overlap* unless explicitly declared
    disjoint.  This conservative default is sound: treating overlapping
    predicates as disjoint could admit real hazards, the reverse merely
    loses sharing.
    """

    def __init__(self):
        self._disjoint: Set[FrozenSet[str]] = set()

    def complement(self, predicate: str) -> str:
        """The complement predicate name (``p`` <-> ``!p``), registered
        as disjoint with its base."""
        if predicate == TRUE:
            raise QueryError("the true predicate has no useful complement")
        other = predicate[1:] if predicate.startswith("!") else "!" + predicate
        self.declare_disjoint(predicate, other)
        return other

    def declare_disjoint(self, first: str, second: str) -> None:
        """Record that two predicates can never both be true."""
        if TRUE in (first, second):
            raise QueryError("nothing is disjoint with the true predicate")
        if first == second:
            raise QueryError("a predicate cannot be disjoint with itself")
        self._disjoint.add(frozenset((first, second)))

    def may_overlap(self, first: str, second: str) -> bool:
        """True unless the pair was declared (or derived) disjoint."""
        if first == TRUE or second == TRUE or first == second:
            return True
        return frozenset((first, second)) not in self._disjoint


class PredicatedDiscreteQueryModule:
    """Discrete reserved table with per-entry predicate fields.

    The interface mirrors :class:`~repro.query.DiscreteQueryModule` with
    an extra ``predicate`` argument on every function (defaulting to the
    always-true predicate, which makes this a strict generalization).
    Work is counted per *holder examined*, so sharing slots under
    disjoint predicates costs proportionally to the holders present.
    """

    def __init__(
        self,
        machine: MachineDescription,
        predicates: Optional[PredicateSpace] = None,
        modulo: Optional[int] = None,
    ):
        if modulo is not None and modulo < 1:
            raise QueryError("modulo initiation interval must be >= 1")
        self.machine = machine
        self.predicates = predicates or PredicateSpace()
        self.modulo = modulo
        self.work = WorkCounters()
        self._next_ident = 0
        self._live: Dict[int, Tuple[ScheduledToken, str]] = {}
        # slot -> list of (predicate, token ident) holders.
        self._reserved: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------
    def _slots(self, op: str, cycle: int) -> List[Tuple[str, int]]:
        table = self.machine.table(op)
        if self.modulo is None:
            return [(r, cycle + c) for r, c in table.iter_usages()]
        return [(r, (cycle + c) % self.modulo) for r, c in table.iter_usages()]

    def _conflicts(
        self, slot: Tuple[str, int], predicate: str
    ) -> Optional[int]:
        """Ident of a holder overlapping ``predicate``, else None."""
        for holder_pred, ident in self._reserved.get(slot, ()):
            if self.predicates.may_overlap(predicate, holder_pred):
                return ident
        return None

    # ------------------------------------------------------------------
    def check(self, op: str, cycle: int, predicate: str = TRUE) -> bool:
        """True when ``op`` under ``predicate`` fits at ``cycle``."""
        units = 0
        free = True
        for slot in self._slots(op, cycle):
            units += 1 + len(self._reserved.get(slot, ()))
            if self._conflicts(slot, predicate) is not None:
                free = False
                break
        if free and self.modulo is not None:
            seen = set()
            for slot in self._slots(op, cycle):
                if slot in seen:
                    free = False
                    break
                seen.add(slot)
        self.work.charge(CHECK, units)
        return free

    def assign(
        self, op: str, cycle: int, predicate: str = TRUE
    ) -> ScheduledToken:
        """Reserve every slot of ``op`` under ``predicate``."""
        token = ScheduledToken(self._next_ident, op, cycle)
        self._next_ident += 1
        units = 0
        for slot in self._slots(op, cycle):
            units += 1
            self._reserved.setdefault(slot, []).append(
                (predicate, token.ident)
            )
        self.work.charge(ASSIGN, units)
        self._live[token.ident] = (token, predicate)
        return token

    def assign_free(
        self, op: str, cycle: int, predicate: str = TRUE
    ) -> Tuple[ScheduledToken, List[ScheduledToken]]:
        """Reserve, evicting holders whose predicate overlaps."""
        token = ScheduledToken(self._next_ident, op, cycle)
        self._next_ident += 1
        units = 0
        evicted: List[ScheduledToken] = []
        evicted_idents: Set[int] = set()
        for slot in self._slots(op, cycle):
            units += 1 + len(self._reserved.get(slot, ()))
            victim = self._conflicts(slot, predicate)
            while victim is not None and victim not in evicted_idents:
                victim_token, _pred = self._live[victim]
                evicted_idents.add(victim)
                evicted.append(victim_token)
                units += self._release(victim_token)
                victim = self._conflicts(slot, predicate)
            self._reserved.setdefault(slot, []).append(
                (predicate, token.ident)
            )
        for ident in evicted_idents:
            del self._live[ident]
        self.work.charge(ASSIGN_FREE, units)
        self._live[token.ident] = (token, predicate)
        return token, evicted

    def free(self, token: ScheduledToken) -> None:
        """Release every slot held by ``token``."""
        if token.ident not in self._live:
            raise QueryError("token %r is not scheduled" % (token,))
        units = self._release(token)
        self.work.charge(FREE, units)
        del self._live[token.ident]

    def _release(self, token: ScheduledToken) -> int:
        units = 0
        for slot in self._slots(token.op, token.cycle):
            units += 1
            holders = self._reserved.get(slot, [])
            self._reserved[slot] = [
                (pred, ident)
                for pred, ident in holders
                if ident != token.ident
            ]
            if not self._reserved[slot]:
                del self._reserved[slot]
        return units

    # ------------------------------------------------------------------
    # Batched window scans (mirroring ContentionQueryModule's fallbacks)
    # ------------------------------------------------------------------
    def check_range(
        self, op: str, start: int, stop: int, predicate: str = TRUE
    ) -> List[bool]:
        """Batched contention test over ``range(start, stop)``.

        One boolean per cycle of the window, in window order — a loop of
        :meth:`check` calls with identical charges, like the
        :class:`~repro.query.base.ContentionQueryModule` fallback, but
        predicate-aware.
        """
        return [
            self.check(op, cycle, predicate) for cycle in range(start, stop)
        ]

    def first_free(
        self,
        op: str,
        start: int,
        stop: int,
        direction: int = 1,
        predicate: str = TRUE,
    ) -> Optional[int]:
        """First cycle in ``range(start, stop)`` free for ``op`` under
        ``predicate``; ``direction=-1`` scans the window downward.
        Returns ``None`` when every cycle of the window is contended."""
        if direction >= 0:
            window = range(start, stop)
        else:
            window = range(stop - 1, start - 1, -1)
        for cycle in window:
            if self.check(op, cycle, predicate):
                return cycle
        return None

    # ------------------------------------------------------------------
    def holders_at(self, resource: str, cycle: int) -> List[Tuple[str, int]]:
        """(predicate, ident) holders of one slot — for tests/debugging."""
        if self.modulo is not None:
            cycle %= self.modulo
        return list(self._reserved.get((resource, cycle), ()))

    def scheduled(self) -> List[ScheduledToken]:
        return [self._live[ident][0] for ident in sorted(self._live)]
