"""Discrete-representation contention query module (paper Sections 5 & 7).

The reserved table has one entry per (resource, schedule cycle).  Each entry
carries a flag (reserved or not) and an owner field identifying the
operation instance holding the reservation — the mapping that makes
backtracking (``assign&free``) cheap.  We store the table sparsely as a
dictionary keyed by ``(resource, cycle)`` with the owning token ident as the
value, which supports unbounded and negative schedule cycles (dangling
resource requirements across block boundaries).

Work accounting is the paper's: one unit per resource usage handled, with
``check`` aborting at the first detected contention.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.query.base import (
    BLAME_RESERVED,
    BLAME_SELF,
    Blame,
    ContentionQueryModule,
    ScheduledToken,
)


class DiscreteQueryModule(ContentionQueryModule):
    """Query module over per-(resource, cycle) flag/owner entries.

    Parameters
    ----------
    machine:
        Machine description (original or reduced — both work; reduced is
        faster because it has fewer usages per operation).
    modulo:
        When given, cycles wrap modulo this initiation interval, turning
        the reserved table into a Modulo Reservation Table for software
        pipelining.
    """

    def __init__(self, machine: MachineDescription, modulo: Optional[int] = None):
        super().__init__(machine)
        if modulo is not None and modulo < 1:
            raise ValueError("modulo initiation interval must be >= 1")
        self.modulo = modulo
        self._reserved: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Slot arithmetic
    # ------------------------------------------------------------------
    def _slot(self, resource: str, cycle: int) -> Tuple[str, int]:
        if self.modulo is not None:
            cycle %= self.modulo
        return (resource, cycle)

    def _slots(self, op: str, cycle: int) -> List[Tuple[str, int]]:
        table = self.machine.table(op)
        return [self._slot(r, cycle + c) for r, c in table.iter_usages()]

    # ------------------------------------------------------------------
    # Representation hooks
    # ------------------------------------------------------------------
    def _check(self, op: str, cycle: int) -> Tuple[bool, int]:
        units = 0
        if self.modulo is None:
            for slot in self._slots(op, cycle):
                units += 1
                if slot in self._reserved:
                    return False, units
            return True, units
        # Modulo tables: the operation may collide with itself when its
        # usages of one resource wrap onto the same MRT slot (II smaller
        # than a self-forbidden latency) — such a placement is never legal.
        seen = set()
        for slot in self._slots(op, cycle):
            units += 1
            if slot in self._reserved or slot in seen:
                return False, units
            seen.add(slot)
        return True, units

    def _check_blame(self, op: str, cycle: int) -> Tuple[bool, Optional[Blame], int]:
        # The reference semantics for blame: scan every usage (no early
        # abort) and name the canonical cell — the blocked slot with the
        # smallest (cycle, resource index), self-conflicts first.
        res_index = self._resource_index()
        units = 0
        counts: Dict[Tuple[str, int], int] = {}
        for slot in self._slots(op, cycle):
            units += 1
            counts[slot] = counts.get(slot, 0) + 1
        if self.modulo is not None:
            duplicated = [
                (slot_cycle, res_index[resource], resource)
                for (resource, slot_cycle), count in counts.items()
                if count > 1
            ]
            if duplicated:
                slot_cycle, _, resource = min(duplicated)
                return False, Blame(resource, slot_cycle, BLAME_SELF), units
        blocked = [
            (slot_cycle, res_index[resource], resource)
            for resource, slot_cycle in counts
            if (resource, slot_cycle) in self._reserved
        ]
        if not blocked:
            return True, None, units
        slot_cycle, _, resource = min(blocked)
        owner_op = owner_cycle = None
        owner = self._live.get(self._reserved[(resource, slot_cycle)])
        if owner is not None:
            owner_op, owner_cycle = owner.op, owner.cycle
        blame = Blame(resource, slot_cycle, BLAME_RESERVED, owner_op, owner_cycle)
        return False, blame, units

    def _assign(self, token: ScheduledToken, with_owners: bool) -> int:
        units = 0
        for slot in self._slots(token.op, token.cycle):
            units += 1
            self._reserved[slot] = token.ident
        return units

    def _free(self, token: ScheduledToken, with_owners: bool) -> int:
        units = 0
        for slot in self._slots(token.op, token.cycle):
            units += 1
            self._reserved.pop(slot, None)
        return units

    def _assign_free(self, token: ScheduledToken) -> Tuple[List[ScheduledToken], int]:
        units = 0
        evicted: List[ScheduledToken] = []
        evicted_idents = set()
        for slot in self._slots(token.op, token.cycle):
            units += 1
            owner = self._reserved.get(slot)
            if owner is not None and owner != token.ident and owner not in evicted_idents:
                victim = self._live[owner]
                evicted_idents.add(owner)
                evicted.append(victim)
                # Release every entry of the victim, not just the clash.
                for victim_slot in self._slots(victim.op, victim.cycle):
                    units += 1
                    self._reserved.pop(victim_slot, None)
            self._reserved[slot] = token.ident
        return evicted, units

    def _reset_state(self) -> None:
        self._reserved.clear()

    def _snapshot_state(self):
        return dict(self._reserved)

    def _restore_state(self, state) -> None:
        self._reserved = dict(state)

    # ------------------------------------------------------------------
    # Introspection (tests / examples)
    # ------------------------------------------------------------------
    def owner_at(self, resource: str, cycle: int) -> Optional[int]:
        """Token ident reserving (resource, cycle), if any."""
        return self._reserved.get(self._slot(resource, cycle))

    @property
    def reserved_entries(self) -> int:
        """Number of currently reserved (resource, cycle) entries."""
        return len(self._reserved)

    def state_bits_per_cycle(self) -> int:
        """Flag bits required per schedule cycle: one per resource.

        The paper's memory metric — reduced machines need proportionally
        fewer bits per cycle of reserved-table state.
        """
        return self.machine.num_resources
