"""Alternative-operation selection policies.

``check_with_alternatives`` in the paper "repetitively call[s] the check
function for each of the alternative operations until it succeeds", i.e.
first-fit in declaration order; the paper notes that "other more
efficient techniques could be implemented".  This module provides three:

* :data:`FIRST_FIT` — the paper's policy (default);
* :data:`ROUND_ROBIN` — start the probe sequence at a rotating variant,
  spreading ops across replicated units even when the first unit is free
  (fewer later conflicts, fewer check calls on contended machines);
* :data:`LEAST_USED` — probe variants in increasing order of how many
  currently-scheduled operations already use them (a cheap load balance).

Policies only reorder the probe sequence; they never accept a variant the
plain policy would reject, so schedules remain structurally legal under
every policy.
"""

from __future__ import annotations

from typing import Sequence, Tuple

FIRST_FIT = "first-fit"
ROUND_ROBIN = "round-robin"
LEAST_USED = "least-used"

POLICIES = (FIRST_FIT, ROUND_ROBIN, LEAST_USED)


def order_variants(
    policy: str,
    variants: Sequence[str],
    rotation: int,
    usage_counts,
) -> Tuple[str, ...]:
    """Probe order for a variant list under ``policy``.

    Parameters
    ----------
    policy:
        One of :data:`POLICIES`.
    variants:
        Declared alternative operations (first-fit order).
    rotation:
        Per-base-operation rotation counter (round-robin state).
    usage_counts:
        Mapping from variant name to its live assignment count.
    """
    if policy == FIRST_FIT or len(variants) == 1:
        return tuple(variants)
    if policy == ROUND_ROBIN:
        pivot = rotation % len(variants)
        return tuple(variants[pivot:]) + tuple(variants[:pivot])
    if policy == LEAST_USED:
        return tuple(
            sorted(
                variants,
                key=lambda v: (usage_counts.get(v, 0), variants.index(v)),
            )
        )
    raise ValueError(
        "unknown alternative policy %r (expected one of %s)"
        % (policy, POLICIES)
    )
