"""Abstract contention query module (paper Section 7).

A contention query module answers, for a target machine and a partial
schedule: *can this operation be placed in this cycle without resource
contention?*  It supports the paper's four basic functions plus the
alternative-aware variant:

* ``check(op, cycle)`` — contention test, no state change;
* ``assign(op, cycle)`` — reserve the operation's resources;
* ``assign_free(op, cycle)`` — reserve, evicting conflicting operations
  (the backtracking primitive of Rau's Iterative Modulo Scheduler);
* ``free(token)`` — release a previously assigned operation;
* ``check_with_alternatives(op, cycle)`` — try each alternative operation
  and return the first contention-free one.

All implementations support *unrestricted scheduling*: operations may be
placed in arbitrary cycle order (including negative cycles, which model
resource requirements dangling across basic-block boundaries) and any
placement may later be reversed.

As in the paper, ``assign`` and ``assign_free`` must not be mixed within
one partial schedule: ``assign_free`` relies on owner bookkeeping that
plain ``assign`` does not maintain.  Mixing raises
:class:`~repro.errors.QueryError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.errors import QueryError
from repro.query.alternatives import FIRST_FIT, ROUND_ROBIN, order_variants
from repro.query.work import ASSIGN, ASSIGN_FREE, ATTRIBUTE, CHECK, FREE, WorkCounters

#: Blame kinds: a reserved-table collision with another scheduled
#: operation, or a self-conflict (two usages of the same operation folding
#: onto one MRT slot under modulo scheduling).
BLAME_RESERVED = "reserved"
BLAME_SELF = "self"


@dataclass(frozen=True)
class Blame:
    """Attribution for one failed contention check.

    Every representation blames the *canonical* blocked cell: among all
    blocked (resource, cycle) cells of the failed check, the one with the
    lexicographically smallest ``(cycle key, resource index)`` — where the
    cycle key is the absolute cycle for scalar scheduling and the MRT slot
    under modulo scheduling, and the resource index is the resource's
    position in ``machine.resources``.  This is exactly the cell the
    compiled kernel's lowest set bit of ``reserved & mask`` decodes to, so
    compiled, bitvector, and discrete blame are comparable bit for bit.

    A modulo self-conflict (the operation's own usages folding onto one
    MRT slot) takes precedence over reserved-table collisions, mirroring
    the compiled kernel's self-conflict short circuit.

    ``owner_op``/``owner_cycle`` identify the scheduled operation holding
    the blamed cell when the representation tracks owners; they are
    best-effort and excluded from :attr:`key`, the exactness currency.
    """

    resource: str
    cycle: int
    kind: str = BLAME_RESERVED
    owner_op: Optional[str] = None
    owner_cycle: Optional[int] = None

    @property
    def key(self) -> Tuple[str, int, str]:
        """The representation-independent identity ``(resource, cycle, kind)``."""
        return (self.resource, self.cycle, self.kind)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for ledgers and JSON reports."""
        doc: Dict[str, object] = {
            "resource": self.resource,
            "cycle": self.cycle,
            "kind": self.kind,
        }
        if self.owner_op is not None:
            doc["owner_op"] = self.owner_op
        if self.owner_cycle is not None:
            doc["owner_cycle"] = self.owner_cycle
        return doc

    def describe(self) -> str:
        """One-line human rendering used by ledgers and ``repro explain``."""
        if self.kind == BLAME_SELF:
            return "%s self-conflict at slot %d" % (self.resource, self.cycle)
        text = "%s busy at cycle %d" % (self.resource, self.cycle)
        if self.owner_op is not None:
            text += " (held by %s" % self.owner_op
            if self.owner_cycle is not None:
                text += " @%d" % self.owner_cycle
            text += ")"
        return text


@dataclass(frozen=True)
class ScheduledToken:
    """Handle for one scheduled operation instance.

    Returned by ``assign``/``assign_free``; passed to ``free``.  Tokens are
    unique per assignment, so the same operation placed, freed, and placed
    again yields distinct tokens.
    """

    ident: int
    op: str
    cycle: int


class ContentionQueryModule:
    """Shared bookkeeping for all query-module representations."""

    def __init__(self, machine: MachineDescription):
        self.machine = machine
        self.work = WorkCounters()
        #: Probe-order policy for ``check_with_alternatives`` (see
        #: :mod:`repro.query.alternatives`).
        self.alternative_policy = FIRST_FIT
        self._next_ident = 0
        self._live: Dict[int, ScheduledToken] = {}
        self._used_assign = False
        self._used_assign_free = False
        self._alt_rotation: Dict[str, int] = {}
        self._live_op_counts: Dict[str, int] = {}
        self._resource_index_cache: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Representation hooks (implemented by subclasses)
    # ------------------------------------------------------------------
    def _check(self, op: str, cycle: int) -> Tuple[bool, int]:
        """Return ``(is_free, work_units)``."""
        raise NotImplementedError

    def _check_blame(self, op: str, cycle: int) -> Tuple[bool, Optional[Blame], int]:
        """Attributed contention test: ``(is_free, blame, work_units)``.

        ``blame`` is ``None`` when the check succeeds, otherwise the
        canonical :class:`Blame` cell (see its docstring).  Unlike
        :meth:`_check`, which may abort at the first collision, this hook
        must inspect enough state to name the canonical cell — the opt-in
        path may cost more units than the fast path it mirrors.
        """
        raise NotImplementedError

    def _assign(self, token: ScheduledToken, with_owners: bool) -> int:
        """Reserve resources; return work units."""
        raise NotImplementedError

    def _free(self, token: ScheduledToken, with_owners: bool) -> int:
        """Release resources; return work units."""
        raise NotImplementedError

    def _assign_free(self, token: ScheduledToken) -> Tuple[List[ScheduledToken], int]:
        """Reserve, evicting owners of conflicting resources.

        Returns ``(evicted tokens, work units)``.
        """
        raise NotImplementedError

    def _reset_state(self) -> None:
        raise NotImplementedError

    def _snapshot_state(self):
        """Representation-private state copy (see :meth:`snapshot`)."""
        raise NotImplementedError

    def _restore_state(self, state) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def check(self, op: str, cycle: int) -> bool:
        """True when ``op`` can issue at ``cycle`` without contention."""
        free, units = self._check(op, cycle)
        self.work.charge(CHECK, units)
        return free

    def assign(self, op: str, cycle: int) -> ScheduledToken:
        """Reserve the resources of ``op`` issued at ``cycle``.

        The caller is responsible for having checked first; assigning over
        a conflict corrupts the reserved table (as in the paper's modules,
        which do no double bookkeeping for speed).
        """
        if self._used_assign_free:
            raise QueryError("cannot mix assign with assign_free")
        self._used_assign = True
        token = self._make_token(op, cycle)
        units = self._assign(token, with_owners=False)
        self.work.charge(ASSIGN, units)
        self._live[token.ident] = token
        self._count_op(op, +1)
        return token

    def assign_free(self, op: str, cycle: int) -> Tuple[ScheduledToken, List[ScheduledToken]]:
        """Reserve resources, evicting any conflicting scheduled operations.

        Returns the new token and the (possibly empty) list of evicted
        tokens, which the scheduler must re-schedule.
        """
        if self._used_assign:
            raise QueryError("cannot mix assign_free with assign")
        self._used_assign_free = True
        token = self._make_token(op, cycle)
        evicted, units = self._assign_free(token)
        self.work.charge(ASSIGN_FREE, units)
        for gone in evicted:
            self._live.pop(gone.ident, None)
            self._count_op(gone.op, -1)
        self._live[token.ident] = token
        self._count_op(op, +1)
        return token, evicted

    def free(self, token: ScheduledToken) -> None:
        """Release the resources held by ``token``."""
        if token.ident not in self._live:
            raise QueryError("token %r is not scheduled" % (token,))
        units = self._free(token, with_owners=self._used_assign_free)
        self.work.charge(FREE, units)
        del self._live[token.ident]
        self._count_op(token.op, -1)

    def check_attributed(self, op: str, cycle: int) -> Tuple[bool, Optional[Blame]]:
        """Contention test that names the blocking cell on failure.

        Returns ``(is_free, blame)`` where ``blame`` is ``None`` on
        success and the canonical :class:`Blame` otherwise.  Charged in
        the ``attribute`` work currency, never ``check`` — the provenance
        plane leaves the paper's Table 6 numbers untouched.
        """
        free, blame, units = self._check_blame(op, cycle)
        self.work.charge(ATTRIBUTE, units)
        return free, blame

    def check_range(
        self,
        op: str,
        start: int,
        stop: int,
        attribute: Optional[List[Tuple[int, Blame]]] = None,
    ) -> List[bool]:
        """Batched contention test over ``range(start, stop)``.

        Returns one boolean per cycle of the window, in window order.
        The base implementation is a loop of :meth:`check` calls (one
        ``check`` charge per probed cycle, exactly as if the caller had
        looped); representations with word-level or compiled kernels
        override this with a single scan charged in the ``check_range``
        currency.

        When ``attribute`` is passed (a list), each blocked cycle appends
        a ``(cycle, blame)`` pair to it and the scan runs through the
        attributed path; the default ``attribute=None`` call is
        trajectory-identical to the pre-attribution module.
        """
        if attribute is not None:
            return self._attributed_check_range(op, start, stop, attribute)
        return [self.check(op, cycle) for cycle in range(start, stop)]

    def _attributed_check_range(
        self,
        op: str,
        start: int,
        stop: int,
        attribute: List[Tuple[int, Blame]],
    ) -> List[bool]:
        """Shared opt-in blame path behind ``check_range(attribute=...)``."""
        answers = []
        for cycle in range(start, stop):
            free, blame = self.check_attributed(op, cycle)
            answers.append(free)
            if blame is not None:
                attribute.append((cycle, blame))
        return answers

    def first_free(
        self,
        op: str,
        start: int,
        stop: int,
        direction: int = 1,
        attribute: Optional[List[Tuple[int, Blame]]] = None,
    ) -> Optional[int]:
        """First contention-free cycle for ``op`` in ``range(start, stop)``.

        ``direction=1`` scans the window upward from ``start``;
        ``direction=-1`` scans downward from ``stop - 1`` (the
        lifetime-sensitive placement order).  Returns ``None`` when every
        cycle of the window is contended.  The base implementation loops
        :meth:`check`; fast backends override it with a batched kernel.

        When ``attribute`` is passed (a list), every blocked cycle probed
        before the answer appends ``(cycle, blame)`` to it (in scan
        order); ``attribute=None`` keeps the untouched fast path.
        """
        if attribute is not None:
            return self._attributed_first_free(op, start, stop, direction, attribute)
        for cycle in self._window(start, stop, direction):
            if self.check(op, cycle):
                return cycle
        return None

    def _attributed_first_free(
        self,
        op: str,
        start: int,
        stop: int,
        direction: int,
        attribute: List[Tuple[int, Blame]],
    ) -> Optional[int]:
        """Shared opt-in blame path behind ``first_free(attribute=...)``."""
        for cycle in self._window(start, stop, direction):
            free, blame = self.check_attributed(op, cycle)
            if free:
                return cycle
            if blame is not None:
                attribute.append((cycle, blame))
        return None

    def first_free_with_alternatives(
        self, op: str, start: int, stop: int, direction: int = 1
    ) -> Tuple[Optional[int], Optional[str]]:
        """First ``(cycle, alternative)`` schedulable in the window.

        The window is scanned cycle-major (every alternative is probed at
        a cycle before the next cycle is considered), so the result is
        identical to looping :meth:`check_with_alternatives` over the
        window — which is exactly what this base implementation does.
        Returns ``(None, None)`` when the window is exhausted.
        """
        for cycle in self._window(start, stop, direction):
            alternative = self.check_with_alternatives(op, cycle)
            if alternative is not None:
                return cycle, alternative
        return None, None

    def _first_free_by_variant(
        self, op: str, start: int, stop: int, direction: int = 1
    ) -> Tuple[Optional[int], Optional[str]]:
        """Variant-major window scan for batched backends.

        Runs one :meth:`first_free` kernel per ordered alternative,
        shrinking the window after every hit so later variants must
        strictly improve on the best cycle found so far.  Ties therefore
        go to the earlier variant in probe order — the same answer the
        cycle-major scan produces, at one batched kernel per variant.
        Backends that override :meth:`first_free` use this as their
        :meth:`first_free_with_alternatives`.
        """
        variants = self.machine.alternatives_of(op)
        ordered = order_variants(
            self.alternative_policy,
            variants,
            self._alt_rotation.get(op, 0),
            self._live_op_counts,
        )
        best_cycle: Optional[int] = None
        best_variant: Optional[str] = None
        lo, hi = start, stop
        for alternative in ordered:
            if lo >= hi:
                break
            cycle = self.first_free(alternative, lo, hi, direction)
            if cycle is None:
                continue
            best_cycle = cycle
            best_variant = alternative
            # Later variants must find a strictly better cycle.
            if direction >= 0:
                hi = cycle
            else:
                lo = cycle + 1
        if best_variant is not None:
            if self.alternative_policy == ROUND_ROBIN and len(variants) > 1:
                self._alt_rotation[op] = self._alt_rotation.get(op, 0) + 1
        return best_cycle, best_variant

    @staticmethod
    def _window(start: int, stop: int, direction: int) -> range:
        """Window cycles in scan order (upward or downward)."""
        if direction >= 0:
            return range(start, stop)
        return range(stop - 1, start - 1, -1)

    def check_with_alternatives(self, op: str, cycle: int) -> Optional[str]:
        """First alternative of ``op`` schedulable at ``cycle``, or ``None``.

        Implemented, as in the paper, by repeatedly calling ``check`` for
        each alternative operation until one succeeds.  The probe order is
        governed by :attr:`alternative_policy` — the paper's first-fit by
        default, with round-robin and least-used available (the "more
        efficient techniques" the paper leaves open).
        """
        variants = self.machine.alternatives_of(op)
        ordered = order_variants(
            self.alternative_policy,
            variants,
            self._alt_rotation.get(op, 0),
            self._live_op_counts,
        )
        for alternative in ordered:
            if self.check(alternative, cycle):
                if self.alternative_policy == ROUND_ROBIN and len(variants) > 1:
                    self._alt_rotation[op] = (
                        self._alt_rotation.get(op, 0) + 1
                    )
                return alternative
        return None

    def scheduled(self) -> List[ScheduledToken]:
        """Currently scheduled tokens, in assignment order."""
        return [self._live[ident] for ident in sorted(self._live)]

    def snapshot(self) -> tuple:
        """Opaque copy of the partial-schedule state.

        Search-based schedulers (branch and bound, enumeration) can
        checkpoint before a speculative subtree and ``restore`` instead
        of replaying frees.  Work counters are NOT part of the snapshot
        — accounting keeps running across restores.
        """
        return (
            dict(self._live),
            self._next_ident,
            self._used_assign,
            self._used_assign_free,
            dict(self._alt_rotation),
            dict(self._live_op_counts),
            self._snapshot_state(),
        )

    def restore(self, snapshot: tuple) -> None:
        """Return to a state captured by :meth:`snapshot`."""
        (
            live,
            next_ident,
            used_assign,
            used_assign_free,
            rotation,
            counts,
            state,
        ) = snapshot
        self._live = dict(live)
        self._next_ident = next_ident
        self._used_assign = used_assign
        self._used_assign_free = used_assign_free
        self._alt_rotation = dict(rotation)
        self._live_op_counts = dict(counts)
        self._restore_state(state)

    def reset(self) -> None:
        """Clear the partial schedule (work counters are kept)."""
        self._live.clear()
        self._used_assign = False
        self._used_assign_free = False
        self._alt_rotation.clear()
        self._live_op_counts.clear()
        self._reset_state()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _resource_index(self) -> Dict[str, int]:
        """Resource → position in ``machine.resources`` (the blame tie-break).

        The same ordering the bitvector/compiled backends pack bits in,
        so the discrete module's canonical-cell tie-break agrees with the
        lowest-set-bit decode.  Built lazily: modules that never attribute
        pay nothing.
        """
        index = self._resource_index_cache
        if index is None:
            index = {r: i for i, r in enumerate(self.machine.resources)}
            self._resource_index_cache = index
        return index

    def _count_op(self, op: str, delta: int) -> None:
        count = self._live_op_counts.get(op, 0) + delta
        if count:
            self._live_op_counts[op] = count
        else:
            self._live_op_counts.pop(op, None)

    def _make_token(self, op: str, cycle: int) -> ScheduledToken:
        if op not in self.machine:
            raise QueryError("unknown operation %r" % op)
        token = ScheduledToken(self._next_ident, op, cycle)
        self._next_ident += 1
        return token

    def __repr__(self) -> str:
        return "%s(%r, %d scheduled)" % (
            type(self).__name__,
            self.machine.name,
            len(self._live),
        )
