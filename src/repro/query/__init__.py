"""Contention query modules: check / assign / assign&free / free.

Two internal representations of the partial schedule are provided, matching
the paper's Section 5:

* :class:`DiscreteQueryModule` — per-(resource, cycle) flag and owner
  entries; work is counted per resource usage.
* :class:`BitvectorQueryModule` — one bitvector per cycle, ``k`` packed per
  word; work is counted per non-empty word.

Both support arbitrary placement order, backtracking via ``assign_free``,
negative cycles (dangling block-boundary requirements), and modulo
reservation tables for software pipelining.
"""

from repro.query.alternatives import (
    FIRST_FIT,
    LEAST_USED,
    POLICIES,
    ROUND_ROBIN,
    order_variants,
)
from repro.query.base import ContentionQueryModule, ScheduledToken
from repro.query.bitvector import BitvectorQueryModule
from repro.query.discrete import DiscreteQueryModule
from repro.query.predicated import (
    TRUE,
    PredicatedDiscreteQueryModule,
    PredicateSpace,
)
from repro.query.modulo import (
    BITVECTOR,
    DISCRETE,
    REPRESENTATIONS,
    make_query_module,
)
from repro.query.work import (
    ASSIGN,
    ASSIGN_FREE,
    CHECK,
    FREE,
    FUNCTIONS,
    WorkCounters,
)

__all__ = [
    "ASSIGN",
    "FIRST_FIT",
    "LEAST_USED",
    "POLICIES",
    "ROUND_ROBIN",
    "order_variants",
    "ASSIGN_FREE",
    "BITVECTOR",
    "BitvectorQueryModule",
    "CHECK",
    "ContentionQueryModule",
    "DISCRETE",
    "DiscreteQueryModule",
    "FREE",
    "FUNCTIONS",
    "REPRESENTATIONS",
    "PredicateSpace",
    "PredicatedDiscreteQueryModule",
    "ScheduledToken",
    "TRUE",
    "WorkCounters",
    "make_query_module",
]
