"""Contention query modules: check / assign / assign&free / free.

Three internal representations of the partial schedule are provided — the
paper's Section 5 pair plus a compiled kernel:

* :class:`DiscreteQueryModule` — per-(resource, cycle) flag and owner
  entries; work is counted per resource usage.
* :class:`BitvectorQueryModule` — one bitvector per cycle, ``k`` packed per
  word; work is counted per non-empty word.
* :class:`CompiledQueryModule` — the whole reserved table as one big
  integer, with per-operation packed masks and pairwise (class x class)
  collision bitsets precompiled from the Step-1 forbidden latency
  matrix; batched window scans (``check_range`` / ``first_free``) cost
  one collision bitset per *live operation class placement*, not one
  table walk per window cycle.
* :class:`BatchQueryModule` — the columnar batch plane over the
  compiled kernel: per-class blocked columns are maintained
  incrementally across assigns/frees (numpy arrays when importable,
  pure-python packed-int columns otherwise — bit-identical either
  way), so any window scan is an O(1) column fetch charged to the
  ``batch`` currency, and whole corpora share one compiled kernel via
  :class:`SharedCompilation`.

All support arbitrary placement order, backtracking via ``assign_free``,
negative cycles (dangling block-boundary requirements), and modulo
reservation tables for software pipelining.
"""

from repro.query.alternatives import (
    FIRST_FIT,
    LEAST_USED,
    POLICIES,
    ROUND_ROBIN,
    order_variants,
)
from repro.query.base import (
    BLAME_RESERVED,
    BLAME_SELF,
    Blame,
    ContentionQueryModule,
    ScheduledToken,
)
from repro.query.batch import (
    BatchQueryModule,
    SharedCompilation,
    batch_backend,
    machine_digest,
    numpy_available,
)
from repro.query.bitvector import BitvectorQueryModule
from repro.query.compiled import (
    CompiledKernel,
    CompiledQueryModule,
    clear_kernel_cache,
    compiled_kernel,
)
from repro.query.discrete import DiscreteQueryModule
from repro.query.predicated import (
    TRUE,
    PredicatedDiscreteQueryModule,
    PredicateSpace,
)
from repro.query.modulo import (
    ALL_REPRESENTATIONS,
    BATCH,
    BITVECTOR,
    COMPILED,
    DISCRETE,
    REPRESENTATIONS,
    make_query_module,
)
from repro.query.work import (
    ASSIGN,
    ASSIGN_FREE,
    ATTRIBUTE,
    CHECK,
    CHECK_RANGE,
    COMPILE,
    FREE,
    FUNCTIONS,
    WorkCounters,
)

__all__ = [
    "ALL_REPRESENTATIONS",
    "ASSIGN",
    "ATTRIBUTE",
    "BATCH",
    "BatchQueryModule",
    "SharedCompilation",
    "batch_backend",
    "machine_digest",
    "numpy_available",
    "BLAME_RESERVED",
    "BLAME_SELF",
    "Blame",
    "FIRST_FIT",
    "LEAST_USED",
    "POLICIES",
    "ROUND_ROBIN",
    "order_variants",
    "ASSIGN_FREE",
    "BITVECTOR",
    "BitvectorQueryModule",
    "CHECK",
    "CHECK_RANGE",
    "COMPILE",
    "COMPILED",
    "CompiledKernel",
    "CompiledQueryModule",
    "ContentionQueryModule",
    "DISCRETE",
    "DiscreteQueryModule",
    "clear_kernel_cache",
    "compiled_kernel",
    "FREE",
    "FUNCTIONS",
    "REPRESENTATIONS",
    "PredicateSpace",
    "PredicatedDiscreteQueryModule",
    "ScheduledToken",
    "TRUE",
    "WorkCounters",
    "make_query_module",
]
