"""Work-unit accounting for contention query modules (paper Section 8).

The paper quantifies query-module performance in *work units*: one unit
handles a single resource usage (discrete representation) or a single
non-empty word of bitvectors (bitvector representation).  The overhead of
the optimistic-to-update mode transition of ``assign&free`` is charged in
the same currency.  Table 6 reports average work units per call for each
basic function, plus call frequencies and their weighted sum.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

CHECK = "check"
ASSIGN = "assign"
ASSIGN_FREE = "assign&free"
FREE = "free"
#: Batched window scans (``check_range`` / ``first_free``): one charge
#: per scan, costing one unit per word or collision bitset handled by
#: the kernel — the batched analogue of the per-call ``check`` currency.
CHECK_RANGE = "check_range"
#: Query-compilation work (packed reservation masks, pairwise collision
#: bitsets, per-II mask folding).  Charged deterministically per module
#: construction so bench gating never sees cache-warmth drift.
COMPILE = "compile"
#: Attributed contention tests (``check_attributed`` and the opt-in
#: ``attribute=`` window scans): one charge per blame computation, costing
#: one unit per usage or word inspected.  A separate currency so the
#: provenance plane never perturbs the paper's Table 6 numbers.
ATTRIBUTE = "attribute"
#: Background stack-profiler ticks (:mod:`repro.obs.sampler`): one charge
#: per captured stack.  A separate currency so an always-on sampler is
#: visible in the shared units registry without perturbing any query
#: trajectory — a sampler-off run charges exactly zero ``sample`` units.
SAMPLE = "sample"
#: Columnar batch-plane work (:mod:`repro.query.batch`): one charge per
#: bulk kernel invocation — a whole-window column fetch, or a
#: ``check_matrix`` / ``first_free_bulk`` / alternatives-scan call.
#: Modulo invocations cost one unit (a single vectorized ring-matrix
#: fetch covers every class touched); scalar invocations cost one unit
#: per distinct class column.  A separate currency so the corpus-scale
#: batch path is comparable against the per-loop
#: ``check``/``check_range`` numbers it replaces.
BATCH = "batch"

FUNCTIONS = (
    CHECK, ASSIGN, ASSIGN_FREE, FREE, CHECK_RANGE, COMPILE, ATTRIBUTE,
    SAMPLE, BATCH,
)


@dataclass
class WorkCounters:
    """Per-function call and work-unit counters.

    Every query-module entry point charges at least one unit per call (a
    finite-resource model must touch at least one usage or word), matching
    the paper's "absolute minimum" of 1.0 work units per call.
    """

    calls: Counter = field(default_factory=Counter)
    units: Counter = field(default_factory=Counter)

    def charge(self, function: str, work: int) -> None:
        """Record one call to ``function`` costing ``work`` units."""
        self.calls[function] += 1
        self.units[function] += max(1, work)

    def reset(self) -> None:
        self.calls.clear()
        self.units.clear()

    def merge(self, other: "WorkCounters") -> None:
        """Accumulate another counter set into this one."""
        self.calls.update(other.calls)
        self.units.update(other.units)

    def per_call(self, function: str) -> float:
        """Average work units per call of ``function`` (0.0 if never called)."""
        calls = self.calls[function]
        if not calls:
            return 0.0
        return self.units[function] / calls

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    @property
    def total_units(self) -> int:
        return sum(self.units.values())

    def frequencies(self) -> Dict[str, float]:
        """Relative call frequency of each basic function."""
        total = self.total_calls
        if not total:
            return {fn: 0.0 for fn in FUNCTIONS}
        return {fn: self.calls[fn] / total for fn in FUNCTIONS}

    def weighted_average(self) -> float:
        """Average work units per call across all functions.

        This is the paper's "weighted sum" row: per-function averages
        weighted by call frequencies, which algebraically equals total
        units over total calls.
        """
        total = self.total_calls
        if not total:
            return 0.0
        return self.total_units / total

    def report(self, functions: Iterable[str] = FUNCTIONS) -> str:
        """Human-readable summary, one line per function."""
        lines = []
        for fn in functions:
            lines.append(
                "%-12s %8d calls  %10.3f units/call"
                % (fn, self.calls[fn], self.per_call(fn))
            )
        lines.append(
            "%-12s %8d calls  %10.3f units/call (weighted)"
            % ("total", self.total_calls, self.weighted_average())
        )
        return "\n".join(lines)
