"""Bitvector-representation contention query module (paper Sections 5 & 7).

The reserved table packs one bitvector per schedule cycle (bit = resource)
and ``k`` consecutive cycle-vectors per memory word.  A ``check`` then ANDs
each non-empty word of the operation's precompiled reservation-table mask
against the reserved word and tests for zero, detecting contentions for
``k`` cycles with one word operation; a word handled is one work unit.

``assign&free`` uses the paper's optimistic strategy: while no eviction has
ever been needed, owner fields are not maintained and the function runs on
pure word operations.  The first contention forces a one-time scan of the
scheduled-operation list to reconstruct owner fields (charged as work), and
the module stays in *update mode* thereafter, where ``assign&free`` iterates
over resource usages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.query.base import (
    BLAME_RESERVED,
    BLAME_SELF,
    Blame,
    ContentionQueryModule,
    ScheduledToken,
)
from repro.query.work import CHECK_RANGE


class BitvectorQueryModule(ContentionQueryModule):
    """Query module over packed per-word reserved bitvectors.

    Parameters
    ----------
    machine:
        Machine description; its resource order defines bit positions.
    word_cycles:
        Number of cycle-bitvectors packed per memory word (``k``).  With R
        resources a word holds ``k * R`` bits; the paper's 32/64-bit studies
        correspond to the largest k with ``k * R <= word size``.
    modulo:
        Optional initiation interval: cycles wrap, making this a Modulo
        Reservation Table for software pipelining.
    """

    def __init__(
        self,
        machine: MachineDescription,
        word_cycles: int = 1,
        modulo: Optional[int] = None,
    ):
        super().__init__(machine)
        if word_cycles < 1:
            raise ValueError("word_cycles must be >= 1")
        if modulo is not None and modulo < 1:
            raise ValueError("modulo initiation interval must be >= 1")
        self.word_cycles = word_cycles
        self.modulo = modulo
        self._bit_of = {r: i for i, r in enumerate(machine.resources)}
        self._stride = max(1, machine.num_resources)
        self._words: Dict[int, int] = {}
        # Owner fields, maintained only in update mode (or for plain free).
        self._owners: Dict[Tuple[int, int], int] = {}
        self._update_mode = False
        # Precompiled reservation-table masks, in two normalized caches.
        #
        # ``_rel_masks`` holds *relative* word masks keyed by
        # ``(op, cycle mod k)``: the mask layout only depends on the
        # issue cycle's alignment within a word, so at most ``k`` entries
        # exist per operation no matter how many cycles a run probes.
        # Modulo tables share these entries for every alignment whose
        # table does not wrap around the MRT end, so only the (at most
        # ``length - 1``) wrapping alignments occupy ``_mrt_masks``,
        # which stores absolute folded MRT words plus the self-conflict
        # flag.  This bounds the cache at ``ops x (k + table span)``
        # entries where the old per-alignment cache grew with ``ops x
        # II`` across long pipelining runs.
        self._rel_masks: Dict[
            Tuple[str, int], Tuple[Tuple[int, int], ...]
        ] = {}
        self._mrt_masks: Dict[
            Tuple[str, int], Tuple[Tuple[Tuple[int, int], ...], bool]
        ] = {}
        self._span: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Bit layout
    # ------------------------------------------------------------------
    def _bit_position(self, resource: str, packed_cycle: int) -> int:
        return packed_cycle * self._stride + self._bit_of[resource]

    def _cycle_key(self, cycle: int) -> int:
        """Schedule cycle normalized for the owner map (wraps for modulo)."""
        if self.modulo is not None:
            return cycle % self.modulo
        return cycle

    def _table_span(self, op: str) -> int:
        """Reservation-table length of ``op`` in cycles (cached)."""
        span = self._span.get(op)
        if span is None:
            span = self.machine.table(op).length
            self._span[op] = span
        return span

    def _relative_masks(
        self, op: str, alignment: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Word masks of ``op`` at in-word ``alignment`` (``< k``).

        Word indices are relative to the issue cycle's word base; the
        caller adds ``cycle // k``.  Shared by scalar tables and by every
        non-wrapping modulo alignment.
        """
        key = (op, alignment)
        cached = self._rel_masks.get(key)
        if cached is not None:
            return cached
        accum: Dict[int, int] = {}
        for resource, use_cycle in self.machine.table(op).iter_usages():
            position = alignment + use_cycle
            word = position // self.word_cycles
            accum[word] = accum.get(word, 0) | (
                1 << self._bit_position(resource, position % self.word_cycles)
            )
        masks = tuple(sorted(accum.items()))
        self._rel_masks[key] = masks
        return masks

    def _folded_masks(
        self, op: str, alignment: int
    ) -> Tuple[Tuple[Tuple[int, int], ...], bool]:
        """Absolute folded MRT word masks for a *wrapping* alignment.

        Only alignments whose table crosses the MRT end land here; the
        fold can put two usages of one resource onto the same MRT slot
        (II below a self-forbidden latency), recorded as the
        self-conflict flag — such a placement is never legal.
        """
        key = (op, alignment)
        cached = self._mrt_masks.get(key)
        if cached is not None:
            return cached
        accum: Dict[int, int] = {}
        self_conflict = False
        for resource, use_cycle in self.machine.table(op).iter_usages():
            absolute = (alignment + use_cycle) % self.modulo
            word = absolute // self.word_cycles
            bit = 1 << self._bit_position(
                resource, absolute % self.word_cycles
            )
            if accum.get(word, 0) & bit:
                self_conflict = True
            accum[word] = accum.get(word, 0) | bit
        entry = (tuple(sorted(accum.items())), self_conflict)
        self._mrt_masks[key] = entry
        return entry

    def _placed_masks(self, op: str, cycle: int) -> List[Tuple[int, int]]:
        """(absolute word index, mask) pairs for ``op`` issued at ``cycle``."""
        if self.modulo is None:
            base = cycle // self.word_cycles
            masks = self._relative_masks(op, cycle % self.word_cycles)
            return [(base + offset, mask) for offset, mask in masks]
        alignment = cycle % self.modulo
        if alignment + self._table_span(op) <= self.modulo:
            base = alignment // self.word_cycles
            masks = self._relative_masks(op, alignment % self.word_cycles)
            return [(base + offset, mask) for offset, mask in masks]
        masks, _self_conflict = self._folded_masks(op, alignment)
        return list(masks)

    def _self_conflicts(self, op: str, cycle: int) -> bool:
        """True when the op's own usages wrap onto one MRT slot."""
        if self.modulo is None:
            return False
        alignment = cycle % self.modulo
        if alignment + self._table_span(op) <= self.modulo:
            return False
        return self._folded_masks(op, alignment)[1]

    def _usage_slots(self, op: str, cycle: int) -> List[Tuple[int, int]]:
        """(resource bit, cycle key) per usage — owner-map granularity."""
        table = self.machine.table(op)
        return [
            (self._bit_of[r], self._cycle_key(cycle + c))
            for r, c in table.iter_usages()
        ]

    # ------------------------------------------------------------------
    # Representation hooks
    # ------------------------------------------------------------------
    def _check(self, op: str, cycle: int) -> Tuple[bool, int]:
        if self._self_conflicts(op, cycle):
            return False, 1
        units = 0
        for word, mask in self._placed_masks(op, cycle):
            units += 1
            if self._words.get(word, 0) & mask:
                return False, units
        return True, units

    def _check_blame(self, op: str, cycle: int) -> Tuple[bool, Optional[Blame], int]:
        units = 0
        if self._self_conflicts(op, cycle):
            # Name the smallest duplicated MRT slot by walking the usages
            # (the folded word masks have already collapsed the duplicate).
            counts: Dict[Tuple[int, int], int] = {}
            for resource, use_cycle in self.machine.table(op).iter_usages():
                units += 1
                slot = ((cycle + use_cycle) % self.modulo, self._bit_of[resource])
                counts[slot] = counts.get(slot, 0) + 1
            slot_cycle, bit = min(s for s, n in counts.items() if n > 1)
            blame = Blame(self.machine.resources[bit], slot_cycle, BLAME_SELF)
            return False, blame, units
        # Word masks are sorted by ascending word index, so the first
        # colliding word's lowest set bit is the canonical (cycle,
        # resource-index) minimum over every blocked cell.
        for word, mask in self._placed_masks(op, cycle):
            units += 1
            collision = self._words.get(word, 0) & mask
            if collision:
                position = (collision & -collision).bit_length() - 1
                packed_cycle, bit = divmod(position, self._stride)
                cell_cycle = word * self.word_cycles + packed_cycle
                owner_op = owner_cycle = None
                owner_ident = self._owners.get((bit, cell_cycle))
                if owner_ident is not None:
                    owner = self._live.get(owner_ident)
                    if owner is not None:
                        owner_op, owner_cycle = owner.op, owner.cycle
                blame = Blame(
                    self.machine.resources[bit],
                    cell_cycle,
                    BLAME_RESERVED,
                    owner_op,
                    owner_cycle,
                )
                return False, blame, units
        return True, None, units

    def _assign(self, token: ScheduledToken, with_owners: bool) -> int:
        units = 0
        for word, mask in self._placed_masks(token.op, token.cycle):
            units += 1
            self._words[word] = self._words.get(word, 0) | mask
        if with_owners:
            for slot in self._usage_slots(token.op, token.cycle):
                self._owners[slot] = token.ident
        return units

    def _free(self, token: ScheduledToken, with_owners: bool) -> int:
        units = 0
        for word, mask in self._placed_masks(token.op, token.cycle):
            units += 1
            remaining = self._words.get(word, 0) & ~mask
            if remaining:
                self._words[word] = remaining
            else:
                self._words.pop(word, None)
        if with_owners and self._update_mode:
            for slot in self._usage_slots(token.op, token.cycle):
                self._owners.pop(slot, None)
        return units

    def _assign_free(self, token: ScheduledToken) -> Tuple[List[ScheduledToken], int]:
        if not self._update_mode:
            # Optimistic mode: single word-level test-and-set pass.
            units = 0
            conflict = False
            placed = self._placed_masks(token.op, token.cycle)
            for word, mask in placed:
                units += 1
                if self._words.get(word, 0) & mask:
                    conflict = True
                    break
            if not conflict:
                for word, mask in placed:
                    self._words[word] = self._words.get(word, 0) | mask
                return [], units
            # Mode transition: rebuild owner fields by scanning the whole
            # scheduled-operation list (the paper's transition overhead).
            self._update_mode = True
            for scheduled in self._live.values():
                for slot in self._usage_slots(scheduled.op, scheduled.cycle):
                    units += 1
                    self._owners[slot] = scheduled.ident
            return self._assign_free_update(token, units)
        return self._assign_free_update(token, 0)

    def _assign_free_update(
        self, token: ScheduledToken, units: int
    ) -> Tuple[List[ScheduledToken], int]:
        """Update-mode assign&free: iterate usages, evicting owners.

        Work is one unit per usage of the incoming operation (the paper's
        update-mode cost) plus one per usage of each evicted operation
        (their entries must be cleared); the word-level bit updates ride
        along for free, as a word is handled together with its usages.
        """
        evicted: List[ScheduledToken] = []
        evicted_idents = set()
        for slot in self._usage_slots(token.op, token.cycle):
            units += 1
            owner = self._owners.get(slot)
            if owner is not None and owner != token.ident and owner not in evicted_idents:
                victim = self._live[owner]
                evicted_idents.add(owner)
                evicted.append(victim)
                for victim_slot in self._usage_slots(victim.op, victim.cycle):
                    units += 1
                    self._owners.pop(victim_slot, None)
                self._free(victim, with_owners=False)
            self._owners[slot] = token.ident
        self._assign(token, with_owners=False)
        return evicted, units

    def _reset_state(self) -> None:
        self._words.clear()
        self._owners.clear()
        self._update_mode = False

    def _snapshot_state(self):
        return (dict(self._words), dict(self._owners), self._update_mode)

    def _restore_state(self, state) -> None:
        words, owners, update_mode = state
        self._words = dict(words)
        self._owners = dict(owners)
        self._update_mode = update_mode

    # ------------------------------------------------------------------
    # Batched window scans
    # ------------------------------------------------------------------
    def check_range(
        self,
        op: str,
        start: int,
        stop: int,
        attribute: Optional[List[Tuple[int, Blame]]] = None,
    ) -> List[bool]:
        """Word-scan fast path: one charge for the whole window.

        Each reserved word is fetched once per scan no matter how many
        window cycles its masks test against it, so the scan costs one
        work unit per *distinct* word handled — the batched analogue of
        the per-``check`` word currency — instead of one per word per
        probed cycle.
        """
        if attribute is not None:
            return self._attributed_check_range(op, start, stop, attribute)
        fetched: Dict[int, int] = {}
        flags = [
            self._probe(op, cycle, fetched)
            for cycle in range(start, stop)
        ]
        self.work.charge(CHECK_RANGE, len(fetched))
        return flags

    def first_free(
        self,
        op: str,
        start: int,
        stop: int,
        direction: int = 1,
        attribute: Optional[List[Tuple[int, Blame]]] = None,
    ) -> Optional[int]:
        """Word-scan fast path of the window scan (see :meth:`check_range`)."""
        if attribute is not None:
            return self._attributed_first_free(op, start, stop, direction, attribute)
        fetched: Dict[int, int] = {}
        result = None
        for cycle in self._window(start, stop, direction):
            if self._probe(op, cycle, fetched):
                result = cycle
                break
        self.work.charge(CHECK_RANGE, len(fetched))
        return result

    def first_free_with_alternatives(
        self, op: str, start: int, stop: int, direction: int = 1
    ) -> Tuple[Optional[int], Optional[str]]:
        return self._first_free_by_variant(op, start, stop, direction)

    def _probe(self, op: str, cycle: int, fetched: Dict[int, int]) -> bool:
        """One contention test against the scan's word-fetch cache."""
        if self._self_conflicts(op, cycle):
            return False
        for word, mask in self._placed_masks(op, cycle):
            value = fetched.get(word)
            if value is None:
                value = self._words.get(word, 0)
                fetched[word] = value
            if value & mask:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_update_mode(self) -> bool:
        """True after the first eviction forced owner-field maintenance."""
        return self._update_mode

    def word_at(self, index: int) -> int:
        """Raw reserved word at ``index`` (0 when untouched)."""
        return self._words.get(index, 0)

    def state_bits_per_cycle(self) -> int:
        """Reserved-table bits per schedule cycle: one per resource."""
        return self.machine.num_resources

    def bits_per_word(self) -> int:
        """Bits used in each packed word (``k`` cycles x resources)."""
        return self.word_cycles * self._stride
