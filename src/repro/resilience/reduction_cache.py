"""Digest-keyed reduction cache (memo + crash-safe disk artifacts).

Reducing a machine description is deterministic in ``(machine, objective,
word_cycles)``, so repeated reductions of one machine — across profile
runs, schedulers, or CLI invocations — are pure waste.  This module keys
each reduction by a SHA-256 digest of the canonical MDL serialization
plus the reduction parameters and serves repeats from two tiers:

1. an in-process memo (same interpreter, zero cost), and
2. an on-disk artifact directory of checksummed MDL files written
   through :mod:`repro.resilience.artifacts` (atomic write + sidecar),
   each paired with its preservation certificate
   (``reduce-<digest>.cert.json``).

A disk hit is *never trusted blindly*: the artifact's byte checksum is
verified by :func:`~repro.resilience.artifacts.read_artifact`, and the
loaded reduced description is then proven equivalent to the requesting
machine by validating its stored **certificate** with
:func:`repro.core.certificate.check_certificate` — soundness plus
coverage of the Theorem-1 witness pairs, at a fraction of the work of
re-deriving both forbidden matrices.  ``paranoid=True`` restores the
old behaviour and re-runs the full
:func:`repro.core.verify.assert_equivalent` matrix comparison instead.
Entries written before certificates existed (no ``.cert.json``) are
verified the old way and *healed*: a certificate is issued and stored so
the next hit takes the cheap path.  Any failure (truncation, bit flips,
stale entries from a different machine colliding on a path, version
skew) falls back to a fresh reduction and rewrites the entry, so a
corrupt cache can cost time but never correctness.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import mdl
from repro.core.certificate import (
    Certificate,
    certificate_from_machines,
    check_certificate,
    issue_certificate,
)
from repro.core.machine import MachineDescription
from repro.core.reduce import Reduction, reduce_machine
from repro.core.selection import RES_USES
from repro.core.verify import assert_equivalent
from repro.errors import (
    ArtifactIntegrityError,
    CertificateError,
    EquivalenceError,
)
from repro.obs import trace as obs
from repro.resilience.artifacts import (
    load_certificate,
    load_machine,
    write_certificate,
    write_machine,
)

#: Bump when the digest recipe or artifact layout changes: old entries
#: then simply miss instead of failing verification one by one.
CACHE_SCHEMA_VERSION = 1

#: Cache sources, in lookup order.
SOURCE_MEMO = "memo"
SOURCE_DISK = "disk"
SOURCE_FRESH = "fresh"

#: How a served reduction was proven equivalent to the request.
VERIFIED_CERTIFICATE = "certificate"
VERIFIED_EQUIVALENCE = "equivalence"
VERIFIED_FRESH = "fresh"
VERIFIED_MEMO = "memo"

_MEMO: Dict[
    str,
    Tuple[MachineDescription, Optional[Reduction], Optional[Certificate]],
] = {}


def reduction_digest(
    machine: MachineDescription,
    objective: str = RES_USES,
    word_cycles: int = 1,
) -> str:
    """Digest keying one reduction: parameters + canonical MDL text.

    The MDL serialization is canonical (sorted usages, stable layout),
    so two structurally identical descriptions share a digest even when
    built through different code paths.
    """
    payload = "\n".join(
        (
            "repro-reduction-cache/%d" % CACHE_SCHEMA_VERSION,
            "objective=%s" % objective,
            "word_cycles=%d" % word_cycles,
            mdl.dumps(machine),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_entry_path(cache_dir: str, digest: str) -> str:
    """Artifact path of a cache entry inside ``cache_dir``."""
    return os.path.join(cache_dir, "reduce-%s.mdl" % digest[:16])


def certificate_entry_path(cache_dir: str, digest: str) -> str:
    """Path of the preservation certificate paired with a cache entry."""
    return os.path.join(cache_dir, "reduce-%s.cert.json" % digest[:16])


def clear_reduction_memo() -> None:
    """Drop the in-process memo tier (tests / memory pressure)."""
    _MEMO.clear()


@dataclass
class CachedReduction:
    """Outcome of one cache-aware reduction.

    Attributes
    ----------
    original / reduced:
        The requesting machine and its (verified) reduced equivalent.
    source:
        ``"memo"``, ``"disk"``, or ``"fresh"``.
    digest:
        The full reduction digest keying this entry.
    path:
        The disk artifact path, when a cache directory was given.
    reduction:
        The full :class:`~repro.core.reduce.Reduction` (matrix,
        generating set, selection) — populated when the reduction ran in
        this process (fresh, or memoized from a fresh run); ``None`` for
        disk hits, which only persist the reduced description.
    certificate:
        The preservation certificate binding ``original`` to
        ``reduced`` (``None`` only for pre-certificate memo entries).
    verification:
        How this result was proven: ``"certificate"`` (disk hit checked
        via its stored certificate), ``"equivalence"`` (full matrix
        comparison — paranoid mode or a legacy entry), ``"fresh"`` (the
        reduction itself verified), or ``"memo"`` (verified earlier in
        this process).
    verify_units:
        Work units the certificate check spent (0 when no certificate
        check ran) — the measurable saving over ``assert_equivalent``.
    """

    original: MachineDescription
    reduced: MachineDescription
    source: str
    digest: str
    path: Optional[str] = None
    reduction: Optional[Reduction] = None
    certificate: Optional[Certificate] = None
    verification: str = VERIFIED_FRESH
    verify_units: int = 0


def _verify_disk_hit(
    machine: MachineDescription,
    path: str,
    cert_path: str,
    paranoid: bool,
    budget=None,
) -> Tuple[MachineDescription, Optional[Certificate], str, int]:
    """Load and prove one disk entry; raises on any verification failure.

    Returns ``(loaded, certificate, verification, units)``.  In the
    certificate path the expensive matrix recomputations are skipped
    entirely: the byte checksum plus the structural soundness/coverage
    proof replace both ``load_machine``'s matrix-digest re-derivation
    and ``assert_equivalent``.  A :class:`~repro.errors.BudgetExceeded`
    raised inside the certificate check is a *structured* failure of the
    caller's budget, not cache corruption — it propagates instead of
    triggering the fresh-reduction fallback, so a hit is never served
    with its verification half-done.
    """
    if paranoid:
        loaded = load_machine(path)
        assert_equivalent(machine, loaded)
        certificate: Optional[Certificate] = None
        if os.path.exists(cert_path):
            certificate = load_certificate(cert_path)
            check_certificate(
                certificate, machine, loaded, recompute_matrix=True,
                budget=budget,
            )
        return loaded, certificate, VERIFIED_EQUIVALENCE, 0
    if not os.path.exists(cert_path):
        # Legacy entry from before certificates: verify the old way and
        # heal by issuing + storing the missing certificate.
        loaded = load_machine(path)
        assert_equivalent(machine, loaded)
        certificate = certificate_from_machines(machine, loaded, budget=budget)
        write_certificate(cert_path, certificate)
        obs.count("cache.reduction.certificate_healed")
        return loaded, certificate, VERIFIED_EQUIVALENCE, 0
    loaded = load_machine(path, verify_matrix=False)
    certificate = load_certificate(cert_path)
    check = check_certificate(
        certificate, machine, loaded, recompute_matrix=False, budget=budget
    )
    obs.count("cache.reduction.certificate_hit")
    obs.count("cache.reduction.certificate_units", value=check.units)
    return loaded, certificate, VERIFIED_CERTIFICATE, check.units


def cached_reduce(
    machine: MachineDescription,
    objective: str = RES_USES,
    word_cycles: int = 1,
    cache_dir: Optional[str] = None,
    use_memo: bool = True,
    paranoid: bool = False,
    budget=None,
) -> CachedReduction:
    """Reduce ``machine``, serving verified repeats from the cache.

    Lookup order is memo, then disk (when ``cache_dir`` is given), then
    a fresh :func:`~repro.core.reduce.reduce_machine`.  Fresh results
    are written back to both tiers together with their preservation
    certificate; disk entries that fail checksum, certificate, or
    equivalence verification are *replaced* by the fresh result.  Never
    raises on cache corruption — only on a failed fresh reduction
    itself.

    ``paranoid=True`` re-proves disk hits with the full
    :func:`~repro.core.verify.assert_equivalent` matrix comparison (and
    additionally validates the stored certificate in full mode when one
    exists) instead of the cheaper certificate check.

    ``budget`` threads :class:`~repro.core.budget.Budget` checkpoints
    through warm-hit certificate verification and the fresh reduction.
    Running out of budget *mid-verification* raises
    :class:`~repro.errors.BudgetExceeded` — a structured, reportable
    degradation — rather than falling back as if the entry were
    corrupt; an unverified hit is never served.
    """
    digest = reduction_digest(machine, objective, word_cycles)
    path = cache_entry_path(cache_dir, digest) if cache_dir else None
    cert_path = (
        certificate_entry_path(cache_dir, digest) if cache_dir else None
    )

    if use_memo:
        hit = _MEMO.get(digest)
        if hit is not None:
            obs.count("cache.reduction.memo_hit")
            reduced, reduction, certificate = hit
            return CachedReduction(
                original=machine, reduced=reduced, source=SOURCE_MEMO,
                digest=digest, path=path, reduction=reduction,
                certificate=certificate, verification=VERIFIED_MEMO,
            )

    if path is not None and os.path.exists(path):
        try:
            with obs.span(
                "cache.reduction.load", obs.CAT_REDUCE,
                machine=machine.name, paranoid=paranoid,
            ):
                loaded, certificate, verification, units = _verify_disk_hit(
                    machine, path, cert_path, paranoid, budget=budget
                )
        except (
            ArtifactIntegrityError, CertificateError, EquivalenceError,
        ) as exc:
            obs.count("cache.reduction.rejected")
            obs.event(
                "cache.reduction.fallback", obs.CAT_REDUCE,
                machine=machine.name, path=path, error=str(exc),
            )
        else:
            obs.count("cache.reduction.disk_hit")
            if use_memo:
                _MEMO[digest] = (loaded, None, certificate)
            return CachedReduction(
                original=machine, reduced=loaded, source=SOURCE_DISK,
                digest=digest, path=path, reduction=None,
                certificate=certificate, verification=verification,
                verify_units=units,
            )

    obs.count("cache.reduction.miss")
    reduction = reduce_machine(
        machine, objective=objective, word_cycles=word_cycles, budget=budget
    )
    certificate = issue_certificate(reduction)
    if path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        write_machine(path, reduction.reduced)
        write_certificate(cert_path, certificate)
    if use_memo:
        _MEMO[digest] = (reduction.reduced, reduction, certificate)
    return CachedReduction(
        original=machine, reduced=reduction.reduced, source=SOURCE_FRESH,
        digest=digest, path=path, reduction=reduction,
        certificate=certificate, verification=VERIFIED_FRESH,
    )


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CachedReduction",
    "SOURCE_DISK",
    "SOURCE_FRESH",
    "SOURCE_MEMO",
    "VERIFIED_CERTIFICATE",
    "VERIFIED_EQUIVALENCE",
    "VERIFIED_FRESH",
    "VERIFIED_MEMO",
    "cache_entry_path",
    "cached_reduce",
    "certificate_entry_path",
    "clear_reduction_memo",
    "reduction_digest",
]
