"""Digest-keyed reduction cache (memo + crash-safe disk artifacts).

Reducing a machine description is deterministic in ``(machine, objective,
word_cycles)``, so repeated reductions of one machine — across profile
runs, schedulers, or CLI invocations — are pure waste.  This module keys
each reduction by a SHA-256 digest of the canonical MDL serialization
plus the reduction parameters and serves repeats from two tiers:

1. an in-process memo (same interpreter, zero cost), and
2. an on-disk artifact directory of checksummed MDL files written
   through :mod:`repro.resilience.artifacts` (atomic write + sidecar).

A disk hit is *never trusted blindly*: the artifact's byte checksum and
recorded forbidden-matrix digest are verified by
:func:`~repro.resilience.artifacts.load_machine`, and the loaded reduced
description is then re-proven equivalent to the requesting machine with
:func:`repro.core.verify.assert_equivalent` — the same Theorem-1 runtime
check a fresh reduction gets.  Any failure (truncation, bit flips, stale
entries from a different machine colliding on a path, version skew)
falls back to a fresh reduction and rewrites the entry, so a corrupt
cache can cost time but never correctness.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import mdl
from repro.core.machine import MachineDescription
from repro.core.reduce import Reduction, reduce_machine
from repro.core.selection import RES_USES
from repro.core.verify import assert_equivalent
from repro.errors import EquivalenceError, ArtifactIntegrityError
from repro.obs import trace as obs
from repro.resilience.artifacts import load_machine, write_machine

#: Bump when the digest recipe or artifact layout changes: old entries
#: then simply miss instead of failing verification one by one.
CACHE_SCHEMA_VERSION = 1

#: Cache sources, in lookup order.
SOURCE_MEMO = "memo"
SOURCE_DISK = "disk"
SOURCE_FRESH = "fresh"

_MEMO: Dict[str, Tuple[MachineDescription, Optional[Reduction]]] = {}


def reduction_digest(
    machine: MachineDescription,
    objective: str = RES_USES,
    word_cycles: int = 1,
) -> str:
    """Digest keying one reduction: parameters + canonical MDL text.

    The MDL serialization is canonical (sorted usages, stable layout),
    so two structurally identical descriptions share a digest even when
    built through different code paths.
    """
    payload = "\n".join(
        (
            "repro-reduction-cache/%d" % CACHE_SCHEMA_VERSION,
            "objective=%s" % objective,
            "word_cycles=%d" % word_cycles,
            mdl.dumps(machine),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_entry_path(cache_dir: str, digest: str) -> str:
    """Artifact path of a cache entry inside ``cache_dir``."""
    return os.path.join(cache_dir, "reduce-%s.mdl" % digest[:16])


def clear_reduction_memo() -> None:
    """Drop the in-process memo tier (tests / memory pressure)."""
    _MEMO.clear()


@dataclass
class CachedReduction:
    """Outcome of one cache-aware reduction.

    Attributes
    ----------
    original / reduced:
        The requesting machine and its (verified) reduced equivalent.
    source:
        ``"memo"``, ``"disk"``, or ``"fresh"``.
    digest:
        The full reduction digest keying this entry.
    path:
        The disk artifact path, when a cache directory was given.
    reduction:
        The full :class:`~repro.core.reduce.Reduction` (matrix,
        generating set, selection) — populated when the reduction ran in
        this process (fresh, or memoized from a fresh run); ``None`` for
        disk hits, which only persist the reduced description.
    """

    original: MachineDescription
    reduced: MachineDescription
    source: str
    digest: str
    path: Optional[str] = None
    reduction: Optional[Reduction] = None


def cached_reduce(
    machine: MachineDescription,
    objective: str = RES_USES,
    word_cycles: int = 1,
    cache_dir: Optional[str] = None,
    use_memo: bool = True,
) -> CachedReduction:
    """Reduce ``machine``, serving verified repeats from the cache.

    Lookup order is memo, then disk (when ``cache_dir`` is given), then
    a fresh :func:`~repro.core.reduce.reduce_machine`.  Fresh results
    are written back to both tiers; disk entries that fail checksum,
    matrix-digest, or equivalence verification are *replaced* by the
    fresh result.  Never raises on cache corruption — only on a failed
    fresh reduction itself.
    """
    digest = reduction_digest(machine, objective, word_cycles)
    path = cache_entry_path(cache_dir, digest) if cache_dir else None

    if use_memo:
        hit = _MEMO.get(digest)
        if hit is not None:
            obs.count("cache.reduction.memo_hit")
            reduced, reduction = hit
            return CachedReduction(
                original=machine, reduced=reduced, source=SOURCE_MEMO,
                digest=digest, path=path, reduction=reduction,
            )

    if path is not None and os.path.exists(path):
        try:
            with obs.span(
                "cache.reduction.load", obs.CAT_REDUCE,
                machine=machine.name,
            ):
                loaded = load_machine(path)
                assert_equivalent(machine, loaded)
        except (ArtifactIntegrityError, EquivalenceError) as exc:
            obs.count("cache.reduction.rejected")
            obs.event(
                "cache.reduction.fallback", obs.CAT_REDUCE,
                machine=machine.name, path=path, error=str(exc),
            )
        else:
            obs.count("cache.reduction.disk_hit")
            if use_memo:
                _MEMO[digest] = (loaded, None)
            return CachedReduction(
                original=machine, reduced=loaded, source=SOURCE_DISK,
                digest=digest, path=path, reduction=None,
            )

    obs.count("cache.reduction.miss")
    reduction = reduce_machine(
        machine, objective=objective, word_cycles=word_cycles
    )
    if path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        write_machine(path, reduction.reduced)
    if use_memo:
        _MEMO[digest] = (reduction.reduced, reduction)
    return CachedReduction(
        original=machine, reduced=reduction.reduced, source=SOURCE_FRESH,
        digest=digest, path=path, reduction=reduction,
    )


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CachedReduction",
    "SOURCE_DISK",
    "SOURCE_FRESH",
    "SOURCE_MEMO",
    "cache_entry_path",
    "cached_reduce",
    "clear_reduction_memo",
    "reduction_digest",
]
