"""Deterministic, seed-driven fault injection for the resilience layer.

Every fault class the artifact store and fallback ladder claim to handle
is exercised here, from the CLI (``repro chaos <machine> --seed N``) and
from the test-suite.  All randomness is derived from
``(machine, seed, fault)``, so a chaos run is a reproducible experiment,
not a flake generator.

Fault classes
-------------
``drop-usage``
    A usage vanishes from the reduced description before it is served —
    the classic manual-reduction error the paper opens with.  The ladder
    must catch it in verification and degrade.
``shift-usage``
    An operation's reservation table shifts by one cycle — same contract.
``phase-delay``
    The budget clock jumps mid-pipeline, expiring every deadline; the
    ladder must degrade instead of hanging or failing opaquely.
``truncate-write``
    A machine artifact loses its tail bytes after the write (simulating a
    crash that bypassed the atomic writer); loading must refuse it.
``flip-checksum``
    One hex digit of the sidecar's recorded SHA-256 flips; loading must
    refuse with the expected/actual digests named.
``corrupt-cache``
    A reduction-cache entry (see
    :mod:`repro.resilience.reduction_cache`) is corrupted on disk after
    a successful write; the next lookup must reject it, serve a fresh
    verified reduction, and heal the entry in place.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.machine import MachineDescription
from repro.errors import ArtifactIntegrityError, ReproError
from repro.obs import trace as obs
from repro.resilience import artifacts
from repro.resilience.fallback import (
    FallbackPolicy,
    RUNG_REDUCED,
    reduce_with_fallback,
)

FAULT_DROP_USAGE = "drop-usage"
FAULT_SHIFT_USAGE = "shift-usage"
FAULT_PHASE_DELAY = "phase-delay"
FAULT_TRUNCATE_WRITE = "truncate-write"
FAULT_FLIP_CHECKSUM = "flip-checksum"
FAULT_CORRUPT_CACHE = "corrupt-cache"

FAULTS = (
    FAULT_DROP_USAGE,
    FAULT_SHIFT_USAGE,
    FAULT_PHASE_DELAY,
    FAULT_TRUNCATE_WRITE,
    FAULT_FLIP_CHECKSUM,
    FAULT_CORRUPT_CACHE,
)

CHAOS_SCHEMA_NAME = "repro-chaos-report"
CHAOS_SCHEMA_VERSION = 1

#: How a fault was handled: the ladder served a safe degraded result, or
#: the integrity layer refused the corrupt input outright.
MODE_SURVIVED = "survived-fallback"
MODE_DETECTED = "detected"


@dataclass
class FaultOutcome:
    """The outcome of injecting one fault class."""

    fault: str
    handled: bool
    mode: str
    detail: str
    rung: Optional[str] = None
    verified: Optional[bool] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "fault": self.fault,
            "handled": self.handled,
            "mode": self.mode,
            "detail": self.detail,
            "rung": self.rung,
            "verified": self.verified,
        }


@dataclass
class ChaosReport:
    """All fault outcomes of one chaos run."""

    machine: str
    seed: int
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.handled for outcome in self.outcomes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CHAOS_SCHEMA_NAME,
            "version": CHAOS_SCHEMA_VERSION,
            "machine": self.machine,
            "seed": self.seed,
            "ok": self.ok,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def render_text(self) -> str:
        lines = [
            "chaos run: machine=%s seed=%d" % (self.machine, self.seed),
            "",
            "  %-16s %-8s %-18s %-20s %s"
            % ("fault", "handled", "mode", "rung", "detail"),
        ]
        for outcome in self.outcomes:
            lines.append(
                "  %-16s %-8s %-18s %-20s %s"
                % (
                    outcome.fault,
                    "ok" if outcome.handled else "FAILED",
                    outcome.mode,
                    outcome.rung or "-",
                    outcome.detail,
                )
            )
        lines.append("")
        lines.append(
            "result: %s (%d/%d faults handled)"
            % (
                "OK" if self.ok else "FAILED",
                sum(o.handled for o in self.outcomes),
                len(self.outcomes),
            )
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Deterministic corruption primitives
# ----------------------------------------------------------------------
def _rng(machine: MachineDescription, seed: int, fault: str) -> random.Random:
    return random.Random("%s:%d:%s" % (machine.name, seed, fault))


def corrupt_drop_usage(
    machine: MachineDescription, rng: random.Random
) -> MachineDescription:
    """Drop one rng-chosen usage from a description."""
    usages = [
        (op, resource, cycle)
        for op, table in machine.items()
        for resource, cycle in table.iter_usages()
    ]
    if not usages:
        return machine
    op, resource, cycle = rng.choice(sorted(usages))
    operations = {}
    for name, table in machine.items():
        per_resource = {
            r: set(table.usage_set(r)) for r in table.resources
        }
        if name == op:
            per_resource[resource].discard(cycle)
        operations[name] = per_resource
    return MachineDescription(
        machine.name + "-chaos-drop",
        operations,
        alternatives=machine.alternatives,
        latencies=machine.latencies,
    )


def corrupt_shift_usage(
    machine: MachineDescription, rng: random.Random
) -> MachineDescription:
    """Shift one rng-chosen operation's reservation table by one cycle."""
    candidates = sorted(
        op for op, table in machine.items() if table.resources
    )
    if not candidates:
        return machine
    victim = rng.choice(candidates)
    operations = {op: table for op, table in machine.items()}
    operations[victim] = operations[victim].shifted(1)
    return MachineDescription(
        machine.name + "-chaos-shift",
        operations,
        alternatives=machine.alternatives,
        latencies=machine.latencies,
    )


class DelayedClock:
    """Deterministic monotonic clock that jumps past any deadline.

    The first ``trip`` calls advance in nanoseconds; every later call
    advances in multiples of 1000 seconds, so any budget constructed
    before *or after* the trip sees its deadline blown at the very next
    checkpoint — a persistent stall, not a one-off hiccup.
    """

    def __init__(self, trip: int):
        self.trip = trip
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        if self.calls <= self.trip:
            return self.calls * 1e-9
        return self.calls * 1000.0


def truncate_file(path: str, rng: random.Random) -> int:
    """Remove a rng-chosen number of trailing bytes (at least one)."""
    size = os.path.getsize(path)
    keep = rng.randrange(0, max(1, size))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return size - keep


def flip_checksum(path: str, rng: random.Random) -> None:
    """Flip one hex digit of the sidecar's recorded SHA-256."""
    side = artifacts.sidecar_path(path)
    with open(side, "r", encoding="utf-8") as handle:
        text = handle.read()
    marker = '"sha256": "'
    start = text.index(marker) + len(marker)
    offset = start + rng.randrange(0, 64)
    old = text[offset]
    new = rng.choice([c for c in "0123456789abcdef" if c != old])
    with open(side, "w", encoding="utf-8") as handle:
        handle.write(text[:offset] + new + text[offset + 1:])


# ----------------------------------------------------------------------
# Fault drivers
#
# Every driver shares one signature — ``(machine, seed, workdir)`` — so
# the :data:`INJECTORS` registry can dispatch uniformly and the fuzz
# plan composer (:mod:`repro.fuzz.plans`) can sequence them at named
# pipeline phases.  Drivers that need no scratch directory ignore it.
# ----------------------------------------------------------------------
def inject_corruption(
    machine: MachineDescription,
    seed: int,
    fault: str,
    clock=None,
    deadline_s: Optional[float] = None,
) -> FaultOutcome:
    """Corrupt the reduced description mid-ladder; the ladder must only
    ever serve a *verified* result.  ``clock``/``deadline_s`` optionally
    compose a phase delay on top (the fuzz composer's mid-ladder plans).
    """
    rng = _rng(machine, seed, fault)
    corrupt = (
        corrupt_drop_usage if fault == FAULT_DROP_USAGE
        else corrupt_shift_usage
    )
    policy_kwargs = {"mutate_reduced": lambda m: corrupt(m, rng)}
    if clock is not None:
        policy_kwargs["clock"] = clock
    if deadline_s is not None:
        policy_kwargs["deadline_s"] = deadline_s
    policy = FallbackPolicy(**policy_kwargs)
    outcome = reduce_with_fallback(machine, policy)
    handled = outcome.verified
    detail = "served %s (%d attempts)" % (
        outcome.marker, len(outcome.attempts),
    )
    if outcome.rung == RUNG_REDUCED:
        detail += "; corruption was benign"
    return FaultOutcome(
        fault=fault,
        handled=handled,
        mode=MODE_SURVIVED,
        detail=detail,
        rung=outcome.rung,
        verified=outcome.verified,
    )


def inject_phase_delay(
    machine: MachineDescription, seed: int
) -> FaultOutcome:
    rng = _rng(machine, seed, FAULT_PHASE_DELAY)
    # Trip within the first handful of clock reads so the delay lands
    # mid-pipeline even for tiny machines (every checkpoint reads the
    # clock once when a deadline is set).
    clock = DelayedClock(trip=rng.randrange(2, 6))
    policy = FallbackPolicy(deadline_s=60.0, clock=clock)
    outcome = reduce_with_fallback(machine, policy)
    timed_out = any(
        record.error_type == "BudgetExceeded"
        for record in outcome.attempts
    )
    handled = outcome.verified and timed_out
    return FaultOutcome(
        fault=FAULT_PHASE_DELAY,
        handled=handled,
        mode=MODE_SURVIVED,
        detail="clock tripped after %d calls, served %s"
        % (clock.trip, outcome.marker),
        rung=outcome.rung,
        verified=outcome.verified,
    )


def inject_artifact_fault(
    machine: MachineDescription, seed: int, fault: str, workdir: str
) -> FaultOutcome:
    rng = _rng(machine, seed, fault)
    path = os.path.join(workdir, "%s-%s.mdl" % (machine.name, fault))
    artifacts.write_machine(path, machine)
    if fault == FAULT_TRUNCATE_WRITE:
        removed = truncate_file(path, rng)
        what = "truncated %d trailing bytes" % removed
    else:
        flip_checksum(path, rng)
        what = "flipped one sidecar checksum digit"
    try:
        artifacts.load_machine(path)
    except ArtifactIntegrityError as exc:
        return FaultOutcome(
            fault=fault,
            handled=True,
            mode=MODE_DETECTED,
            detail="%s; load refused (%s)" % (what, exc.kind),
        )
    return FaultOutcome(
        fault=fault,
        handled=False,
        mode=MODE_DETECTED,
        detail="%s; corruption NOT detected on load" % what,
    )


def inject_cache_fault(
    machine: MachineDescription,
    seed: int,
    workdir: str,
    fault: Optional[str] = None,
) -> FaultOutcome:
    """Corrupt a reduction-cache entry; the cache must heal itself.

    ``fault`` optionally forces the corruption primitive
    (``truncate-write`` or ``flip-checksum``) instead of drawing it from
    the seeded stream — the fuzz composer uses this to target the
    cache-warm point with a specific primitive.
    """
    from repro.resilience.reduction_cache import (
        SOURCE_DISK,
        SOURCE_FRESH,
        cached_reduce,
    )

    rng = _rng(machine, seed, FAULT_CORRUPT_CACHE)
    cache_dir = os.path.join(workdir, "reduction-cache")
    primed = cached_reduce(machine, cache_dir=cache_dir, use_memo=False)
    if fault is None:
        fault = (
            FAULT_TRUNCATE_WRITE if rng.random() < 0.5
            else FAULT_FLIP_CHECKSUM
        )
    if fault == FAULT_TRUNCATE_WRITE:
        truncate_file(primed.path, rng)
        what = "truncated cache entry"
    else:
        flip_checksum(primed.path, rng)
        what = "flipped cache-entry checksum digit"
    corrupted = cached_reduce(machine, cache_dir=cache_dir, use_memo=False)
    healed = cached_reduce(machine, cache_dir=cache_dir, use_memo=False)
    equivalent = corrupted.reduced == primed.reduced
    handled = (
        corrupted.source == SOURCE_FRESH
        and healed.source == SOURCE_DISK
        and equivalent
    )
    detail = "%s; lookup served %s, next lookup %s" % (
        what, corrupted.source, healed.source,
    )
    if not equivalent:
        detail += "; fallback reduction DIFFERS"
    return FaultOutcome(
        fault=FAULT_CORRUPT_CACHE,
        handled=handled,
        mode=MODE_SURVIVED,
        detail=detail,
        verified=equivalent,
    )


def inject_fault(
    machine: MachineDescription, seed: int, fault: str, workdir: str
) -> FaultOutcome:
    """Inject one fault class — the uniform registry entry point."""
    if fault in (FAULT_DROP_USAGE, FAULT_SHIFT_USAGE):
        return inject_corruption(machine, seed, fault)
    if fault == FAULT_PHASE_DELAY:
        return inject_phase_delay(machine, seed)
    if fault == FAULT_CORRUPT_CACHE:
        return inject_cache_fault(machine, seed, workdir)
    if fault in (FAULT_TRUNCATE_WRITE, FAULT_FLIP_CHECKSUM):
        return inject_artifact_fault(machine, seed, fault, workdir)
    raise ReproError(
        "unknown chaos fault %r (known: %s)" % (fault, ", ".join(FAULTS))
    )


#: Registry of fault drivers, keyed by fault class; every driver is
#: ``(machine, seed, workdir) -> FaultOutcome``.
INJECTORS = {
    fault: (
        lambda machine, seed, workdir, _fault=fault:
        inject_fault(machine, seed, _fault, workdir)
    )
    for fault in FAULTS
}


def run_chaos(
    machine: MachineDescription,
    seed: int = 0,
    faults: Optional[Sequence[str]] = None,
    workdir: Optional[str] = None,
    budget=None,
) -> ChaosReport:
    """Inject every requested fault class and report how each was handled.

    ``workdir`` hosts the artifact-fault files (a temporary directory is
    created and removed when omitted).  The report is deterministic in
    ``(machine, seed, faults)``.  ``budget`` is an optional
    :class:`~repro.resilience.budget.Budget` checked before every
    injection; exceeding it raises
    :class:`~repro.errors.BudgetExceeded` with phase ``"chaos"`` and the
    outcomes collected so far as the partial result.
    """
    faults = tuple(faults if faults is not None else FAULTS)
    unknown = [fault for fault in faults if fault not in FAULTS]
    if unknown:
        raise ReproError(
            "unknown chaos fault(s) %s (known: %s)"
            % (", ".join(sorted(unknown)), ", ".join(FAULTS))
        )
    report = ChaosReport(machine=machine.name, seed=seed)
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = cleanup.name
    else:
        os.makedirs(workdir, exist_ok=True)
    try:
        for index, fault in enumerate(faults):
            if budget is not None:
                budget.checkpoint(
                    "chaos",
                    units=machine.total_usages,
                    progress="fault %d/%d (%s)"
                    % (index + 1, len(faults), fault),
                    partial=[o.to_dict() for o in report.outcomes],
                )
            obs.count("chaos.fault")
            outcome = INJECTORS[fault](machine, seed, workdir)
            if not outcome.handled:
                obs.count("chaos.unhandled")
            report.outcomes.append(outcome)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return report


__all__ = [
    "CHAOS_SCHEMA_NAME",
    "CHAOS_SCHEMA_VERSION",
    "ChaosReport",
    "DelayedClock",
    "FAULT_CORRUPT_CACHE",
    "FAULT_DROP_USAGE",
    "FAULT_FLIP_CHECKSUM",
    "FAULT_PHASE_DELAY",
    "FAULT_SHIFT_USAGE",
    "FAULT_TRUNCATE_WRITE",
    "FAULTS",
    "FaultOutcome",
    "INJECTORS",
    "MODE_DETECTED",
    "MODE_SURVIVED",
    "corrupt_drop_usage",
    "corrupt_shift_usage",
    "flip_checksum",
    "inject_artifact_fault",
    "inject_cache_fault",
    "inject_corruption",
    "inject_fault",
    "inject_phase_delay",
    "run_chaos",
    "truncate_file",
]
