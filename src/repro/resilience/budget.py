"""Deadlines and work-unit budgets with cooperative cancellation.

A :class:`Budget` combines a wall-clock deadline with a work-unit cap and
is *checked*, never enforced preemptively: pipeline phases call
:meth:`Budget.checkpoint` at their loop boundaries, so cancellation always
lands at a consistent point and the raised
:class:`~repro.errors.BudgetExceeded` can carry the phase's best partial
result.  Work units share the currency of
:class:`repro.query.work.WorkCounters` — one unit per resource usage (or
non-empty bitvector word) touched — so one budget covers both reduction
and scheduling phases; reduction loops approximate a unit as one resource
match per elementary pair.

The clock is injectable (``clock=time.monotonic`` by default), which is
how the chaos harness simulates phase delays deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import BudgetExceeded


class Budget:
    """A wall-clock deadline plus a work-unit cap, checked cooperatively.

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds from construction (or the latest :meth:`restart`)
        after which any checkpoint raises; ``None`` disables the deadline.
    max_units:
        Work-unit cap across all phases; ``None`` disables the cap.
    clock:
        Monotonic-clock callable; injectable for deterministic tests and
        chaos fault injection.
    label:
        Free-form tag included in error messages (e.g. the request id).
    """

    __slots__ = (
        "deadline_s", "max_units", "label", "_clock", "_start", "units",
        "phase", "progress",
    )

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_units: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        label: str = "",
    ):
        self.deadline_s = deadline_s
        self.max_units = max_units
        self.label = label
        self._clock = clock
        self._start = clock()
        self.units = 0
        self.phase: Optional[str] = None
        self.progress: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        """Wall-clock seconds since construction / the last restart."""
        return self._clock() - self._start

    def remaining_s(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` when undeadlined)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed_s()

    def remaining_units(self) -> Optional[int]:
        if self.max_units is None:
            return None
        return self.max_units - self.units

    def exhausted(self) -> bool:
        """Non-raising probe: is the budget already spent?"""
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            return True
        units_left = self.remaining_units()
        return units_left is not None and units_left <= 0

    def restart(self) -> None:
        """Reset the clock and the unit counter (for retry ladders that
        grant each attempt a fresh allowance)."""
        self._start = self._clock()
        self.units = 0

    # ------------------------------------------------------------------
    def checkpoint(self, phase: str, units: int = 0, progress=None,
                   partial=None) -> None:
        """Charge ``units`` and raise :class:`BudgetExceeded` if spent.

        Parameters
        ----------
        phase:
            Name of the calling phase, recorded on the exception.
        units:
            Work units performed since the previous checkpoint.
        progress:
            Free-form progress indicator kept per phase (the latest value
            is echoed into the exception).
        partial:
            The phase's best partial result so far; the fallback ladder
            mines this from the raised exception.
        """
        self.phase = phase
        self.units += units
        if progress is not None:
            self.progress[phase] = progress
        reason = None
        elapsed = None
        if self.deadline_s is not None:
            elapsed = self.elapsed_s()
            if elapsed > self.deadline_s:
                reason = "deadline %.3fs exceeded (%.3fs elapsed)" % (
                    self.deadline_s, elapsed,
                )
        if reason is None and self.max_units is not None:
            if self.units > self.max_units:
                reason = "work-unit cap %d exceeded (%d charged)" % (
                    self.max_units, self.units,
                )
        if reason is None:
            return
        prefix = "%s: " % self.label if self.label else ""
        raise BudgetExceeded(
            "%sbudget exceeded in phase %r: %s" % (prefix, phase, reason),
            phase=phase,
            elapsed_s=elapsed if elapsed is not None else self.elapsed_s(),
            deadline_s=self.deadline_s,
            units=self.units,
            max_units=self.max_units,
            progress=self.progress.get(phase),
            partial=partial,
        )


__all__ = ["Budget", "BudgetExceeded"]
