"""Resilience layer: budgets, fallback ladders, artifacts, and chaos.

The paper's thesis is that a reduced machine description is only
trustworthy because it is *checked*; this package extends that stance to
runtime failure modes.  Four pieces:

* :mod:`~repro.resilience.budget` — wall-clock deadlines and work-unit
  caps with cooperative cancellation at phase boundaries;
* :mod:`~repro.resilience.fallback` — verified degradation ladders for
  reduction (reduced → partially-selected → original) and scheduling
  (IMS with escalation → flat list schedule);
* :mod:`~repro.resilience.artifacts` — crash-safe, checksummed artifact
  store with semantic (forbidden-matrix digest) self-verification;
* :mod:`~repro.resilience.chaos` — deterministic fault injection proving
  the above actually hold (``repro chaos <machine> --seed N``).

See ``docs/robustness.md``.
"""

from repro.errors import ArtifactIntegrityError, BudgetExceeded
from repro.resilience.artifacts import (
    ARTIFACT_SCHEMA_NAME,
    ARTIFACT_SCHEMA_VERSION,
    SIDECAR_SUFFIX,
    content_digest,
    has_sidecar,
    load_machine,
    matrix_digest,
    read_artifact,
    read_sidecar,
    sidecar_path,
    verify_artifact,
    write_artifact,
    write_json,
    write_machine,
)
from repro.resilience.budget import Budget
from repro.resilience.chaos import (
    CHAOS_SCHEMA_NAME,
    CHAOS_SCHEMA_VERSION,
    ChaosReport,
    DelayedClock,
    FAULTS,
    FaultOutcome,
    run_chaos,
)
from repro.resilience.fallback import (
    AttemptRecord,
    FallbackPolicy,
    ReduceOutcome,
    RUNG_IMS,
    RUNG_LIST,
    RUNG_ORIGINAL,
    RUNG_PARTIAL,
    RUNG_REDUCED,
    ScheduleOutcome,
    UNVERIFIED_POLICY,
    reduce_with_fallback,
    schedule_with_fallback,
)

__all__ = [
    "ARTIFACT_SCHEMA_NAME",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactIntegrityError",
    "AttemptRecord",
    "Budget",
    "BudgetExceeded",
    "CHAOS_SCHEMA_NAME",
    "CHAOS_SCHEMA_VERSION",
    "ChaosReport",
    "DelayedClock",
    "FAULTS",
    "FallbackPolicy",
    "FaultOutcome",
    "ReduceOutcome",
    "RUNG_IMS",
    "RUNG_LIST",
    "RUNG_ORIGINAL",
    "RUNG_PARTIAL",
    "RUNG_REDUCED",
    "SIDECAR_SUFFIX",
    "ScheduleOutcome",
    "UNVERIFIED_POLICY",
    "content_digest",
    "has_sidecar",
    "load_machine",
    "matrix_digest",
    "read_artifact",
    "read_sidecar",
    "reduce_with_fallback",
    "run_chaos",
    "schedule_with_fallback",
    "sidecar_path",
    "verify_artifact",
    "write_artifact",
    "write_json",
    "write_machine",
]
