"""Resilience layer: budgets, fallback ladders, artifacts, and chaos.

The paper's thesis is that a reduced machine description is only
trustworthy because it is *checked*; this package extends that stance to
runtime failure modes.  Four pieces:

* :mod:`~repro.resilience.budget` — wall-clock deadlines and work-unit
  caps with cooperative cancellation at phase boundaries;
* :mod:`~repro.resilience.fallback` — verified degradation ladders for
  reduction (reduced → partially-selected → original) and scheduling
  (IMS with escalation → flat list schedule);
* :mod:`~repro.resilience.artifacts` — crash-safe, checksummed artifact
  store with semantic (forbidden-matrix digest) self-verification;
* :mod:`~repro.resilience.reduction_cache` — digest-keyed reduction
  memo + disk cache whose hits are re-verified on load and whose
  corruption falls back to a fresh reduction;
* :mod:`~repro.resilience.chaos` — deterministic fault injection proving
  the above actually hold (``repro chaos <machine> --seed N``).

See ``docs/robustness.md``.
"""

from repro.errors import ArtifactIntegrityError, BudgetExceeded
from repro.resilience.artifacts import (
    ARTIFACT_SCHEMA_NAME,
    ARTIFACT_SCHEMA_VERSION,
    SIDECAR_SUFFIX,
    content_digest,
    has_sidecar,
    load_certificate,
    load_machine,
    matrix_digest,
    read_artifact,
    read_sidecar,
    sidecar_path,
    verify_artifact,
    write_artifact,
    write_certificate,
    write_json,
    write_machine,
)
from repro.resilience.budget import Budget
from repro.resilience.chaos import (
    CHAOS_SCHEMA_NAME,
    CHAOS_SCHEMA_VERSION,
    ChaosReport,
    DelayedClock,
    FAULTS,
    FaultOutcome,
    run_chaos,
)
from repro.resilience.reduction_cache import (
    CACHE_SCHEMA_VERSION,
    CachedReduction,
    SOURCE_DISK,
    SOURCE_FRESH,
    SOURCE_MEMO,
    VERIFIED_CERTIFICATE,
    VERIFIED_EQUIVALENCE,
    VERIFIED_FRESH,
    VERIFIED_MEMO,
    cache_entry_path,
    cached_reduce,
    certificate_entry_path,
    clear_reduction_memo,
    reduction_digest,
)
from repro.resilience.fallback import (
    AttemptRecord,
    FallbackPolicy,
    ReduceOutcome,
    RUNG_IMS,
    RUNG_LIST,
    RUNG_ORIGINAL,
    RUNG_PARTIAL,
    RUNG_REDUCED,
    ScheduleOutcome,
    UNVERIFIED_POLICY,
    reduce_with_fallback,
    schedule_with_fallback,
)

__all__ = [
    "ARTIFACT_SCHEMA_NAME",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactIntegrityError",
    "AttemptRecord",
    "Budget",
    "BudgetExceeded",
    "CACHE_SCHEMA_VERSION",
    "CHAOS_SCHEMA_NAME",
    "CHAOS_SCHEMA_VERSION",
    "CachedReduction",
    "ChaosReport",
    "DelayedClock",
    "FAULTS",
    "FallbackPolicy",
    "FaultOutcome",
    "ReduceOutcome",
    "RUNG_IMS",
    "RUNG_LIST",
    "RUNG_ORIGINAL",
    "RUNG_PARTIAL",
    "RUNG_REDUCED",
    "SIDECAR_SUFFIX",
    "SOURCE_DISK",
    "SOURCE_FRESH",
    "SOURCE_MEMO",
    "ScheduleOutcome",
    "UNVERIFIED_POLICY",
    "VERIFIED_CERTIFICATE",
    "VERIFIED_EQUIVALENCE",
    "VERIFIED_FRESH",
    "VERIFIED_MEMO",
    "cache_entry_path",
    "cached_reduce",
    "certificate_entry_path",
    "clear_reduction_memo",
    "content_digest",
    "has_sidecar",
    "load_certificate",
    "load_machine",
    "matrix_digest",
    "read_artifact",
    "read_sidecar",
    "reduce_with_fallback",
    "reduction_digest",
    "run_chaos",
    "schedule_with_fallback",
    "sidecar_path",
    "verify_artifact",
    "write_artifact",
    "write_certificate",
    "write_json",
    "write_machine",
]
