"""Crash-safe, self-verifying artifact store.

Every artifact is written atomically (temp file + ``os.replace``, see
:mod:`repro._atomic`) next to a *sidecar header* — ``<path>.sum.json`` —
recording the schema version, the artifact kind, and a SHA-256 of the
content.  Loading re-hashes the content and refuses corrupt artifacts with
an :class:`~repro.errors.ArtifactIntegrityError` naming the expected and
actual digest.

Machine-description artifacts get a second, semantic guard: the sidecar
records a digest of the *forbidden latency matrix* the description
induces, and :func:`load_machine` recomputes it on load.  A description
whose bytes survived intact but whose scheduling constraints do not match
the recorded ones (a version-skew or tampering failure mode the byte
checksum cannot see) is rejected the same way — the runtime extension of
the paper's Theorem-1 promise that a reduced description is only ever
trusted because it is *checked*.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro import mdl
from repro._atomic import atomic_write_text
from repro.core.certificate import Certificate, matrix_digest_value
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.errors import ArtifactIntegrityError, CertificateError
from repro.obs import trace as obs

ARTIFACT_SCHEMA_NAME = "repro-artifact"
ARTIFACT_SCHEMA_VERSION = 1

#: Suffix appended to the artifact path to form the sidecar path.
SIDECAR_SUFFIX = ".sum.json"


def sidecar_path(path: str) -> str:
    """The sidecar header path for an artifact at ``path``."""
    return path + SIDECAR_SUFFIX


def content_digest(text: str) -> str:
    """SHA-256 hex digest of an artifact's content."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def matrix_digest(machine: MachineDescription) -> str:
    """Digest of the forbidden latency matrix a description induces.

    Stable across usage-level refactorings: two equivalent descriptions
    (same scheduling constraints) produce the same digest even when their
    reservation tables differ.
    """
    return matrix_digest_value(ForbiddenLatencyMatrix.from_machine(machine))


# ----------------------------------------------------------------------
# Generic text artifacts
# ----------------------------------------------------------------------
def write_artifact(
    path: str,
    text: str,
    kind: str = "text",
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Atomically write ``text`` plus its checksum sidecar; return the header.

    The content lands first, the sidecar second (both atomic); a crash
    between the two leaves a content file with a *stale* sidecar, which
    the loader reports as a checksum mismatch rather than serving silently.
    """
    header: Dict[str, object] = {
        "schema": ARTIFACT_SCHEMA_NAME,
        "version": ARTIFACT_SCHEMA_VERSION,
        "kind": kind,
        "sha256": content_digest(text),
        "size": len(text.encode("utf-8")),
    }
    if extra:
        header["extra"] = dict(extra)
    atomic_write_text(path, text)
    atomic_write_text(
        sidecar_path(path),
        json.dumps(header, indent=2, sort_keys=True) + "\n",
    )
    return header


def read_sidecar(path: str) -> Dict[str, object]:
    """Load and structurally validate the sidecar header of ``path``."""
    side = sidecar_path(path)
    try:
        with open(side, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except OSError as exc:
        raise ArtifactIntegrityError(
            "artifact %r has no readable sidecar %r: %s" % (path, side, exc),
            path=path, kind="sidecar",
        ) from exc
    except ValueError as exc:
        raise ArtifactIntegrityError(
            "artifact sidecar %r is not valid JSON: %s" % (side, exc),
            path=path, kind="sidecar",
        ) from exc
    if not isinstance(header, dict) or header.get("schema") != (
        ARTIFACT_SCHEMA_NAME
    ):
        raise ArtifactIntegrityError(
            "artifact sidecar %r has schema %r, expected %r"
            % (side, header.get("schema") if isinstance(header, dict)
               else type(header).__name__, ARTIFACT_SCHEMA_NAME),
            path=path, kind="sidecar",
        )
    if header.get("version") != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactIntegrityError(
            "artifact sidecar %r has version %r, expected %d"
            % (side, header.get("version"), ARTIFACT_SCHEMA_VERSION),
            path=path, kind="sidecar",
        )
    return header


def read_artifact(
    path: str, expect_kind: Optional[str] = None
) -> Tuple[str, Dict[str, object]]:
    """Read an artifact, verifying its checksum against the sidecar.

    Returns ``(text, header)``; raises
    :class:`~repro.errors.ArtifactIntegrityError` on any mismatch.
    """
    header = read_sidecar(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        # A bit flip can turn valid UTF-8 into undecodable bytes; that
        # is content corruption, not an environment error.
        raise ArtifactIntegrityError(
            "cannot read artifact %r: %s" % (path, exc),
            path=path, kind="content",
        ) from exc
    expected = header.get("sha256")
    actual = content_digest(text)
    obs.count("artifact.verify")
    if actual != expected:
        obs.count("artifact.verify.failed")
        raise ArtifactIntegrityError(
            "artifact %r is corrupt: checksum mismatch"
            " (expected sha256 %s, actual %s)" % (path, expected, actual),
            path=path, kind="checksum", expected=expected, actual=actual,
        )
    if expect_kind is not None and header.get("kind") != expect_kind:
        raise ArtifactIntegrityError(
            "artifact %r has kind %r, expected %r"
            % (path, header.get("kind"), expect_kind),
            path=path, kind="kind",
            expected=expect_kind, actual=header.get("kind"),
        )
    return text, header


# ----------------------------------------------------------------------
# Machine-description artifacts
# ----------------------------------------------------------------------
def write_machine(
    path: str, machine: MachineDescription
) -> Dict[str, object]:
    """Write a machine description as a checksummed MDL artifact."""
    return write_artifact(
        path,
        mdl.dumps(machine),
        kind="mdl",
        extra={"matrix_digest": matrix_digest(machine)},
    )


def load_machine(
    path: str, verify_matrix: bool = True
) -> MachineDescription:
    """Load a machine artifact, verifying checksum and matrix digest."""
    text, header = read_artifact(path, expect_kind="mdl")
    machine = mdl.loads(text)
    if verify_matrix:
        extra = header.get("extra") or {}
        expected = extra.get("matrix_digest") if isinstance(extra, dict) \
            else None
        if expected is not None:
            actual = matrix_digest(machine)
            if actual != expected:
                obs.count("artifact.verify.failed")
                raise ArtifactIntegrityError(
                    "machine artifact %r induces a different forbidden"
                    " latency matrix than recorded (expected digest %s,"
                    " actual %s)" % (path, expected, actual),
                    path=path, kind="matrix-digest",
                    expected=expected, actual=actual,
                )
    return machine


def write_json(
    path: str, document: Dict[str, object], kind: str = "json"
) -> Dict[str, object]:
    """Write a JSON document as a checksummed artifact."""
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    return write_artifact(path, text, kind=kind)


def write_certificate(
    path: str, certificate: Certificate
) -> Dict[str, object]:
    """Write a preservation certificate as a checksummed artifact.

    The sidecar's byte checksum makes tampering with the certified
    instance list detectable before the semantic check even runs.
    """
    return write_artifact(
        path,
        json.dumps(certificate.to_dict(), indent=2, sort_keys=True) + "\n",
        kind="certificate",
        extra={"matrix_digest": certificate.matrix_digest},
    )


def load_certificate(path: str) -> Certificate:
    """Load a certificate artifact, verifying checksum and schema.

    Byte corruption surfaces as
    :class:`~repro.errors.ArtifactIntegrityError`; schema-level damage as
    :class:`~repro.errors.CertificateError`.  The semantic validation
    against a description pair is
    :func:`repro.core.certificate.check_certificate`.
    """
    text, _header = read_artifact(path, expect_kind="certificate")
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise CertificateError(
            "certificate artifact %r is not valid JSON: %s" % (path, exc),
            kind="schema",
        ) from exc
    return Certificate.from_dict(document)


def verify_artifact(path: str) -> Dict[str, object]:
    """Verify an artifact in place and return its header.

    Convenience wrapper used by the chaos harness and by operators
    auditing an artifact directory (``ArtifactIntegrityError`` on any
    corruption, including a missing sidecar).
    """
    _text, header = read_artifact(path)
    return header


def has_sidecar(path: str) -> bool:
    return os.path.exists(sidecar_path(path))


__all__ = [
    "ARTIFACT_SCHEMA_NAME",
    "ARTIFACT_SCHEMA_VERSION",
    "SIDECAR_SUFFIX",
    "atomic_write_text",
    "content_digest",
    "has_sidecar",
    "load_certificate",
    "load_machine",
    "matrix_digest",
    "read_artifact",
    "read_sidecar",
    "sidecar_path",
    "verify_artifact",
    "write_artifact",
    "write_certificate",
    "write_json",
    "write_machine",
]
