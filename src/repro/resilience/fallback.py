"""Verified fallback ladders for reduction and scheduling.

The paper replaces an error-prone manual reduction with a *checked*
automatic one; this module extends the same promise to runtime failures.
A request never fails opaquely and never silently serves an unchecked
description — it degrades down an explicit ladder, and every rung's output
is either re-verified with :func:`~repro.core.verify.assert_equivalent`
(or the scheduler's ground-truth checks) or carries an explicit
``unverified`` marker.

Reduction ladder (:func:`reduce_with_fallback`)::

    reduced              reduce_machine per objective, retry with backoff
      └─ partially-selected   every usage of the pruned generating set
           └─ original        the input description (identity, exact)

Scheduling ladder (:func:`schedule_with_fallback`)::

    ims                  IMS with escalating budget_ratio and II ceiling
      └─ list            flat (non-pipelined) schedule from the acyclic
                         list scheduler, II = makespan stretched to cover
                         loop-carried dependences

Both emit ``resilience.fallback`` / ``resilience.retry`` counters and a
``resilience.*_ladder`` span through the active tracer.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.certificate import (
    Certificate,
    certificate_from_machines,
    issue_certificate,
)
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.generating import build_generating_set
from repro.core.machine import MachineDescription
from repro.core.pruning import prune_covered_resources
from repro.core.reduce import Reduction, machine_from_selection, reduce_machine
from repro.core.selection import RES_USES, WORD_USES, SelectionResult
from repro.core.verify import assert_equivalent
from repro.errors import BudgetExceeded, ReductionError, ScheduleError
from repro.obs import trace as obs
from repro.query.work import WorkCounters
from repro.resilience.budget import Budget
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.list_scheduler import OperationDrivenScheduler
from repro.scheduler.mii import min_ii
from repro.scheduler.modulo import (
    IterativeModuloScheduler,
    ModuloScheduleResult,
)

#: Ladder rungs, in degradation order.
RUNG_REDUCED = "reduced"
RUNG_PARTIAL = "partially-selected"
RUNG_ORIGINAL = "original"
RUNG_IMS = "ims"
RUNG_LIST = "list"

UNVERIFIED_POLICY = "verification disabled by policy"


@dataclass
class AttemptRecord:
    """One ladder attempt: which rung, what happened.

    ``ledger_tail`` carries the last scheduler decision records (plain
    dicts) when the failed attempt raised a
    :class:`~repro.errors.ScheduleError` while a
    :class:`~repro.obs.ledger.DecisionLedger` was recording — the
    provenance of *why* the ladder escalated past this rung.
    """

    rung: str
    detail: str
    error_type: Optional[str] = None
    error: Optional[str] = None
    ledger_tail: Optional[List[dict]] = None

    @property
    def failed(self) -> bool:
        return self.error_type is not None


@dataclass
class FallbackPolicy:
    """Knobs of the fallback ladders.

    Parameters
    ----------
    deadline_s / max_units:
        Per-attempt budget (each rung/retry gets a fresh
        :class:`~repro.resilience.budget.Budget`); both ``None`` disables
        budgeting entirely.
    objectives:
        The reduction retry ladder: ``(objective, word_cycles)`` pairs
        tried in order before degrading (paper objectives: ``res-uses``
        then ``k-cycle-word uses``).
    backoff_s / backoff_factor / backoff_max_s:
        Bounded exponential backoff between retries: retry *i* sleeps
        ``min(backoff_s * backoff_factor**(i-1), backoff_max_s)``
        before jitter.  ``backoff_s = 0`` disables sleeping — the
        default, since in-process retries rarely benefit from it.
    backoff_jitter / backoff_seed:
        Deterministic seeded jitter: each delay is scaled by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]`` out of a
        ``random.Random`` keyed by ``(backoff_seed, retry_index)`` —
        string-seeded, so the full delay sequence is reproducible
        across processes regardless of hash randomization.  The
        jittered delay is re-clamped to ``backoff_max_s``.
    ims_escalation:
        The scheduling retry ladder: ``(budget_ratio, max_ii_slack)``
        pairs for successive IMS attempts.
    verify:
        When False, serve ladder outputs without the final equivalence
        check but *always* mark them unverified — the marker is the
        contract, never silently skipped verification.
    clock / sleep:
        Injectable for deterministic tests and chaos fault injection.
    mutate_reduced:
        Chaos hook: applied to each reduced description before the final
        verification, so tests can prove the ladder survives corrupted
        reductions.  ``None`` in production.
    """

    deadline_s: Optional[float] = None
    max_units: Optional[int] = None
    objectives: Sequence[Tuple[str, int]] = (
        (RES_USES, 1),
        (WORD_USES, 4),
    )
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 60.0
    backoff_jitter: float = 0.1
    backoff_seed: int = 0
    ims_escalation: Sequence[Tuple[int, int]] = (
        (6, 16),
        (12, 32),
        (24, 64),
    )
    verify: bool = True
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    mutate_reduced: Optional[
        Callable[[MachineDescription], MachineDescription]
    ] = None

    def make_budget(self, label: str = "") -> Optional[Budget]:
        """A fresh per-attempt budget, or ``None`` when unbudgeted."""
        if self.deadline_s is None and self.max_units is None:
            return None
        return Budget(
            deadline_s=self.deadline_s,
            max_units=self.max_units,
            clock=self.clock,
            label=label,
        )

    def backoff_delay(self, retry_index: int) -> float:
        """Delay in seconds before retry number ``retry_index`` (1-based).

        Pure and deterministic: bounded exponential growth, then seeded
        jitter, then the bound again.  Exposed separately from
        :meth:`backoff` so tests (and capacity planning) can inspect the
        exact delay sequence without sleeping.
        """
        if self.backoff_s <= 0:
            return 0.0
        delay = self.backoff_s * self.backoff_factor ** (retry_index - 1)
        delay = min(delay, self.backoff_max_s)
        if self.backoff_jitter > 0:
            rng = random.Random(
                "backoff:%d:%d" % (self.backoff_seed, retry_index)
            )
            delay *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return min(delay, self.backoff_max_s)

    def backoff(self, retry_index: int) -> None:
        """Sleep before retry number ``retry_index`` (1-based)."""
        delay = self.backoff_delay(retry_index)
        if delay > 0:
            self.sleep(delay)


@dataclass
class ReduceOutcome:
    """What the reduction ladder served, and how it got there.

    Every verified rung carries its preservation certificate, so a
    degraded outcome is just as auditable as a full reduction; the
    certificate is ``None`` only when the policy disabled verification
    or the identity rung's budget ran out before one could be issued.
    """

    machine: MachineDescription
    rung: str
    verified: bool
    unverified_reason: Optional[str]
    attempts: List[AttemptRecord] = field(default_factory=list)
    reduction: Optional[Reduction] = None
    certificate: Optional[Certificate] = None

    @property
    def degraded(self) -> bool:
        return self.rung != RUNG_REDUCED

    @property
    def marker(self) -> str:
        """``"verified"`` or an explicit ``"unverified(<reason>)"``."""
        if self.verified:
            return "verified"
        return "unverified(%s)" % (self.unverified_reason or "unknown")


def _ladder_verify(
    original: MachineDescription,
    served: MachineDescription,
    policy: FallbackPolicy,
) -> Tuple[bool, Optional[str]]:
    """The ladder's own verification of a served description.

    Raises :class:`~repro.errors.EquivalenceError` (letting the caller
    degrade) when verification runs and fails; returns the
    verified/marker pair otherwise.
    """
    if not policy.verify:
        return False, UNVERIFIED_POLICY
    assert_equivalent(original, served)
    return True, None


def _rung_certificate(
    original: MachineDescription,
    served: MachineDescription,
    reduction: Optional[Reduction],
    verified: bool,
    policy: FallbackPolicy,
) -> Optional["Certificate"]:
    """Issue the certificate a verified rung carries.

    Reuses the reduction's matrix when the served description is the
    reduction's own output; otherwise issues from scratch under a fresh
    per-attempt budget.  Skipping (budget ran out mid-issue) leaves the
    outcome verified but certificate-less — degradation stays possible
    even when proving artifacts is what became too expensive.
    """
    if not verified:
        return None
    try:
        if reduction is not None and served is reduction.reduced:
            return issue_certificate(reduction)
        return certificate_from_machines(
            original, served, budget=policy.make_budget("certificate"),
        )
    except BudgetExceeded:
        obs.count("resilience.certificate_skipped")
        return None


def reduce_with_fallback(
    machine: MachineDescription,
    policy: Optional[FallbackPolicy] = None,
) -> ReduceOutcome:
    """Reduce ``machine``, degrading verifiably on failure or timeout.

    Never raises for budget or reduction failures: the worst case serves
    the original description (rung ``"original"``), which is exact by
    identity.  The served description is *always* verified against the
    original (or explicitly marked unverified when the policy disables
    verification) — see :class:`ReduceOutcome`.
    """
    policy = policy or FallbackPolicy()
    attempts: List[AttemptRecord] = []
    last_exc: Optional[BaseException] = None
    with obs.span(
        "resilience.reduce_ladder", obs.CAT_RESILIENCE,
        machine=machine.name,
    ) as ladder_span:
        # Rung 1: full reduction, retrying across selection objectives.
        for index, (objective, word_cycles) in enumerate(policy.objectives):
            detail = "objective=%s word_cycles=%d" % (objective, word_cycles)
            if index:
                obs.count("resilience.retry")
                policy.backoff(index)
            budget = policy.make_budget("reduce:%s" % objective)
            try:
                reduction = reduce_machine(
                    machine,
                    objective=objective,
                    word_cycles=word_cycles,
                    budget=budget,
                )
                served = reduction.reduced
                if policy.mutate_reduced is not None:
                    served = policy.mutate_reduced(served)
                verified, reason = _ladder_verify(machine, served, policy)
                attempts.append(AttemptRecord(RUNG_REDUCED, detail))
                ladder_span.set(rung=RUNG_REDUCED, attempts=len(attempts))
                return ReduceOutcome(
                    machine=served,
                    rung=RUNG_REDUCED,
                    verified=verified,
                    unverified_reason=reason,
                    attempts=attempts,
                    reduction=reduction,
                    certificate=_rung_certificate(
                        machine, served, reduction, verified, policy
                    ),
                )
            except (BudgetExceeded, ReductionError) as exc:
                last_exc = exc
                attempts.append(
                    AttemptRecord(
                        RUNG_REDUCED, detail,
                        error_type=type(exc).__name__,
                        error=str(exc),
                    )
                )

        # Rung 2: partially-selected — every usage of the pruned
        # generating set.  Exact by Theorem 1 (the generating set never
        # forbids an allowed latency and covers every instance), and
        # re-verified below anyway.  Reuses the pool mined from a
        # selection-phase BudgetExceeded when available.
        obs.count("resilience.fallback")
        pool = None
        if (
            isinstance(last_exc, BudgetExceeded)
            and last_exc.phase == "selection"
            and isinstance(last_exc.partial, dict)
        ):
            pool = last_exc.partial.get("pool")
        budget = policy.make_budget("reduce:partial")
        try:
            if pool is None:
                matrix = ForbiddenLatencyMatrix.from_machine(
                    machine, budget=budget
                )
                pool = prune_covered_resources(
                    build_generating_set(matrix, budget=budget)
                )
            selection = SelectionResult(
                resources=[frozenset(r) for r in pool],
                origins=list(pool),
                objective="fallback-pool",
                word_cycles=1,
            )
            served = machine_from_selection(
                machine, selection, name=machine.name + "-partial"
            )
            verified, reason = _ladder_verify(machine, served, policy)
            attempts.append(
                AttemptRecord(
                    RUNG_PARTIAL,
                    "full generating-set selection (%d resources)"
                    % len(pool),
                )
            )
            ladder_span.set(rung=RUNG_PARTIAL, attempts=len(attempts))
            return ReduceOutcome(
                machine=served,
                rung=RUNG_PARTIAL,
                verified=verified,
                unverified_reason=reason,
                attempts=attempts,
                certificate=_rung_certificate(
                    machine, served, None, verified, policy
                ),
            )
        except (BudgetExceeded, ReductionError) as exc:
            attempts.append(
                AttemptRecord(
                    RUNG_PARTIAL,
                    "full generating-set selection",
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
            )

        # Rung 3: the original description — exact by identity.
        obs.count("resilience.fallback")
        attempts.append(
            AttemptRecord(RUNG_ORIGINAL, "serving the input description")
        )
        ladder_span.set(rung=RUNG_ORIGINAL, attempts=len(attempts))
        return ReduceOutcome(
            machine=machine,
            rung=RUNG_ORIGINAL,
            verified=True,
            unverified_reason=None,
            attempts=attempts,
            certificate=_rung_certificate(
                machine, machine, None, policy.verify, policy
            ),
        )


# ----------------------------------------------------------------------
# Scheduling ladder
# ----------------------------------------------------------------------
@dataclass
class ScheduleOutcome:
    """What the scheduling ladder served, and how it got there.

    ``work`` carries the serving rung's query-module work counters (the
    IMS result's counters, or the flat rung's block counters), so
    corpus drivers can merge per-loop accounting whichever rung served.
    """

    graph: DependenceGraph
    machine: MachineDescription
    rung: str
    verified: bool
    ii: int
    mii: int
    times: Dict[str, int]
    chosen_opcodes: Dict[str, str]
    attempts: List[AttemptRecord] = field(default_factory=list)
    result: Optional[ModuloScheduleResult] = None
    work: Optional[WorkCounters] = None

    @property
    def degraded(self) -> bool:
        return self.rung != RUNG_IMS

    @property
    def ii_over_mii(self) -> float:
        return self.ii / self.mii if self.mii else float("inf")

    @property
    def escalation_ledger(self) -> List[dict]:
        """Decision records explaining every failed rung, in attempt
        order — empty unless a ledger was recording during the ladder."""
        records: List[dict] = []
        for attempt in self.attempts:
            if attempt.failed and attempt.ledger_tail:
                records.extend(attempt.ledger_tail)
        return records


def _verify_modulo_reservation(
    machine: MachineDescription,
    times: Dict[str, int],
    chosen: Dict[str, str],
    ii: int,
) -> None:
    """Ground-truth MRT contention check for a modulo schedule."""
    reserved: Dict[Tuple[str, int], str] = {}
    for name, time_ in times.items():
        for resource, cycle in machine.table(chosen[name]).iter_usages():
            slot = (resource, (time_ + cycle) % ii)
            if slot in reserved:
                raise ScheduleError(
                    "resource contention between %s and %s at MRT slot %s"
                    % (reserved[slot], name, slot)
                )
            reserved[slot] = name


def _flat_schedule(
    machine: MachineDescription,
    graph: DependenceGraph,
    query_factory: Optional[Callable[[Optional[int]], object]] = None,
) -> Tuple[Dict[str, int], Dict[str, str], int, WorkCounters]:
    """Non-pipelined loop schedule: list-schedule one iteration, then
    stretch the II until modulo wrap-around and every loop-carried
    dependence are satisfied.

    With II at least the makespan *including reservation tails*, modulo
    slots never wrap, so the acyclic schedule's freedom from contention
    carries over to the MRT verbatim.
    """
    block = OperationDrivenScheduler(
        machine, query_factory=query_factory
    ).schedule(graph)
    times = dict(block.times)
    chosen = dict(block.chosen_opcodes)
    span_cycles = 1
    for name, issue in times.items():
        tail = 0
        for _resource, cycle in machine.table(chosen[name]).iter_usages():
            tail = max(tail, cycle)
        span_cycles = max(span_cycles, issue + tail + 1)
    ii = span_cycles
    for edge in graph.edges():
        if edge.distance <= 0:
            continue
        need = times[edge.src] + edge.latency - times[edge.dst]
        if need > ii * edge.distance:
            ii = -(-need // edge.distance)  # ceil division
    return times, chosen, ii, block.work


def schedule_with_fallback(
    machine: MachineDescription,
    graph: DependenceGraph,
    policy: Optional[FallbackPolicy] = None,
    representation: Optional[str] = None,
    word_cycles: int = 1,
    query_factory: Optional[Callable[[Optional[int]], object]] = None,
) -> ScheduleOutcome:
    """Modulo-schedule ``graph``, degrading verifiably on failure/timeout.

    Retries IMS with escalating decision budgets and II ceilings
    (``policy.ims_escalation``), then degrades to a flat, non-pipelined
    schedule from the list scheduler.  Every rung's output passes the
    dependence verifier and a ground-truth MRT contention check before
    being served; a failure of the last rung raises a clean
    :class:`~repro.errors.ScheduleError`.

    ``query_factory`` (a ``modulo -> ContentionQueryModule`` callable) is
    threaded through to every rung's scheduler; corpus drivers use it to
    share one compiled kernel across all rungs of all loops.
    """
    policy = policy or FallbackPolicy()
    graph.validate()
    attempts: List[AttemptRecord] = []
    mii = min_ii(machine, graph)
    extra = {}
    if representation is not None:
        extra["representation"] = representation
        extra["word_cycles"] = word_cycles
    with obs.span(
        "resilience.schedule_ladder", obs.CAT_RESILIENCE,
        loop=graph.name, machine=machine.name,
    ) as ladder_span:
        for index, (budget_ratio, ii_slack) in enumerate(
            policy.ims_escalation
        ):
            detail = "budget_ratio=%d max_ii_slack=%d" % (
                budget_ratio, ii_slack,
            )
            if index:
                obs.count("resilience.retry")
                policy.backoff(index)
            budget = policy.make_budget("ims[%d]" % index)
            try:
                scheduler = IterativeModuloScheduler(
                    machine,
                    budget_ratio=budget_ratio,
                    max_ii_slack=ii_slack,
                    query_factory=query_factory,
                    **extra,
                )
                result = scheduler.schedule(graph, budget=budget)
                attempts.append(
                    AttemptRecord(
                        RUNG_IMS, detail + " -> II=%d" % result.ii
                    )
                )
                ladder_span.set(rung=RUNG_IMS, attempts=len(attempts))
                return ScheduleOutcome(
                    graph=graph,
                    machine=machine,
                    rung=RUNG_IMS,
                    verified=True,
                    ii=result.ii,
                    mii=result.mii,
                    times=result.times,
                    chosen_opcodes=result.chosen_opcodes,
                    attempts=attempts,
                    result=result,
                    work=result.work,
                )
            except (BudgetExceeded, ScheduleError) as exc:
                attempts.append(
                    AttemptRecord(
                        RUNG_IMS, detail,
                        error_type=type(exc).__name__,
                        error=str(exc),
                        ledger_tail=getattr(exc, "ledger_tail", None),
                    )
                )

        # Degrade: flat (non-pipelined) schedule.  A failure here is a
        # clean ScheduleError — the ladder is exhausted.
        obs.count("resilience.fallback")
        times, chosen, ii, flat_work = _flat_schedule(
            machine, graph, query_factory=query_factory
        )
        graph.verify_schedule(times, ii=ii)
        _verify_modulo_reservation(machine, times, chosen, ii)
        attempts.append(
            AttemptRecord(RUNG_LIST, "flat schedule, II=%d" % ii)
        )
        ladder_span.set(rung=RUNG_LIST, attempts=len(attempts))
        return ScheduleOutcome(
            graph=graph,
            machine=machine,
            rung=RUNG_LIST,
            verified=True,
            ii=ii,
            mii=mii,
            times=times,
            chosen_opcodes=chosen,
            attempts=attempts,
            work=flat_work,
        )


__all__ = [
    "AttemptRecord",
    "FallbackPolicy",
    "ReduceOutcome",
    "RUNG_IMS",
    "RUNG_LIST",
    "RUNG_ORIGINAL",
    "RUNG_PARTIAL",
    "RUNG_REDUCED",
    "ScheduleOutcome",
    "UNVERIFIED_POLICY",
    "reduce_with_fallback",
    "schedule_with_fallback",
]
