"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MachineDescriptionError(ReproError):
    """An invalid machine description (bad resource names, cycles, ...)."""


class ReductionError(ReproError):
    """The reduction pipeline failed to produce an exact reduced machine."""


class EquivalenceError(ReductionError):
    """Two machine descriptions do not induce the same forbidden latencies.

    Attributes
    ----------
    mismatches:
        List of ``(op_x, op_y, only_in_first, only_in_second)`` tuples
        describing operation pairs whose forbidden latency sets differ.
    """

    def __init__(self, message, mismatches=None):
        super().__init__(message)
        self.mismatches = list(mismatches or [])


class ScheduleError(ReproError):
    """A scheduler failed to produce a valid schedule."""


class QueryError(ReproError):
    """A contention query module was used inconsistently.

    For example: freeing an operation instance that was never assigned, or
    mixing ``assign`` with ``assign_free`` in one partial schedule.
    """


class ParseError(ReproError):
    """A machine-description text file could not be parsed.

    Attributes
    ----------
    line:
        1-based line number where the error was detected, or ``None``.
    token:
        The offending token (the exact text that failed to parse), or
        ``None`` when the error is not tied to a single token.
    source:
        Name of the file being parsed, or ``None`` for in-memory text.
    """

    def __init__(self, message, line=None, token=None, source=None):
        prefix = ""
        if source is not None:
            prefix += "%s: " % source
        if line is not None:
            prefix += "line %d: " % line
        super().__init__(prefix + message)
        self.raw_message = message
        self.line = line
        self.token = token
        self.source = source


class LintConfigError(ReproError):
    """The lint subsystem was configured with unknown rules or severities."""
