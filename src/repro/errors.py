"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MachineDescriptionError(ReproError):
    """An invalid machine description (bad resource names, cycles, ...)."""


class ReductionError(ReproError):
    """The reduction pipeline failed to produce an exact reduced machine."""


#: Mismatch pairs rendered by ``str(EquivalenceError)`` before eliding.
MISMATCH_RENDER_LIMIT = 20


def render_mismatch(mismatch):
    """Render one ``(op_x, op_y, only_in_first, only_in_second)`` mismatch.

    Names the operation (class) pair *and* the latencies unique to each
    side, so an equivalence failure is actionable without re-running the
    comparison: ``mul/load (first-only={2, 5}; second-only={3})``.
    """
    op_x, op_y, only_a, only_b = mismatch
    parts = []
    if only_a:
        parts.append(
            "first-only={%s}" % ", ".join(str(f) for f in sorted(only_a))
        )
    if only_b:
        parts.append(
            "second-only={%s}" % ", ".join(str(f) for f in sorted(only_b))
        )
    detail = "; ".join(parts) if parts else "no latency delta"
    return "%s/%s (%s)" % (op_x, op_y, detail)


def render_mismatches(mismatches, limit=MISMATCH_RENDER_LIMIT):
    """Render a mismatch list, eliding entries past ``limit``.

    Shared by ``str(EquivalenceError)`` and the ``repro certify`` failure
    output so both report the same actionable witness pairs.
    """
    shown = list(mismatches[:limit])
    pairs = ", ".join(render_mismatch(entry) for entry in shown)
    remainder = len(mismatches) - len(shown)
    if remainder > 0:
        pairs += " … and %d more" % remainder
    return pairs


class EquivalenceError(ReductionError):
    """Two machine descriptions do not induce the same forbidden latencies.

    Attributes
    ----------
    mismatches:
        List of ``(op_x, op_y, only_in_first, only_in_second)`` tuples
        describing operation pairs whose forbidden latency sets differ.
        The full list is always kept; rendering caps the pairs shown at
        :data:`MISMATCH_RENDER_LIMIT` so errors on large machines stay
        readable.  Each rendered entry names the pair and the violating
        latencies on each side (see :func:`render_mismatch`).
    """

    def __init__(self, message, mismatches=None):
        super().__init__(message)
        self.mismatches = list(mismatches or [])

    def __str__(self):
        base = super().__str__()
        if not self.mismatches:
            return base
        return "%s [mismatches: %s]" % (
            base, render_mismatches(self.mismatches)
        )


class CertificateError(ReductionError):
    """A preservation certificate failed validation.

    Raised by :func:`repro.core.certificate.check_certificate` when a
    certificate does not bind to the descriptions under check, or when
    the reduced description's generated latencies and the certified
    instance set disagree.  Where the failure is a concrete latency, the
    witness fields name it so the report is actionable without re-running
    the reduction.

    Attributes
    ----------
    kind:
        What failed: ``"schema"``, ``"binding"``, ``"classes"``,
        ``"soundness"``, ``"coverage"``, or ``"matrix"``.
    instance:
        The canonical ``(op_x, op_y, latency)`` instance at fault, when
        the failure is tied to a single forbidden latency.
    row:
        The reduced resource (row) the witness usages live in.
    usage_x / usage_y:
        The ``(operation, cycle)`` usages forming the witness pair.
    """

    def __init__(self, message, kind=None, instance=None, row=None,
                 usage_x=None, usage_y=None):
        super().__init__(message)
        self.kind = kind
        self.instance = tuple(instance) if instance is not None else None
        self.row = row
        self.usage_x = tuple(usage_x) if usage_x is not None else None
        self.usage_y = tuple(usage_y) if usage_y is not None else None


class ScheduleError(ReproError):
    """A scheduler failed to produce a valid schedule.

    Attributes
    ----------
    ii_range:
        ``(first_ii, last_ii)`` tried before giving up, or ``None`` when
        the failure is not tied to an II search.
    attempts:
        Per-II :class:`~repro.scheduler.modulo.AttemptStats` records (empty
        when unavailable) — retry logic inspects these instead of parsing
        the message.
    budget_exceeded:
        True when at least one attempt ran out of its scheduling-decision
        budget (i.e. escalating the budget may help; a structural failure
        will not).
    ledger_tail:
        The last decision records of the active
        :class:`~repro.obs.ledger.DecisionLedger` at raise time (plain
        dicts, newest last), or ``None`` when no ledger was recording —
        the provenance a fallback rung or ``repro explain`` reports to
        say *why* the scheduler failed.
    """

    def __init__(self, message, ii_range=None, attempts=None,
                 budget_exceeded=False, ledger_tail=None):
        super().__init__(message)
        self.ii_range = tuple(ii_range) if ii_range is not None else None
        self.attempts = list(attempts or [])
        self.budget_exceeded = bool(budget_exceeded)
        self.ledger_tail = (
            list(ledger_tail) if ledger_tail is not None else None
        )


class BudgetExceeded(ReproError):
    """A deadline or work-unit budget ran out at a phase boundary.

    Attributes
    ----------
    phase:
        The pipeline phase that hit the limit (``"forbidden_matrix"``,
        ``"generating_set"``, ``"selection"``, ``"verify"``, ``"ims"``, ...).
    elapsed_s / deadline_s:
        Wall-clock seconds spent and the configured deadline (``None``
        when the budget had no deadline).
    units / max_units:
        Work units charged so far and the configured cap (``None`` when
        uncapped).  Units share the currency of
        :class:`repro.query.work.WorkCounters`.
    progress:
        Free-form per-phase progress indicator (e.g. pairs processed).
    partial:
        The best partial result the phase produced before the budget ran
        out, or ``None`` — the fallback ladder mines this to avoid
        recomputing completed phases.
    """

    def __init__(self, message, phase=None, elapsed_s=None, deadline_s=None,
                 units=None, max_units=None, progress=None, partial=None):
        super().__init__(message)
        self.phase = phase
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        self.units = units
        self.max_units = max_units
        self.progress = progress
        self.partial = partial


class ArtifactIntegrityError(ReproError):
    """A stored artifact failed self-verification on load.

    Attributes
    ----------
    path:
        The artifact file that failed verification.
    kind:
        What failed: ``"checksum"``, ``"matrix-digest"``, ``"sidecar"``.
    expected / actual:
        The recorded and recomputed digest (``None`` when not applicable).
    """

    def __init__(self, message, path=None, kind=None, expected=None,
                 actual=None):
        super().__init__(message)
        self.path = path
        self.kind = kind
        self.expected = expected
        self.actual = actual


class BenchFormatError(ReproError):
    """A stored benchmark result does not match the expected schema.

    Raised when a ``repro-bench-result`` document carries the wrong
    schema name or version, or is structurally unusable.  Comparing two
    results recorded under different schema versions refuses loudly
    instead of producing a silently wrong verdict.

    Attributes
    ----------
    path:
        The file the document came from (``None`` for in-memory dicts).
    expected / actual:
        The expected and found schema identifier (``"name v<version>"``),
        when the failure is a schema mismatch.
    """

    def __init__(self, message, path=None, expected=None, actual=None):
        super().__init__(message)
        self.path = path
        self.expected = expected
        self.actual = actual


class RunlogError(ReproError):
    """A run-registry record or directory is unusable.

    Raised when a ``repro-runlog-record`` document carries the wrong
    schema name or version, when a referenced record does not exist, or
    when a trend/diff query names a metric the registry does not track.
    Per-record *corruption* (checksum mismatch, torn JSON) is reported
    structurally by :meth:`repro.obs.runlog.RunLog.records` instead of
    raised, so one damaged record never takes down the whole registry.

    Attributes
    ----------
    path:
        The record file or registry directory involved (``None`` for
        in-memory documents).
    """

    def __init__(self, message, path=None):
        super().__init__(message)
        self.path = path


class QueryError(ReproError):
    """A contention query module was used inconsistently.

    For example: freeing an operation instance that was never assigned, or
    mixing ``assign`` with ``assign_free`` in one partial schedule.
    """


class ParseError(ReproError):
    """A machine-description text file could not be parsed.

    Attributes
    ----------
    line:
        1-based line number where the error was detected, or ``None``.
    token:
        The offending token (the exact text that failed to parse), or
        ``None`` when the error is not tied to a single token.
    source:
        Name of the file being parsed, or ``None`` for in-memory text.
    """

    def __init__(self, message, line=None, token=None, source=None):
        prefix = ""
        if source is not None:
            prefix += "%s: " % source
        if line is not None:
            prefix += "line %d: " % line
        super().__init__(prefix + message)
        self.raw_message = message
        self.line = line
        self.token = token
        self.source = source


class LintConfigError(ReproError):
    """The lint subsystem was configured with unknown rules or severities."""
