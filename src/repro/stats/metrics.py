"""Implementation of the Tables 1-4 metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.machine import MachineDescription
from repro.core.reservation import ReservationTable


def average_usages_per_op(
    machine: MachineDescription,
    weights: Optional[Dict[str, float]] = None,
) -> float:
    """Average resource usages per operation (class).

    The paper assumes every class is equally frequent and notes this is
    *pessimistic* — complex operations are rarer than simple ones.  Pass
    ``weights`` (e.g. dynamic operation frequencies from a workload) to
    compute the weighted average instead; missing operations weigh 0.
    """
    if machine.num_operations == 0:
        return 0.0
    if weights is None:
        return machine.total_usages / machine.num_operations
    total_weight = 0.0
    total = 0.0
    for op, table in machine.items():
        weight = weights.get(op, 0.0)
        total += weight * table.usage_count
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return total / total_weight


def word_usage_count(table: ReservationTable, word_cycles: int, alignment: int) -> int:
    """Non-empty k-cycle words of one reservation table at one alignment.

    ``alignment`` shifts the table within the word grid, modelling the
    issue cycle's position inside a packed word; cycle ``c`` of the table
    lands in word ``(c + alignment) // k``.
    """
    if word_cycles < 1:
        raise ValueError("word_cycles must be >= 1")
    words = {(c + alignment) // word_cycles for c in table.cycles_used()}
    return len(words)


def average_word_usages(
    machine: MachineDescription,
    word_cycles: int,
    weights: Optional[Dict[str, float]] = None,
) -> float:
    """Average word usages per operation, over all alignments (paper §6).

    ``weights`` selects frequency-weighted averaging, as for
    :func:`average_usages_per_op`.
    """
    if machine.num_operations == 0:
        return 0.0
    if weights is None:
        total = 0
        for _op, table in machine.items():
            for alignment in range(word_cycles):
                total += word_usage_count(table, word_cycles, alignment)
        return total / (machine.num_operations * word_cycles)
    total = 0.0
    total_weight = 0.0
    for op, table in machine.items():
        weight = weights.get(op, 0.0)
        per_op = sum(
            word_usage_count(table, word_cycles, alignment)
            for alignment in range(word_cycles)
        ) / word_cycles
        total += weight * per_op
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return total / total_weight


def operation_frequencies(opcodes) -> Dict[str, float]:
    """Normalized frequency map from a list of (dynamic) opcodes."""
    counts: Dict[str, float] = {}
    for opcode in opcodes:
        counts[opcode] = counts.get(opcode, 0.0) + 1.0
    total = sum(counts.values())
    if not total:
        return {}
    return {op: value / total for op, value in counts.items()}


def cycles_per_word(num_resources: int, word_bits: int) -> int:
    """How many cycle-bitvectors of ``num_resources`` bits fit per word."""
    if num_resources <= 0:
        return word_bits
    return max(1, word_bits // num_resources)


def reserved_bits_per_cycle(machine: MachineDescription) -> int:
    """Reserved-table state per schedule cycle: one flag bit per resource."""
    return machine.num_resources


@dataclass
class MachineStats:
    """The three per-description metrics of Tables 1-4."""

    name: str
    num_resources: int
    avg_usages_per_op: float
    avg_word_usages: Dict[int, float]

    def row(self, word_cycles: Sequence[int]) -> Tuple:
        return (
            self.name,
            self.num_resources,
            round(self.avg_usages_per_op, 1),
        ) + tuple(round(self.avg_word_usages[k], 1) for k in word_cycles)


def describe(
    machine: MachineDescription, word_cycles: Sequence[int] = (1,)
) -> MachineStats:
    """Compute the full metric set of one machine description."""
    return MachineStats(
        name=machine.name,
        num_resources=machine.num_resources,
        avg_usages_per_op=average_usages_per_op(machine),
        avg_word_usages={
            k: average_word_usages(machine, k) for k in word_cycles
        },
    )
