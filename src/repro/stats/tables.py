"""Rendering of the paper's Tables 1-4 for any machine description.

Used by the benchmark harnesses (``benchmarks/test_table*.py``) and by
the ``repro table`` CLI command.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.reduce import Reduction
from repro.stats.metrics import average_usages_per_op, average_word_usages


def render_reduction_table(
    title: str,
    machine,
    reductions: Dict[str, Reduction],
    word_cycles: Sequence[int],
    paper: Optional[Dict[str, Sequence]] = None,
) -> str:
    """Render one of the paper's Tables 1-4.

    Columns: the original description, the discrete (res-uses) reduction,
    and one bitvector reduction per packing factor k.  Rows: number of
    resources, average resource usages per operation, and average word
    usages per operation (computed at each column's own packing).
    ``paper`` optionally appends the published values for comparison.
    """
    columns = [("original", machine, 1)]
    columns.append(("res-uses", reductions["res-uses"].reduced, 1))
    for k in word_cycles:
        key = "%d-cycle-word" % k
        columns.append((key, reductions[key].reduced, k))

    header = ["metric"] + [name for name, _md, _k in columns]
    rows = [
        ["resources"]
        + ["%d" % md.num_resources for _n, md, _k in columns],
        ["avg usages/op"]
        + ["%.1f" % average_usages_per_op(md) for _n, md, _k in columns],
        ["avg word usages/op"]
        + ["%.1f" % average_word_usages(md, k) for _n, md, k in columns],
    ]
    if paper:
        for label, values in paper.items():
            rows.append(
                [label + " (paper)"]
                + [str(v) if v is not None else "-" for v in values]
            )

    widths = [
        max(len(str(row[i])) for row in [header] + rows)
        for i in range(len(header))
    ]

    def fmt(cells):
        return "  ".join(
            str(cell).rjust(width) for cell, width in zip(cells, widths)
        )

    lines = [title, fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
