"""Machine-description metrics (the numbers of Tables 1-4).

Three metrics per description, following paper Section 6:

* total number of resources;
* average resource usages per operation class;
* average *word usages* per operation for a bitvector representation with
  ``k`` cycle-vectors per word: the number of non-empty groups of k
  consecutive cycles in each reservation table, averaged over every
  operation class and every possible alignment between the reserved and
  reservation bitvectors.

The paper packs as many cycle-vectors per machine word as fit, so
``k = word_bits // num_resources``; e.g. the 15-resource reduced Cydra 5
packs 2 cycles per 32-bit word and 4 per 64-bit word.
"""

from repro.stats.metrics import (
    MachineStats,
    average_usages_per_op,
    average_word_usages,
    cycles_per_word,
    describe,
    operation_frequencies,
    reserved_bits_per_cycle,
    word_usage_count,
)
from repro.stats.tables import render_reduction_table

__all__ = [
    "MachineStats",
    "average_usages_per_op",
    "average_word_usages",
    "cycles_per_word",
    "describe",
    "operation_frequencies",
    "render_reduction_table",
    "reserved_bits_per_cycle",
    "word_usage_count",
]
