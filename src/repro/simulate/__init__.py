"""Cycle-accurate issue simulation of schedules against a machine."""

from repro.simulate.pipeline import (
    ConflictEvent,
    SimulationReport,
    simulate,
)

__all__ = ["ConflictEvent", "SimulationReport", "simulate"]
