"""Cycle-accurate issue simulation (the paper's opening motivation).

"Precise modeling of machine resources is critical to avoid resource
contentions that may **stall** some of the pipelines or, in the absence
of hardware interlocks, **corrupt** some of the results."  This module
makes that sentence executable: it plays a schedule into a machine
description cycle by cycle and reports exactly one of those outcomes for
every structural hazard the schedule contains.

* With ``interlock=True`` (a machine that scoreboard-stalls), an
  operation whose resources are busy is held at the issue stage; every
  operation behind it in program order slips by the same amount —
  in-order issue.  The report counts stall cycles: a schedule produced
  against a *correct* description simulates with zero stalls.
* With ``interlock=False`` (a VLIW that trusts the compiler, like the
  Cydra 5), the operation issues anyway and every double-booked
  resource-cycle is recorded as a corruption event.

Simulating a schedule built from a *reduced* description against the
*original* description (or vice versa) must be clean — that is the
paper's exactness guarantee, and ``tests/test_simulate.py`` checks it —
while schedules built against a deliberately weakened description show
up immediately as stalls/corruptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError

#: A planned issue: (operation, intended issue cycle).
Placement = Tuple[str, int]


@dataclass(frozen=True)
class ConflictEvent:
    """One structural hazard observed during simulation."""

    cycle: int
    resource: str
    first_op: str
    second_op: str

    def describe(self) -> str:
        return "cycle %d: %s claimed by both %s and %s" % (
            self.cycle,
            self.resource,
            self.first_op,
            self.second_op,
        )


@dataclass
class SimulationReport:
    """Outcome of simulating one schedule."""

    machine: str
    interlock: bool
    issue_cycles: Dict[int, int]
    stall_cycles: int
    conflicts: List[ConflictEvent] = field(default_factory=list)
    makespan: int = 0

    @property
    def clean(self) -> bool:
        """True when the schedule ran exactly as planned."""
        return self.stall_cycles == 0 and not self.conflicts

    @property
    def num_operations(self) -> int:
        return len(self.issue_cycles)

    def summary(self) -> str:
        if self.clean:
            return (
                "clean: %d operations in %d cycles on %s"
                % (self.num_operations, self.makespan, self.machine)
            )
        if self.interlock:
            return "stalled %d cycles (%d operations, %d cycles total)" % (
                self.stall_cycles,
                self.num_operations,
                self.makespan,
            )
        return "%d corruption events (%d operations)" % (
            len(self.conflicts),
            self.num_operations,
        )


def simulate(
    machine: MachineDescription,
    placements: Sequence[Placement],
    interlock: bool = True,
    max_conflicts: int = 64,
) -> SimulationReport:
    """Play a schedule into ``machine`` cycle by cycle.

    Parameters
    ----------
    machine:
        The *ground-truth* hardware description to simulate against
        (typically the original, unreduced one).
    placements:
        ``(operation, cycle)`` pairs; program order is the order of this
        sequence for equal cycles (in-order issue).
    interlock:
        Hardware scoreboarding: stall conflicting issues (True) or let
        them corrupt (False).
    max_conflicts:
        Stop collecting corruption events beyond this many.
    """
    ordered = sorted(
        enumerate(placements), key=lambda item: (item[1][1], item[0])
    )
    reserved: Dict[Tuple[str, int], str] = {}
    issue_cycles: Dict[int, int] = {}
    conflicts: List[ConflictEvent] = []
    stall_total = 0
    slip = 0  # accumulated in-order delay under interlocking
    makespan = 0

    for index, (op, planned) in ordered:
        table = machine.table(op)
        usages = list(table.iter_usages())
        if interlock:
            cycle = planned + slip
            attempts = 0
            while any(
                (resource, cycle + use) in reserved
                for resource, use in usages
            ):
                cycle += 1
                attempts += 1
                if attempts > 1_000_000:  # pragma: no cover - safety
                    raise ScheduleError(
                        "simulation of %r did not converge" % op
                    )
            stall = cycle - (planned + slip)
            stall_total += stall
            slip += stall
        else:
            cycle = planned
            for resource, use in usages:
                slot = (resource, cycle + use)
                holder = reserved.get(slot)
                if holder is not None and len(conflicts) < max_conflicts:
                    conflicts.append(
                        ConflictEvent(
                            cycle=cycle + use,
                            resource=resource,
                            first_op=holder,
                            second_op=op,
                        )
                    )
        for resource, use in usages:
            reserved[(resource, cycle + use)] = op
        issue_cycles[index] = cycle
        makespan = max(makespan, cycle + max(1, table.length))

    return SimulationReport(
        machine=machine.name,
        interlock=interlock,
        issue_cycles=issue_cycles,
        stall_cycles=stall_total,
        conflicts=conflicts,
        makespan=makespan,
    )
