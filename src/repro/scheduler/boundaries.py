"""Block-boundary resource bookkeeping (paper Section 1).

"In general, the resource requirements at the beginning of a basic block
consist of the union of all the resource requirements dangling from
predecessor basic blocks."  Given a scheduled block and its length, the
operations whose reservation tables extend past the block's end *dangle*
into every successor; re-expressed relative to the successor's cycle 0
they become the ``boundary=`` argument of
:meth:`~repro.scheduler.OperationDrivenScheduler.schedule`.

:class:`TraceScheduler` chains the operation-driven scheduler along a
trace of blocks, threading dangling requirements from each block into
the next — the latency-hiding setting (Multiflow, IMPACT) the paper's
boundary support exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger
from repro.query.modulo import DISCRETE
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.list_scheduler import (
    BlockScheduleResult,
    OperationDrivenScheduler,
)

#: A dangling requirement: an opcode issued ``cycle`` cycles relative to
#: the *successor* block's first cycle (hence normally negative).
Dangling = Tuple[str, int]


def dangling_requirements(
    result: BlockScheduleResult, block_length: Optional[int] = None
) -> List[Dangling]:
    """Operations of a scheduled block that dangle past its end.

    Parameters
    ----------
    result:
        A block schedule.
    block_length:
        Cycle at which the successor block begins (defaults to the
        schedule's natural length, i.e. one past the last issue).

    Returns
    -------
    ``(opcode, cycle)`` pairs with cycles relative to the successor's
    cycle 0 (negative: the op issued before the successor began), ready
    to pass as ``boundary=`` when scheduling the successor.
    """
    if block_length is None:
        block_length = result.length
    dangling: List[Dangling] = []
    for name, time in result.times.items():
        opcode = result.chosen_opcodes[name]
        table = result.machine.table(opcode)
        if time + table.length > block_length:
            dangling.append((opcode, time - block_length))
    dangling.sort(key=lambda item: (item[1], item[0]))
    return dangling


@dataclass
class TraceScheduleResult:
    """Outcome of scheduling a trace of blocks with boundary threading."""

    blocks: List[BlockScheduleResult]
    boundaries: List[List[Dangling]]

    @property
    def total_length(self) -> int:
        return sum(block.length for block in self.blocks)

    def block_start(self, index: int) -> int:
        """Absolute start cycle of block ``index`` within the trace."""
        return sum(block.length for block in self.blocks[:index])

    def flat_placements(self) -> List[Tuple[str, int]]:
        """Every (chosen opcode, absolute cycle) across the whole trace."""
        placements = []
        offset = 0
        for block in self.blocks:
            for name, time in block.times.items():
                placements.append(
                    (block.chosen_opcodes[name], offset + time)
                )
            offset += block.length
        return placements


class TraceScheduler:
    """Schedule a trace of basic blocks, threading dangling requirements.

    Each block is scheduled by an :class:`OperationDrivenScheduler`; the
    dangling reservations of block *i* become boundary constraints of
    block *i+1*, so an operation with a long tail (a divide issued late)
    correctly delays conflicting operations of the next block without
    any global scheduling.
    """

    def __init__(
        self,
        machine: MachineDescription,
        representation: str = DISCRETE,
        word_cycles: int = 1,
    ):
        self.machine = machine
        self._scheduler = OperationDrivenScheduler(
            machine,
            representation=representation,
            word_cycles=word_cycles,
        )

    def schedule(
        self, blocks: Sequence[DependenceGraph]
    ) -> TraceScheduleResult:
        """Schedule the blocks in trace order."""
        if not blocks:
            raise ScheduleError(
                "a trace needs at least one block",
                ledger_tail=obs_ledger.active_tail(),
            )
        results: List[BlockScheduleResult] = []
        boundaries: List[List[Dangling]] = [[]]
        carried: List[Dangling] = []
        for graph in blocks:
            result = self._scheduler.schedule(graph, boundary=carried)
            results.append(result)
            carried = dangling_requirements(result)
            # Requirements the *predecessor* passed in may reach through
            # this whole block into the next one as well.
            for opcode, cycle in boundaries[-1]:
                table = self.machine.table(opcode)
                if cycle + table.length > result.length:
                    carried.append((opcode, cycle - result.length))
            carried.sort(key=lambda item: (item[1], item[0]))
            boundaries.append(carried)
        return TraceScheduleResult(
            blocks=results, boundaries=boundaries[1:]
        )
