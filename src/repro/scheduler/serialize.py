"""JSON serialization of schedules and dependence graphs.

Downstream tools (assemblers, simulators, visualizers) consume schedules
as data; these functions give every scheduler result a stable JSON shape
and round-trip the dependence graphs that produced them.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ScheduleError
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.list_scheduler import BlockScheduleResult
from repro.obs import ledger as obs_ledger
from repro.scheduler.modulo import ModuloScheduleResult

FORMAT_VERSION = 1


def graph_to_json(graph: DependenceGraph) -> Dict[str, Any]:
    """JSON-ready dict of a dependence graph."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "operations": [
            {"name": op.name, "opcode": op.opcode}
            for op in graph.operations()
        ],
        "dependences": [
            {
                "src": edge.src,
                "dst": edge.dst,
                "latency": edge.latency,
                "distance": edge.distance,
                "kind": edge.kind,
            }
            for edge in graph.edges()
        ],
    }


def graph_from_json(data: Dict[str, Any]) -> DependenceGraph:
    """Rebuild a dependence graph from :func:`graph_to_json` output."""
    if data.get("version") != FORMAT_VERSION:
        raise ScheduleError(
            "unsupported graph format version %r" % data.get("version")
        , ledger_tail=obs_ledger.active_tail())
    graph = DependenceGraph(data["name"])
    for op in data["operations"]:
        graph.add_operation(op["name"], op["opcode"])
    for edge in data["dependences"]:
        graph.add_dependence(
            edge["src"],
            edge["dst"],
            edge["latency"],
            distance=edge.get("distance", 0),
            kind=edge.get("kind", "flow"),
        )
    return graph


def modulo_result_to_json(result: ModuloScheduleResult) -> Dict[str, Any]:
    """JSON-ready dict of a modulo schedule (graph included)."""
    return {
        "version": FORMAT_VERSION,
        "kind": "modulo",
        "machine": result.machine.name,
        "ii": result.ii,
        "mii": result.mii,
        "graph": graph_to_json(result.graph),
        "times": dict(sorted(result.times.items())),
        "chosen_opcodes": dict(sorted(result.chosen_opcodes.items())),
        "stats": {
            "attempts": len(result.attempts),
            "total_decisions": result.total_decisions,
            "decisions_per_op": result.decisions_per_op,
            "optimal": result.optimal,
        },
    }


def block_result_to_json(result: BlockScheduleResult) -> Dict[str, Any]:
    """JSON-ready dict of a block schedule."""
    return {
        "version": FORMAT_VERSION,
        "kind": "block",
        "machine": result.machine.name,
        "length": result.length,
        "graph": graph_to_json(result.graph),
        "times": dict(sorted(result.times.items())),
        "chosen_opcodes": dict(sorted(result.chosen_opcodes.items())),
    }


def dumps(payload: Dict[str, Any]) -> str:
    """Stable (sorted, indented) JSON text of any payload above."""
    return json.dumps(payload, indent=2, sort_keys=True)


def loads(text: str) -> Dict[str, Any]:
    return json.loads(text)
