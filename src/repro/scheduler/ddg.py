"""Data dependence graphs for loop and basic-block scheduling.

Nodes are operation instances; each carries the *opcode* naming its
reservation table in the machine description.  Edges carry a ``latency``
(cycles the consumer must wait after the producer issues) and a
``distance`` (iteration distance for loop-carried dependences; 0 for
intra-iteration edges).  A modulo schedule with initiation interval II is
valid when for every edge ``time(dst) - time(src) >= latency - II *
distance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger


@dataclass(frozen=True)
class Operation:
    """A scheduled entity: a named instance of a machine opcode."""

    name: str
    opcode: str


@dataclass(frozen=True)
class Dependence:
    """A dependence edge ``src -> dst``.

    ``latency`` may be zero or even negative (as produced e.g. by
    IF-conversion bookkeeping); ``distance`` must be non-negative and is
    positive only for loop-carried dependences.
    """

    src: str
    dst: str
    latency: int
    distance: int = 0
    kind: str = "flow"


class DependenceGraph:
    """A mutable dependence graph with loop-carried distances.

    Examples
    --------
    >>> g = DependenceGraph("dot-product")
    >>> g.add_operation("load1", "mem")
    >>> g.add_operation("mac", "fmul")
    >>> g.add_dependence("load1", "mac", latency=2)
    >>> g.add_dependence("mac", "mac", latency=3, distance=1)  # recurrence
    >>> g.num_operations
    2
    """

    def __init__(self, name: str = "loop"):
        self.name = name
        self._operations: Dict[str, Operation] = {}
        self._edges: List[Dependence] = []
        self._succs: Dict[str, List[Dependence]] = {}
        self._preds: Dict[str, List[Dependence]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, name: str, opcode: str) -> Operation:
        """Add a node; raises on duplicate names."""
        if name in self._operations:
            raise ScheduleError(
                "duplicate operation %r" % name,
                ledger_tail=obs_ledger.active_tail(),
            )
        op = Operation(name, opcode)
        self._operations[name] = op
        self._succs[name] = []
        self._preds[name] = []
        return op

    def add_dependence(
        self,
        src: str,
        dst: str,
        latency: int,
        distance: int = 0,
        kind: str = "flow",
    ) -> Dependence:
        """Add an edge; endpoints must already exist."""
        for endpoint in (src, dst):
            if endpoint not in self._operations:
                raise ScheduleError(
                    "unknown operation %r" % endpoint,
                    ledger_tail=obs_ledger.active_tail(),
                )
        if distance < 0:
            raise ScheduleError(
                "dependence distance must be >= 0",
                ledger_tail=obs_ledger.active_tail(),
            )
        edge = Dependence(src, dst, latency, distance, kind)
        self._edges.append(edge)
        self._succs[src].append(edge)
        self._preds[dst].append(edge)
        return edge

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_operations(self) -> int:
        return len(self._operations)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def operations(self) -> List[Operation]:
        """All operations in insertion order."""
        return list(self._operations.values())

    def operation(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise ScheduleError(
                "unknown operation %r" % name,
                ledger_tail=obs_ledger.active_tail(),
            ) from None

    def edges(self) -> Iterator[Dependence]:
        return iter(self._edges)

    def successors(self, name: str) -> List[Dependence]:
        """Outgoing edges of ``name``."""
        return list(self._succs[name])

    def predecessors(self, name: str) -> List[Dependence]:
        """Incoming edges of ``name``."""
        return list(self._preds[name])

    def opcodes(self) -> List[str]:
        """Opcode of every operation (with multiplicity)."""
        return [op.opcode for op in self._operations.values()]

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """True when ignoring distances the intra-iteration edges (distance
        0) form a DAG — required of any real dependence graph."""
        return self.topological_order() is not None

    def topological_order(self) -> Optional[List[str]]:
        """Topological order over distance-0 edges, or None on a cycle."""
        indegree = {name: 0 for name in self._operations}
        for edge in self._edges:
            if edge.distance == 0:
                indegree[edge.dst] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for edge in self._succs[name]:
                if edge.distance == 0:
                    indegree[edge.dst] -= 1
                    if indegree[edge.dst] == 0:
                        ready.append(edge.dst)
        if len(order) != len(self._operations):
            return None
        return order

    def validate(self) -> None:
        """Raise :class:`ScheduleError` on structural problems."""
        if not self._operations:
            raise ScheduleError(
                "graph %r has no operations" % self.name,
                ledger_tail=obs_ledger.active_tail(),
            )
        if not self.is_acyclic():
            raise ScheduleError(
                "graph %r has a zero-distance dependence cycle" % self.name
            , ledger_tail=obs_ledger.active_tail())

    def critical_path_length(self) -> int:
        """Longest latency path over distance-0 edges (acyclic height)."""
        order = self.topological_order()
        if order is None:
            raise ScheduleError(
                "graph %r is cyclic at distance 0" % self.name,
                ledger_tail=obs_ledger.active_tail(),
            )
        finish: Dict[str, int] = {}
        for name in order:
            start = 0
            for edge in self._preds[name]:
                if edge.distance == 0:
                    start = max(start, finish.get(edge.src, 0) + edge.latency)
            finish[name] = start
        return max(finish.values(), default=0)

    def verify_schedule(self, times: Dict[str, int], ii: Optional[int] = None) -> None:
        """Check that placement times satisfy every dependence.

        ``ii`` enables the modulo form ``t(dst) - t(src) >= latency - II *
        distance``; without it, loop-carried edges (distance > 0) are
        ignored, which is the acyclic (basic block) interpretation.
        """
        missing = [n for n in self._operations if n not in times]
        if missing:
            raise ScheduleError(
                "unscheduled operations: %s" % missing[:5],
                ledger_tail=obs_ledger.active_tail(),
            )
        for edge in self._edges:
            if ii is None:
                if edge.distance > 0:
                    continue
                slack = times[edge.dst] - times[edge.src] - edge.latency
            else:
                slack = (
                    times[edge.dst]
                    - times[edge.src]
                    - edge.latency
                    + ii * edge.distance
                )
            if slack < 0:
                raise ScheduleError(
                    "dependence %s->%s violated by %d cycles"
                    % (edge.src, edge.dst, -slack)
                , ledger_tail=obs_ledger.active_tail())

    def __repr__(self) -> str:
        return "DependenceGraph(%r, %d ops, %d edges)" % (
            self.name,
            self.num_operations,
            self.num_edges,
        )


def chain(name: str, opcodes: Iterable[str], latency: int = 1) -> DependenceGraph:
    """Convenience: a straight-line chain of operations (tests/examples)."""
    graph = DependenceGraph(name)
    previous: Optional[str] = None
    for index, opcode in enumerate(opcodes):
        node = "n%d" % index
        graph.add_operation(node, opcode)
        if previous is not None:
            graph.add_dependence(previous, node, latency)
        previous = node
    return graph
