"""Minimum initiation interval bounds for modulo scheduling (Rau '94).

``MII = max(ResMII, RecMII)``:

* **ResMII** — resource-constrained bound.  Every usage of a physical
  resource lands in one of the II slots of the modulo reservation table, so
  II must be at least the total per-iteration usage count of the most
  heavily used resource.  A second, subtler bound comes from
  self-contention: operation X cannot issue every II cycles when some
  positive multiple of II is a self-forbidden latency of X (its own usages
  would wrap onto one MRT slot).
* **RecMII** — recurrence-constrained bound.  For every dependence cycle C,
  ``II >= ceil(sum latency / sum distance)``.  Computed exactly by binary
  search over II with positive-cycle detection on edge weights
  ``latency - II * distance``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger
from repro.scheduler.ddg import DependenceGraph


def min_feasible_ii_for_op(
    matrix: ForbiddenLatencyMatrix, opcode: str
) -> int:
    """Smallest II at which ``opcode`` does not collide with itself.

    An operation issued every II cycles conflicts with its own later
    instances exactly when ``k * II`` (k >= 1) is one of its self-forbidden
    latencies.  Any II larger than the largest self-forbidden latency is
    feasible, so the search terminates.
    """
    self_latencies = {f for f in matrix.latencies(opcode, opcode) if f > 0}
    if not self_latencies:
        return 1
    limit = max(self_latencies)
    for ii in range(1, limit + 2):
        if not any(multiple % ii == 0 for multiple in self_latencies):
            return ii
    return limit + 1


def res_mii(
    machine: MachineDescription,
    opcodes: Iterable[str],
    matrix: Optional[ForbiddenLatencyMatrix] = None,
) -> int:
    """Resource-constrained minimum II for one iteration's opcodes.

    ``opcodes`` lists every operation of the loop body with multiplicity.
    The usage-count bound is exact for single-usage-per-cycle resources and
    a valid lower bound in general; the self-contention bound guards
    against IIs at which some opcode could never legally issue.
    """
    opcodes = list(opcodes)
    if matrix is None:
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
    # Opcodes may be alternative-group base names; spread successive
    # occurrences round-robin over the variants (the best case a scheduler
    # can do for replicated units, hence still a valid lower bound).
    usage_totals: Dict[str, int] = {}
    seen: Dict[str, int] = {}
    for opcode in opcodes:
        variants = machine.alternatives_of(opcode)
        variant = variants[seen.get(opcode, 0) % len(variants)]
        seen[opcode] = seen.get(opcode, 0) + 1
        for resource, _cycle in machine.table(variant).iter_usages():
            usage_totals[resource] = usage_totals.get(resource, 0) + 1
    bound = max(usage_totals.values(), default=1)
    for opcode in sorted(set(opcodes)):
        # With alternatives the scheduler may pick whichever variant is
        # self-feasible, so the bound is the minimum over variants.
        bound = max(
            bound,
            min(
                min_feasible_ii_for_op(matrix, variant)
                for variant in machine.alternatives_of(opcode)
            ),
        )
    return max(1, bound)


def res_mii_packed(
    machine: MachineDescription,
    opcodes: Iterable[str],
    slack: int = 64,
) -> int:
    """Rau's packing-based ResMII *estimator*.

    Starting from the usage-count bound, try to place every opcode's
    reservation table into an empty modulo reservation table of length II
    (first-fit over the II offsets, most-constrained opcodes first),
    increasing II until everything fits.  This is how the Iterative
    Modulo Scheduler paper estimates ResMII for complex tables; because
    first-fit can miss feasible packings it is an *estimate*, not a lower
    bound, so :func:`min_ii` deliberately does not use it — it exists for
    diagnostics and the ablation benchmarks.
    """
    opcodes = list(opcodes)
    if not opcodes:
        return 1
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    floor = res_mii(machine, opcodes, matrix=matrix)
    # Resolve alternative bases round-robin, like res_mii.
    seen: Dict[str, int] = {}
    tables = []
    for opcode in opcodes:
        variants = machine.alternatives_of(opcode)
        variant = variants[seen.get(opcode, 0) % len(variants)]
        seen[opcode] = seen.get(opcode, 0) + 1
        tables.append(machine.table(variant))
    # Most-constrained first: more usages are harder to place.
    tables.sort(key=lambda t: -t.usage_count)
    for ii in range(floor, floor + slack + 1):
        reserved = set()
        feasible = True
        for table in tables:
            placed = False
            for offset in range(ii):
                slots = {
                    (resource, (offset + cycle) % ii)
                    for resource, cycle in table.iter_usages()
                }
                if len(slots) == table.usage_count and not (
                    slots & reserved
                ):
                    reserved |= slots
                    placed = True
                    break
            if not placed:
                feasible = False
                break
        if feasible:
            return ii
    return floor + slack + 1


def _has_positive_cycle(graph: DependenceGraph, ii: int) -> bool:
    """Bellman-Ford longest-path relaxation detecting a positive cycle of
    ``latency - ii * distance`` edge weights."""
    names = [op.name for op in graph.operations()]
    dist = {name: 0 for name in names}
    edges = list(graph.edges())
    for _ in range(len(names)):
        changed = False
        for edge in edges:
            weight = edge.latency - ii * edge.distance
            candidate = dist[edge.src] + weight
            if candidate > dist[edge.dst]:
                dist[edge.dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def rec_mii(graph: DependenceGraph, upper_bound: Optional[int] = None) -> int:
    """Recurrence-constrained minimum II (exact).

    Raises :class:`ScheduleError` when the graph has a dependence cycle of
    zero total distance (which no II can satisfy if its latency sum is
    positive) — :meth:`DependenceGraph.validate` catches these earlier.
    """
    if graph.num_operations == 0:
        return 1
    if not graph.is_acyclic():
        raise ScheduleError(
            "graph %r has a zero-distance dependence cycle" % graph.name
        , ledger_tail=obs_ledger.active_tail())
    if upper_bound is None:
        upper_bound = max(
            1, sum(max(0, e.latency) for e in graph.edges())
        )
    low, high = 1, upper_bound
    if _has_positive_cycle(graph, high):
        raise ScheduleError(
            "no feasible II up to %d for graph %r" % (high, graph.name)
        , ledger_tail=obs_ledger.active_tail())
    while low < high:
        mid = (low + high) // 2
        if _has_positive_cycle(graph, mid):
            low = mid + 1
        else:
            high = mid
    return low


def min_ii(
    machine: MachineDescription,
    graph: DependenceGraph,
    matrix: Optional[ForbiddenLatencyMatrix] = None,
) -> int:
    """``MII = max(ResMII, RecMII)`` — the scheduler's starting II."""
    return max(
        res_mii(machine, graph.opcodes(), matrix=matrix),
        rec_mii(graph),
    )


def mii_attribution(
    machine: MachineDescription,
    graph: DependenceGraph,
    matrix: Optional[ForbiddenLatencyMatrix] = None,
) -> Dict[str, object]:
    """Which constraint pins MII — the blame plane of :func:`min_ii`.

    Recomputes the bound's ingredients and names the binding one:

    * ``mii`` / ``res_mii`` / ``rec_mii`` — the bound and both terms;
    * ``usage_totals`` — per-resource usage counts of one iteration (the
      ResMII numerator), sorted most-used first;
    * ``self_contention`` — per-opcode min-over-variants self-feasible
      II, for opcodes where that exceeds 1;
    * ``pinned_by`` — one dict naming the binding constraint:
      ``{"kind": "recurrence"}`` when RecMII dominates, else
      ``{"kind": "resource", "resource": ..., "usages": ...}`` for the
      argmax resource, or ``{"kind": "self-contention", "opcode": ...,
      "min_ii": ...}`` when an opcode's self-forbidden latencies exceed
      every usage total.  Ties go to recurrence, then resource (the
      scheduler cannot relax either by adding hardware of the other
      kind).
    """
    if matrix is None:
        matrix = ForbiddenLatencyMatrix.from_machine(machine)
    opcodes = list(graph.opcodes())
    usage_totals: Dict[str, int] = {}
    seen: Dict[str, int] = {}
    for opcode in opcodes:
        variants = machine.alternatives_of(opcode)
        variant = variants[seen.get(opcode, 0) % len(variants)]
        seen[opcode] = seen.get(opcode, 0) + 1
        for resource, _cycle in machine.table(variant).iter_usages():
            usage_totals[resource] = usage_totals.get(resource, 0) + 1
    usage_bound = max(usage_totals.values(), default=1)
    self_contention: Dict[str, int] = {}
    for opcode in sorted(set(opcodes)):
        feasible = min(
            min_feasible_ii_for_op(matrix, variant)
            for variant in machine.alternatives_of(opcode)
        )
        if feasible > 1:
            self_contention[opcode] = feasible
    resource_bound = res_mii(machine, opcodes, matrix=matrix)
    recurrence_bound = rec_mii(graph)
    mii = max(resource_bound, recurrence_bound)

    pinned: Dict[str, object]
    if recurrence_bound >= resource_bound:
        pinned = {"kind": "recurrence", "rec_mii": recurrence_bound}
    elif usage_bound >= resource_bound:
        resource = min(
            (r for r, n in usage_totals.items() if n == usage_bound)
        )
        pinned = {
            "kind": "resource",
            "resource": resource,
            "usages": usage_bound,
        }
    else:
        opcode, feasible = min(
            (
                (op, ii) for op, ii in self_contention.items()
                if ii == resource_bound
            ),
            key=lambda item: item[0],
        )
        pinned = {
            "kind": "self-contention",
            "opcode": opcode,
            "min_ii": feasible,
        }
    ordered_totals = dict(
        sorted(usage_totals.items(), key=lambda item: (-item[1], item[0]))
    )
    return {
        "mii": mii,
        "res_mii": resource_bound,
        "rec_mii": recurrence_bound,
        "usage_totals": ordered_totals,
        "self_contention": self_contention,
        "pinned_by": pinned,
    }
