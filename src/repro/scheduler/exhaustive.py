"""Exhaustive modulo-schedule feasibility search (for tiny loops).

The Iterative Modulo Scheduler is a heuristic: when it settles for
``II = MII + 1`` we do not know whether a schedule at MII existed.  For
small loops this module answers that question exactly, by depth-first
search over issue slots — operations are placed in height order, each
tried at every feasible time in a bounded window, with the contention
query module pruning resource-infeasible placements.

Used by tests and the optimality-audit benchmark to measure how often
the IMS misses a feasible MII (the paper reports 95.6% of loops at MII
but cannot say how many of the rest were schedulable; we can, for the
small ones).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.query.modulo import make_query_module
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.modulo import compute_heights


class SearchBudgetExceeded(ScheduleError):
    """The exhaustive search hit its node limit (result unknown)."""


def find_schedule_at_ii(
    machine: MachineDescription,
    graph: DependenceGraph,
    ii: int,
    node_limit: int = 100_000,
    span_factor: int = 3,
) -> Optional[Dict[str, int]]:
    """A modulo schedule at exactly ``ii``, or ``None`` if none exists
    within the searched window.

    A returned schedule is verified, so a non-``None`` answer is sound.
    ``None`` is exact only up to the search window: each operation is
    tried at ii consecutive times from its dependence-earliest start
    (covering every modulo slot), inside a horizon of
    ``span_factor * ii + critical-path`` cycles.  Schedules that need an
    operation far later than its earliest start to *unblock an unplaced
    predecessor* could escape the window; widen ``span_factor`` to chase
    those.

    Raises :class:`SearchBudgetExceeded` past ``node_limit`` nodes.
    """
    graph.validate()
    heights = compute_heights(graph, ii)
    order = sorted(
        (op.name for op in graph.operations()),
        key=lambda name: (-heights[name], name),
    )
    opcode_of = {op.name: op.opcode for op in graph.operations()}
    horizon = span_factor * ii + graph.critical_path_length() + 1
    qm = make_query_module(machine, modulo=ii)
    times: Dict[str, int] = {}
    tokens: Dict[str, object] = {}
    nodes = [0]

    def window(name: str) -> List[int]:
        earliest = 0
        latest = horizon
        for edge in graph.predecessors(name):
            if edge.src in times:
                earliest = max(
                    earliest,
                    times[edge.src] + edge.latency - ii * edge.distance,
                )
        for edge in graph.successors(name):
            if edge.dst in times and edge.dst != name:
                latest = min(
                    latest,
                    times[edge.dst] - edge.latency + ii * edge.distance,
                )
        if latest < earliest:
            return []
        # All modulo slots are covered by ii consecutive times; trying
        # more only shifts dependences, so cap the window at ii slots
        # past earliest (complete for resource feasibility) bounded by
        # the dependence-imposed latest time.
        return list(range(earliest, min(latest, earliest + ii - 1) + 1))

    def place(index: int) -> bool:
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise SearchBudgetExceeded(
                "exhaustive search for %r at II=%d exceeded %d nodes"
                % (graph.name, ii, node_limit)
            )
        if index == len(order):
            return True
        name = order[index]
        opcode = opcode_of[name]
        for time in window(name):
            chosen = qm.check_with_alternatives(opcode, time)
            if chosen is None:
                continue
            tokens[name] = qm.assign(chosen, time)
            times[name] = time
            if place(index + 1):
                return True
            qm.free(tokens.pop(name))
            del times[name]
        return False

    if place(0):
        graph.verify_schedule(times, ii=ii)
        return dict(times)
    return None


def is_ii_feasible(
    machine: MachineDescription,
    graph: DependenceGraph,
    ii: int,
    node_limit: int = 100_000,
) -> bool:
    """True when some modulo schedule exists at exactly ``ii``."""
    return (
        find_schedule_at_ii(machine, graph, ii, node_limit=node_limit)
        is not None
    )
