"""Value lifetimes and register pressure of modulo schedules.

The paper's scheduling context (Rau's IMS; Huff's lifetime-sensitive
modulo scheduling, cited as [4]) cares not only about II but about how
long values stay live: in a software-pipelined loop a value live for L
cycles overlaps ``ceil(L / II)`` copies of itself, each needing its own
(rotating) register.

Conventions used here:

* a value is produced by each operation that has at least one flow
  successor; its lifetime *starts at the producer's issue time* (the
  pessimistic "issue-to-last-read" convention) and *ends at the latest
  consumer's issue time*, where a consumer at iteration distance d reads
  ``d * II`` cycles later;
* ``registers`` per value is ``max(1, ceil(length / II))`` — the
  rotating-register requirement;
* ``max_live`` counts, per steady-state kernel slot, how many value
  copies are live, and takes the maximum — the MaxLive lower bound on
  any register allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.scheduler.modulo import ModuloScheduleResult


@dataclass(frozen=True)
class ValueLifetime:
    """Lifetime of one produced value within a modulo schedule."""

    producer: str
    start: int
    end: int
    ii: int

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def registers(self) -> int:
        """Rotating registers needed: overlapping live copies."""
        return max(1, -(-self.length // self.ii))


def value_lifetimes(result: ModuloScheduleResult) -> List[ValueLifetime]:
    """Lifetimes of every value produced in the schedule.

    Operations without flow successors (stores, branches) produce no
    register value and are skipped.
    """
    times = result.times
    ii = result.ii
    lifetimes: List[ValueLifetime] = []
    for op in result.graph.operations():
        consumers = [
            edge
            for edge in result.graph.successors(op.name)
            if edge.kind == "flow"
        ]
        if not consumers:
            continue
        start = times[op.name]
        end = max(
            times[edge.dst] + ii * edge.distance for edge in consumers
        )
        end = max(end, start)
        lifetimes.append(
            ValueLifetime(producer=op.name, start=start, end=end, ii=ii)
        )
    lifetimes.sort(key=lambda lt: (lt.start, lt.producer))
    return lifetimes


def register_requirement(result: ModuloScheduleResult) -> int:
    """Total rotating registers: one bank per value, sized by overlap."""
    return sum(lt.registers for lt in value_lifetimes(result))


def max_live(result: ModuloScheduleResult) -> int:
    """MaxLive: the busiest kernel slot's live-value count.

    Counts every overlapping copy: a value spanning [start, end) covers
    ``end - start`` consecutive cycles, which fold onto the kernel's II
    slots possibly multiple times.
    """
    ii = result.ii
    live: Dict[int, int] = {slot: 0 for slot in range(ii)}
    for lt in value_lifetimes(result):
        span = lt.length
        if span <= 0:
            continue
        full, rest = divmod(span, ii)
        for slot in range(ii):
            live[slot] += full
        for offset in range(rest):
            live[(lt.start + offset) % ii] += 1
    return max(live.values(), default=0)


def lifetime_report(result: ModuloScheduleResult) -> str:
    """Human-readable lifetime table for one schedule."""
    lifetimes = value_lifetimes(result)
    lines = [
        "lifetimes for %s (II=%d): %d values, MaxLive %d, "
        "%d rotating registers"
        % (
            result.graph.name,
            result.ii,
            len(lifetimes),
            max_live(result),
            register_requirement(result),
        )
    ]
    for lt in lifetimes:
        lines.append(
            "  %-16s [%3d, %3d)  length %3d  regs %d"
            % (lt.producer, lt.start, lt.end, lt.length, lt.registers)
        )
    return "\n".join(lines)
