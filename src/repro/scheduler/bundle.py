"""VLIW instruction-word (MultiOp) formation from schedules.

A VLIW like the Cydra 5 encodes one operation per functional-unit field
of each instruction word.  Given a schedule, bundling groups operations
by issue cycle and assigns each to its unit's field — the unit is
recovered from the chosen opcode's issue-slot resource (our machine
models reserve exactly one ``<unit>.issue`` resource at cycle 0).

Bundling can fail only on a buggy schedule (two operations claiming one
unit field in one cycle), so it doubles as yet another independent
validity check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger

_MISC_UNIT = "misc"


def issue_unit(machine: MachineDescription, opcode: str) -> str:
    """The functional-unit field an opcode occupies.

    Determined by the unique ``<unit>.issue`` resource the opcode
    reserves at cycle 0; opcodes without one (pseudo-ops, or machines
    not following the convention) fall into a shared "misc" field.
    """
    table = machine.table(opcode)
    units = [
        resource[: -len(".issue")]
        for resource in table.resources
        if resource.endswith(".issue") and table.uses(resource, 0)
    ]
    if not units:
        return _MISC_UNIT
    if len(units) > 1:
        raise ScheduleError(
            "opcode %r issues on several units: %s" % (opcode, units)
        , ledger_tail=obs_ledger.active_tail())
    return units[0]


@dataclass
class InstructionWord:
    """One VLIW instruction: cycle plus unit-field assignments."""

    cycle: int
    fields: Dict[str, str] = field(default_factory=dict)

    def render(self, units: List[str]) -> str:
        cells = [self.fields.get(unit, "--") for unit in units]
        return "t=%3d | %s" % (self.cycle, " | ".join(
            cell.ljust(12) for cell in cells
        ))


@dataclass
class Bundling:
    """A schedule formatted as VLIW instruction words."""

    machine: MachineDescription
    words: List[InstructionWord]
    units: List[str]

    @property
    def num_words(self) -> int:
        return len(self.words)

    @property
    def nop_fields(self) -> int:
        """Empty unit fields across all words (the VLIW density cost)."""
        return sum(
            len(self.units) - len(word.fields) for word in self.words
        )

    @property
    def density(self) -> float:
        """Fraction of unit fields holding a real operation."""
        total = self.num_words * len(self.units)
        if not total:
            return 0.0
        return 1.0 - self.nop_fields / total

    def render(self) -> str:
        header = "        " + " | ".join(
            unit.ljust(12) for unit in self.units
        )
        return "\n".join([header] + [w.render(self.units) for w in self.words])


def bundle(
    machine: MachineDescription,
    times: Dict[str, int],
    chosen_opcodes: Dict[str, str],
    modulo: Optional[int] = None,
) -> Bundling:
    """Group a schedule into instruction words.

    With ``modulo=II`` the kernel's II words are produced (operations
    land in word ``time % II``); otherwise one word per occupied cycle.
    """
    by_cycle: Dict[int, List[Tuple[str, str]]] = {}
    for name, time in times.items():
        opcode = chosen_opcodes[name]
        cycle = time % modulo if modulo is not None else time
        by_cycle.setdefault(cycle, []).append((name, opcode))

    units = sorted(
        {issue_unit(machine, opcode) for opcode in chosen_opcodes.values()}
    )
    words = []
    cycles = (
        range(modulo) if modulo is not None else sorted(by_cycle)
    )
    for cycle in cycles:
        word = InstructionWord(cycle=cycle)
        for name, opcode in sorted(by_cycle.get(cycle, ())):
            unit = issue_unit(machine, opcode)
            if unit in word.fields:
                raise ScheduleError(
                    "unit %r double-booked at cycle %d by %s and %s"
                    % (unit, cycle, word.fields[unit], name)
                , ledger_tail=obs_ledger.active_tail())
            word.fields[unit] = name
        words.append(word)
    return Bundling(machine=machine, words=words, units=units)
