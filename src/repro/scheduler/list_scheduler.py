"""Operation-driven acyclic scheduler (Cydra 5 compiler style).

Schedules a basic block by considering operations along the critical path
first — *not* in cycle order and not necessarily in topological order, so a
predecessor may be placed after its successors.  This is precisely the
unrestricted scheduling model the paper's query modules must support: the
module is queried at arbitrary cycles, both below and above already
scheduled operations.

The scheduler also honours *dangling resource requirements* from
predecessor basic blocks (paper Section 1): boundary operations may be
pre-assigned at negative issue cycles, and the block's own operations are
then scheduled around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger
from repro.obs import trace as obs
from repro.query.alternatives import FIRST_FIT
from repro.query.modulo import DISCRETE, make_query_module
from repro.query.work import WorkCounters
from repro.scheduler.ddg import DependenceGraph


@dataclass
class BlockScheduleResult:
    """Outcome of scheduling one basic block."""

    graph: DependenceGraph
    machine: MachineDescription
    times: Dict[str, int]
    chosen_opcodes: Dict[str, str]
    work: WorkCounters

    @property
    def length(self) -> int:
        """Schedule length in cycles (last issue + 1; 0 for empty)."""
        if not self.times:
            return 0
        return max(self.times.values()) + 1


class OperationDrivenScheduler:
    """Critical-path-first scheduler over a contention query module.

    Parameters
    ----------
    machine:
        Machine description (original or reduced).
    representation / word_cycles:
        Query-module representation.
    horizon_slack:
        How many cycles past the naive upper bound to search before giving
        up (a safety net; real blocks never get near it).
    """

    def __init__(
        self,
        machine: MachineDescription,
        representation: str = DISCRETE,
        word_cycles: int = 1,
        horizon_slack: int = 256,
        alternative_policy: str = FIRST_FIT,
        budget_ratio: Optional[int] = None,
        query_factory: Optional[Callable[[Optional[int]], object]] = None,
    ):
        self.machine = machine
        self.representation = representation
        self.word_cycles = word_cycles
        self.horizon_slack = horizon_slack
        self.alternative_policy = alternative_policy
        #: When set, schedule with Multiflow-style backtracking: an
        #: operation whose window is infeasible or fully contended is
        #: forced via ``assign&free``, evicting conflictors, within a
        #: budget of ``budget_ratio * N`` placements.
        self.budget_ratio = budget_ratio
        #: Optional ``modulo -> ContentionQueryModule`` callable (block
        #: scheduling always passes ``None``); corpus drivers inject
        #: shared-compilation batch modules through it.
        self.query_factory = query_factory

    def _make_query_module(self):
        if self.query_factory is not None:
            return self.query_factory(None)
        return make_query_module(
            self.machine,
            representation=self.representation,
            word_cycles=self.word_cycles,
        )

    def schedule(
        self,
        graph: DependenceGraph,
        boundary: Optional[Iterable[Tuple[str, int]]] = None,
    ) -> BlockScheduleResult:
        """Schedule an acyclic block.

        Parameters
        ----------
        graph:
            Dependence graph; distance-0 edges only are honoured (loop
            carried edges are ignored in block scheduling).
        boundary:
            Optional ``(opcode, issue_cycle)`` pairs pre-reserved before
            scheduling — the dangling requirements of predecessor blocks.
            Cycles are typically negative (the op issued before this block
            began) but any cycle is accepted.
        """
        graph.validate()
        if self.budget_ratio is not None:
            return self._schedule_backtracking(graph, boundary)
        qm = self._make_query_module()
        qm.alternative_policy = self.alternative_policy
        for opcode, cycle in boundary or ():
            qm.assign(opcode, cycle)

        heights = self._heights(graph)
        order = sorted(
            (op.name for op in graph.operations()),
            key=lambda n: (-heights[n], n),
        )
        times: Dict[str, int] = {}
        chosen: Dict[str, str] = {}
        horizon = graph.critical_path_length() + graph.num_operations
        horizon += self.horizon_slack

        tracer = obs.current()
        ledger = obs_ledger.current()
        with obs.span(
            "list.schedule", obs.CAT_SCHED,
            block=graph.name, machine=self.machine.name,
        ) as block_span:
            for name in order:
                opcode = graph.operation(name).opcode
                estart, lstart = self._window(graph, name, times)
                upper = lstart if lstart is not None else horizon
                slot, alternative = qm.first_free_with_alternatives(
                    opcode, estart, upper + 1
                )
                if slot is None:
                    if ledger is not None:
                        # Provenance: name what saturates the window
                        # before failing (read-only attributed scan).
                        scan: List[tuple] = []
                        qm.check_range(
                            opcode, estart, upper + 1, attribute=scan
                        )
                        ledger.record(obs_ledger.GIVE_UP, {
                            "op": name, "opcode": opcode,
                            "window": [estart, upper + 1],
                            "window_blame": [
                                cell.to_dict() for _cycle, cell in scan[:8]
                            ],
                        })
                    raise ScheduleError(
                        "no contention-free slot for %s in [%d, %d]"
                        % (name, estart, upper),
                        ledger_tail=obs_ledger.active_tail(),
                    )
                qm.assign(alternative, slot)
                times[name] = slot
                chosen[name] = alternative
                if tracer is not None:
                    tracer.event(
                        "list.place", obs.CAT_SCHED,
                        op=name, opcode=alternative, cycle=slot,
                    )
                if ledger is not None:
                    ledger.record(obs_ledger.PLACE, {
                        "op": name, "opcode": opcode,
                        "alternative": alternative, "cycle": slot,
                        "window": [estart, upper + 1],
                    })
            block_span.set(
                placements=len(times),
                length=(max(times.values()) + 1) if times else 0,
            )

        graph.verify_schedule(times)
        return BlockScheduleResult(
            graph=graph,
            machine=self.machine,
            times=times,
            chosen_opcodes=chosen,
            work=qm.work,
        )

    # ------------------------------------------------------------------
    def _schedule_backtracking(
        self,
        graph: DependenceGraph,
        boundary: Optional[Iterable[Tuple[str, int]]] = None,
    ) -> BlockScheduleResult:
        """Multiflow-style scalar scheduling with bounded backtracking.

        Like the plain path, but an operation whose dependence window is
        infeasible — or contains no contention-free slot — is *forced*
        into its earliest legal cycle with ``assign&free``: resource
        conflictors are evicted and deadline-violated neighbours are
        unscheduled, all within ``budget_ratio * N`` placements.
        Boundary operations are pinned and never evicted (their
        reservations belong to an already-emitted block), which is why
        they are re-asserted after any eviction touching them.
        """
        qm = self._make_query_module()
        qm.alternative_policy = self.alternative_policy
        boundary = list(boundary or ())
        pinned = {}
        for opcode, cycle in boundary:
            token, _ = qm.assign_free(opcode, cycle)
            pinned[token.ident] = (opcode, cycle)

        heights = self._heights(graph)
        names = [op.name for op in graph.operations()]
        max_decisions = max(1, self.budget_ratio) * len(names)
        unscheduled = set(names)
        times: Dict[str, int] = {}
        tokens: Dict[str, object] = {}
        owner_of = {}
        chosen: Dict[str, str] = {}
        prev_time: Dict[str, int] = {}
        horizon = (
            graph.critical_path_length()
            + graph.num_operations
            + self.horizon_slack
        )

        tracer = obs.current()
        ledger = obs_ledger.current()

        def unschedule(name: str) -> None:
            token = tokens.pop(name)
            owner_of.pop(token.ident, None)
            qm.free(token)
            if ledger is not None:
                ledger.record(obs_ledger.UNSCHEDULE, {
                    "op": name, "cycle": times[name],
                })
            del times[name]
            unscheduled.add(name)
            if tracer is not None:
                tracer.event(
                    "list.unschedule", obs.CAT_SCHED, op=name
                )

        block_span = obs.span(
            "list.schedule_backtracking", obs.CAT_SCHED,
            block=graph.name, machine=self.machine.name,
            budget=max_decisions,
        )
        with block_span:
            self._backtracking_loop(
                qm, graph, heights, pinned, unscheduled, times, tokens,
                owner_of, chosen, prev_time, max_decisions, horizon,
                unschedule,
                tracer,
            )
            block_span.set(placements=len(times))

        graph.verify_schedule(times)
        return BlockScheduleResult(
            graph=graph,
            machine=self.machine,
            times=times,
            chosen_opcodes=chosen,
            work=qm.work,
        )

    def _backtracking_loop(
        self, qm, graph, heights, pinned, unscheduled, times, tokens,
        owner_of, chosen, prev_time, max_decisions, horizon, unschedule,
        tracer,
    ) -> None:
        decisions = 0
        ledger = obs_ledger.current()
        while unscheduled:
            if decisions >= max_decisions:
                if ledger is not None:
                    ledger.record(obs_ledger.BUDGET, {
                        "block": graph.name,
                        "decisions": decisions,
                        "budget": max_decisions,
                    })
                raise ScheduleError(
                    "backtracking budget (%d) exhausted for %r"
                    % (max_decisions, graph.name),
                    ledger_tail=obs_ledger.active_tail(),
                )
            name = min(
                unscheduled, key=lambda n: (-heights[n], n)
            )
            unscheduled.discard(name)
            opcode = graph.operation(name).opcode
            estart = 0
            lstart: Optional[int] = None
            for edge in graph.predecessors(name):
                if edge.distance == 0 and edge.src in times:
                    estart = max(estart, times[edge.src] + edge.latency)
            for edge in graph.successors(name):
                if edge.distance == 0 and edge.dst in times:
                    deadline = times[edge.dst] - edge.latency
                    lstart = (
                        deadline if lstart is None else min(lstart, deadline)
                    )
            slot = None
            alternative = None
            if lstart is None or lstart >= estart:
                upper = lstart if lstart is not None else horizon
                slot, alternative = qm.first_free_with_alternatives(
                    opcode, estart, upper + 1
                )
            forced = slot is None
            blame = None
            if forced:
                previous = prev_time.get(name)
                slot = (
                    estart
                    if previous is None or estart > previous
                    else previous + 1
                )
                alternative = self.machine.alternatives_of(opcode)[0]
                if ledger is not None:
                    # Read-only attributed probe of the forced slot.
                    _free, slot_blame = qm.check_attributed(
                        alternative, slot
                    )
                    blame = (
                        slot_blame.to_dict()
                        if slot_blame is not None else None
                    )

            token, evicted = qm.assign_free(alternative, slot)
            decisions += 1
            times[name] = slot
            prev_time[name] = slot
            tokens[name] = token
            owner_of[token.ident] = name
            chosen[name] = alternative
            if tracer is not None:
                tracer.event(
                    "list.place", obs.CAT_SCHED,
                    op=name, opcode=alternative, cycle=slot,
                )
            if ledger is not None:
                record = {
                    "op": name, "opcode": opcode,
                    "alternative": alternative, "cycle": slot,
                    "window": [estart, lstart],
                    "decisions": decisions, "budget": max_decisions,
                }
                if forced:
                    record["blame"] = blame
                ledger.record(
                    obs_ledger.FORCE if forced else obs_ledger.PLACE,
                    record,
                )

            for victim_token in evicted:
                if victim_token.ident in pinned:
                    # Never give up a predecessor block's reservation:
                    # undo by unscheduling *this* op and re-pinning.
                    opcode_pinned, cycle_pinned = pinned.pop(
                        victim_token.ident
                    )
                    unschedule(name)
                    new_token, re_evicted = qm.assign_free(
                        opcode_pinned, cycle_pinned
                    )
                    assert not re_evicted
                    pinned[new_token.ident] = (opcode_pinned, cycle_pinned)
                    prev_time[name] = slot  # forces a later retry slot
                    break
                victim = owner_of.pop(victim_token.ident)
                if ledger is not None:
                    ledger.record(obs_ledger.EVICT, {
                        "op": victim, "by": name,
                        "reason": "resource",
                        "cycle": times[victim],
                    })
                del times[victim]
                del tokens[victim]
                unscheduled.add(victim)
                if tracer is not None:
                    tracer.event(
                        "list.evict_resource", obs.CAT_SCHED,
                        op=victim, by=name,
                    )
            else:
                # Placement stands: evict neighbours whose dependences
                # the new time violates.
                for edge in graph.successors(name):
                    if edge.distance == 0 and edge.dst in times:
                        if times[name] + edge.latency > times[edge.dst]:
                            unschedule(edge.dst)
                for edge in graph.predecessors(name):
                    if edge.distance == 0 and edge.src in times:
                        if times[edge.src] + edge.latency > times[name]:
                            unschedule(edge.src)

    @staticmethod
    def _heights(graph: DependenceGraph) -> Dict[str, int]:
        """Longest latency path to any sink over distance-0 edges."""
        order = graph.topological_order()
        if order is None:
            raise ScheduleError(
                "block graph %r is cyclic" % graph.name,
                ledger_tail=obs_ledger.active_tail(),
            )
        heights = {name: 0 for name in order}
        for name in reversed(order):
            for edge in graph.successors(name):
                if edge.distance == 0:
                    candidate = heights[edge.dst] + edge.latency
                    if candidate > heights[name]:
                        heights[name] = candidate
        return heights

    @staticmethod
    def _window(
        graph: DependenceGraph, name: str, times: Dict[str, int]
    ) -> Tuple[int, Optional[int]]:
        """Feasible issue window given already-scheduled neighbours.

        Because operations are placed in priority order, successors may be
        scheduled before this operation; they impose a *deadline* just as
        scheduled predecessors impose a release time.
        """
        estart = 0
        lstart: Optional[int] = None
        for edge in graph.predecessors(name):
            if edge.distance == 0 and edge.src in times:
                estart = max(estart, times[edge.src] + edge.latency)
        for edge in graph.successors(name):
            if edge.distance == 0 and edge.dst in times:
                deadline = times[edge.dst] - edge.latency
                lstart = deadline if lstart is None else min(lstart, deadline)
        if lstart is not None and lstart < estart:
            raise ScheduleError(
                "infeasible window for %s: [%d, %d]" % (name, estart, lstart),
                ledger_tail=obs_ledger.active_tail(),
            )
        return estart, lstart
