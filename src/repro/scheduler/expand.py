"""Expansion of modulo schedules into flat overlapped code.

A modulo schedule assigns each operation a time ``t``; iteration ``i`` of
the loop issues it at ``t + i * II``.  Expanding a schedule over N
iterations yields the familiar software-pipeline structure:

* a **prologue** that fills the pipeline (stages entering),
* a steady-state **kernel** of II cycles that repeats,
* an **epilogue** that drains it.

:func:`expand` materializes the overlapped schedule, re-validates it
against the machine (every MRT guarantee must also hold in flat time) and
against the dependence graph, and renders the kernel with stage
annotations — useful both as a debugging artifact and as the ground truth
for the tests of the modulo query machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger
from repro.scheduler.modulo import ModuloScheduleResult


@dataclass
class ExpandedSchedule:
    """A modulo schedule unrolled over a fixed number of iterations.

    Attributes
    ----------
    result:
        The kernel (modulo) schedule this was expanded from.
    iterations:
        Number of loop iterations materialized.
    placements:
        ``(operation name, iteration) -> absolute issue cycle``.
    """

    result: ModuloScheduleResult
    iterations: int
    placements: Dict[Tuple[str, int], int]

    @property
    def ii(self) -> int:
        return self.result.ii

    @property
    def num_stages(self) -> int:
        """Pipeline depth in stages: ceil(span / II)."""
        span = max(self.result.times.values()) + 1 if self.result.times else 0
        return max(1, -(-span // self.ii))

    @property
    def length(self) -> int:
        """Total cycles of the expanded schedule."""
        if not self.placements:
            return 0
        last = max(self.placements.values())
        tables = self.result.machine
        longest = max(
            tables.table(opcode).length
            for opcode in self.result.chosen_opcodes.values()
        )
        return last + max(1, longest)

    def stage_of(self, name: str) -> int:
        """Pipeline stage of an operation (0 = first II cycles)."""
        return self.result.times[name] // self.ii

    def issue_cycle(self, name: str, iteration: int) -> int:
        return self.placements[(name, iteration)]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check resources and dependences in *flat* time.

        The MRT argument says a modulo-legal kernel is conflict-free for
        any number of overlapped iterations; this verifies that claim
        concretely for the materialized window.
        """
        machine = self.result.machine
        reserved: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for (name, iteration), cycle in self.placements.items():
            opcode = self.result.chosen_opcodes[name]
            for resource, use in machine.table(opcode).iter_usages():
                slot = (resource, cycle + use)
                if slot in reserved:
                    raise ScheduleError(
                        "flat conflict at %s between %s and %s"
                        % (slot, reserved[slot], (name, iteration))
                    , ledger_tail=obs_ledger.active_tail())
                reserved[slot] = (name, iteration)
        for edge in self.result.graph.edges():
            for iteration in range(self.iterations):
                target = iteration + edge.distance
                if target >= self.iterations:
                    continue
                src_cycle = self.placements[(edge.src, iteration)]
                dst_cycle = self.placements[(edge.dst, target)]
                if dst_cycle - src_cycle < edge.latency:
                    raise ScheduleError(
                        "flat dependence %s[%d] -> %s[%d] violated"
                        % (edge.src, iteration, edge.dst, target)
                    , ledger_tail=obs_ledger.active_tail())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_kernel(self) -> str:
        """The steady-state kernel: II rows of (operation, stage) slots."""
        by_slot: Dict[int, List[str]] = {s: [] for s in range(self.ii)}
        for name in sorted(self.result.times):
            slot = self.result.times[name] % self.ii
            by_slot[slot].append(
                "%s(s%d)" % (name, self.stage_of(name))
            )
        lines = ["kernel (II=%d, %d stages):" % (self.ii, self.num_stages)]
        for slot in range(self.ii):
            lines.append(
                "  slot %2d: %s" % (slot, "  ".join(by_slot[slot]) or "-")
            )
        return "\n".join(lines)

    def render_timeline(self, limit: int = 64) -> str:
        """Issue timeline of the expanded schedule (first ``limit`` cycles)."""
        by_cycle: Dict[int, List[str]] = {}
        for (name, iteration), cycle in self.placements.items():
            by_cycle.setdefault(cycle, []).append(
                "%s[%d]" % (name, iteration)
            )
        lines = []
        for cycle in sorted(by_cycle):
            if cycle >= limit:
                lines.append("  ... (%d more cycles)" % (self.length - limit))
                break
            lines.append(
                "  t=%3d: %s" % (cycle, "  ".join(sorted(by_cycle[cycle])))
            )
        return "\n".join(lines)


def expand(result: ModuloScheduleResult, iterations: int) -> ExpandedSchedule:
    """Materialize ``iterations`` overlapped copies of a modulo schedule.

    Raises :class:`ScheduleError` if the expansion is not conflict-free —
    which would indicate a bug in the modulo query machinery, so the
    expansion doubles as an end-to-end oracle.
    """
    if iterations < 1:
        raise ScheduleError(
            "need at least one iteration",
            ledger_tail=obs_ledger.active_tail(),
        )
    placements = {
        (name, iteration): time + iteration * result.ii
        for name, time in result.times.items()
        for iteration in range(iterations)
    }
    expanded = ExpandedSchedule(
        result=result, iterations=iterations, placements=placements
    )
    expanded.validate()
    return expanded
