"""Iterative Modulo Scheduling (Rau, MICRO-27 1994) — paper Section 8.

The scheduler that evaluates the contention query modules.  Its defining
features, all exercised here:

* operations are considered in *priority* order (height along critical
  paths), not cycle order — the unrestricted scheduling model;
* an operation may be scheduled into a slot that conflicts, in which case
  the conflicting operations are *unscheduled* via ``assign&free``;
* placements that violate dependences of already-scheduled successors
  unschedule those successors;
* a budget of ``budget_ratio * N`` scheduling decisions bounds the work per
  II; exceeding it restarts the attempt with II + 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger
from repro.obs import trace as obs
from repro.query.alternatives import FIRST_FIT
from repro.query.modulo import DISCRETE, make_query_module
from repro.query.work import CHECK, CHECK_RANGE, WorkCounters
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.mii import min_ii


def compute_heights(graph: DependenceGraph, ii: int) -> Dict[str, int]:
    """Height-based priority: longest path to any sink with edge weights
    ``latency - II * distance``.

    Well-defined whenever II >= RecMII (no positive cycles); computed by
    relaxation to a fixed point.
    """
    heights = {op.name: 0 for op in graph.operations()}
    edges = list(graph.edges())
    for _ in range(graph.num_operations + 1):
        changed = False
        for edge in edges:
            candidate = heights[edge.dst] + edge.latency - ii * edge.distance
            if candidate > heights[edge.src]:
                heights[edge.src] = candidate
                changed = True
        if not changed:
            break
    else:
        raise ScheduleError(
            "positive cycle at II=%d while computing heights" % ii,
            ledger_tail=obs_ledger.active_tail(),
        )
    return heights


@dataclass
class AttemptStats:
    """Statistics of one scheduling attempt at a fixed II."""

    ii: int
    decisions: int
    evictions_resource: int
    evictions_dependence: int
    budget: int
    succeeded: bool
    budget_exceeded: bool

    @property
    def reversals(self) -> int:
        """Scheduling decisions that were later reversed."""
        return self.evictions_resource + self.evictions_dependence


@dataclass
class ModuloScheduleResult:
    """Outcome of modulo-scheduling one loop.

    ``times`` maps operation names to schedule times; the modulo issue slot
    of an operation is ``times[name] % ii``.  ``chosen_opcodes`` records the
    alternative selected for each operation.
    """

    graph: DependenceGraph
    machine: MachineDescription
    ii: int
    mii: int
    times: Dict[str, int]
    chosen_opcodes: Dict[str, str]
    attempts: List[AttemptStats]
    work: WorkCounters
    #: check queries issued per scheduling decision (paper Section 8
    #: reports this distribution: 4.74 on average for the Cydra 5).
    check_distribution: Counter = field(default_factory=Counter)

    @property
    def num_operations(self) -> int:
        return self.graph.num_operations

    @property
    def ii_over_mii(self) -> float:
        return self.ii / self.mii

    @property
    def optimal(self) -> bool:
        """True when the achieved II equals the lower bound MII."""
        return self.ii == self.mii

    @property
    def total_decisions(self) -> int:
        return sum(a.decisions for a in self.attempts)

    @property
    def decisions_per_op(self) -> float:
        """Scheduling decisions per operation, averaged over attempts —
        the paper's Table 5 metric."""
        per_attempt = [a.decisions / self.num_operations for a in self.attempts]
        return sum(per_attempt) / len(per_attempt)

    @property
    def any_reversals(self) -> bool:
        return any(a.reversals > 0 for a in self.attempts)

    @property
    def checks_per_decision(self) -> float:
        """Average check queries per scheduling decision."""
        decisions = sum(self.check_distribution.values())
        if not decisions:
            return 0.0
        total = sum(k * v for k, v in self.check_distribution.items())
        return total / decisions


class IterativeModuloScheduler:
    """Rau's Iterative Modulo Scheduler over a contention query module.

    Parameters
    ----------
    machine:
        Machine description (original or reduced — schedules are identical
        because forbidden latencies are identical; only query cost varies).
    representation / word_cycles:
        Query-module representation to drive (see
        :func:`repro.query.make_query_module`).
    budget_ratio:
        Scheduling-decision budget per attempt, as a multiple of the number
        of operations (the paper uses 6).
    max_ii_slack:
        Give up after ``MII + max_ii_slack`` failed IIs.
    alternative_policy:
        Probe order for ``check_with_alternatives`` (see
        :mod:`repro.query.alternatives`).
    placement_policy:
        ``"earliest"`` (Rau's default: scan the II window upward from
        Estart) or ``"lifetime"`` (lifetime-sensitive, after Huff: when
        an operation's scheduled *consumers* pin its deadline side, scan
        the window downward from the latest feasible slot so produced
        values live as briefly as possible).  Both produce legal
        schedules; they trade scheduling freedom against register
        pressure — see ``benchmarks/test_ablation_lifetime.py``.
    query_factory:
        Optional ``modulo -> ContentionQueryModule`` callable replacing
        the default :func:`~repro.query.make_query_module` per-attempt
        construction.  Corpus drivers inject shared-compilation batch
        modules through it (see :mod:`repro.scheduler.corpus`); the
        factory must return a fresh, empty module per call.
    """

    def __init__(
        self,
        machine: MachineDescription,
        representation: str = DISCRETE,
        word_cycles: int = 1,
        budget_ratio: int = 6,
        max_ii_slack: int = 64,
        matrix: Optional[ForbiddenLatencyMatrix] = None,
        alternative_policy: str = FIRST_FIT,
        placement_policy: str = "earliest",
        query_factory: Optional[Callable[[Optional[int]], object]] = None,
    ):
        self.machine = machine
        self.representation = representation
        self.word_cycles = word_cycles
        self.budget_ratio = budget_ratio
        self.max_ii_slack = max_ii_slack
        self.matrix = matrix or ForbiddenLatencyMatrix.from_machine(machine)
        self.alternative_policy = alternative_policy
        self.query_factory = query_factory
        if placement_policy not in ("earliest", "lifetime"):
            raise ScheduleError(
                "unknown placement policy %r" % placement_policy,
                ledger_tail=obs_ledger.active_tail(),
            )
        self.placement_policy = placement_policy

    # ------------------------------------------------------------------
    def schedule(
        self, graph: DependenceGraph, budget=None
    ) -> ModuloScheduleResult:
        """Modulo-schedule a loop; raises :class:`ScheduleError` on failure.

        ``budget`` is an optional :class:`repro.resilience.Budget` checked
        at every attempt boundary and once per scheduling decision (charged
        the query module's work-unit delta, so the currency matches
        :class:`~repro.query.work.WorkCounters`).  Exceeding it raises
        :class:`~repro.errors.BudgetExceeded` with phase ``"ims"`` and the
        partial schedule of the in-flight attempt.
        """
        graph.validate()
        with obs.span(
            "ims.schedule", obs.CAT_SCHED,
            loop=graph.name, machine=self.machine.name,
        ) as schedule_span:
            mii = min_ii(self.machine, graph, matrix=self.matrix)
            work = WorkCounters()
            attempts: List[AttemptStats] = []
            check_distribution = Counter()
            for ii in range(mii, mii + self.max_ii_slack + 1):
                if budget is not None:
                    budget.checkpoint(
                        "ims", progress="attempt II=%d" % ii,
                        partial={"ii": ii, "attempts": list(attempts)},
                    )
                outcome = self._attempt(graph, ii, work, budget_obj=budget)
                attempts.append(outcome.stats)
                check_distribution.update(outcome.check_counts)
                if outcome.stats.succeeded:
                    schedule_span.set(ii=ii, mii=mii, attempts=len(attempts))
                    break
            else:
                obs.event(
                    "ims.give_up", obs.CAT_SCHED,
                    loop=graph.name, max_ii=mii + self.max_ii_slack,
                )
                ledger = obs_ledger.current()
                if ledger is not None:
                    ledger.record(obs_ledger.GIVE_UP, {
                        "loop": graph.name,
                        "ii_range": [mii, mii + self.max_ii_slack],
                    })
                raise ScheduleError(
                    "failed to schedule %r up to II=%d"
                    % (graph.name, mii + self.max_ii_slack),
                    ii_range=(mii, mii + self.max_ii_slack),
                    attempts=attempts,
                    budget_exceeded=any(
                        a.budget_exceeded for a in attempts
                    ),
                    ledger_tail=obs_ledger.active_tail(),
                )
        result = ModuloScheduleResult(
            graph=graph,
            machine=self.machine,
            ii=ii,
            mii=mii,
            times=outcome.times,
            chosen_opcodes=outcome.chosen,
            attempts=attempts,
            work=work,
            check_distribution=check_distribution,
        )
        self._verify(result)
        return result

    # ------------------------------------------------------------------
    @dataclass
    class _Attempt:
        stats: AttemptStats
        times: Dict[str, int] = field(default_factory=dict)
        chosen: Dict[str, str] = field(default_factory=dict)
        check_counts: Counter = field(default_factory=Counter)

    def _attempt(
        self, graph: DependenceGraph, ii: int, work: WorkCounters,
        budget_obj=None,
    ) -> "IterativeModuloScheduler._Attempt":
        if self.query_factory is not None:
            qm = self.query_factory(ii)
        else:
            qm = make_query_module(
                self.machine,
                representation=self.representation,
                word_cycles=self.word_cycles,
                modulo=ii,
            )
        qm.alternative_policy = self.alternative_policy
        heights = compute_heights(graph, ii)
        names = [op.name for op in graph.operations()]
        opcode_of = {op.name: op.opcode for op in graph.operations()}
        budget = self.budget_ratio * len(names)
        decisions = 0
        evict_resource = 0
        evict_dependence = 0

        unscheduled = set(names)
        times: Dict[str, int] = {}
        tokens: Dict[str, object] = {}
        token_owner = {}
        chosen: Dict[str, str] = {}
        prev_time: Dict[str, int] = {}

        def priority(name: str) -> Tuple[int, str]:
            return (-heights[name], name)

        tracer = obs.current()
        ledger = obs_ledger.current()
        if ledger is not None:
            ledger.record(obs_ledger.ATTEMPT, {
                "ii": ii, "phase": "start",
                "loop": graph.name, "budget": budget,
            })
        check_counts = Counter()
        attempt_span = obs.span(
            "ims.attempt", obs.CAT_SCHED,
            loop=graph.name, ii=ii, budget=budget,
        )
        last_units = 0
        with attempt_span:
            while unscheduled and decisions < budget:
                if budget_obj is not None:
                    total_units = qm.work.total_units
                    budget_obj.checkpoint(
                        "ims.attempt",
                        units=total_units - last_units,
                        progress="II=%d, %d placed" % (ii, len(times)),
                        partial={"ii": ii, "times": dict(times)},
                    )
                    last_units = total_units
                name = min(unscheduled, key=priority)
                unscheduled.discard(name)
                checks_before = (
                    qm.work.calls[CHECK] + qm.work.calls[CHECK_RANGE]
                )
                estart = 0
                for edge in graph.predecessors(name):
                    if edge.src in times:
                        bound = (
                            times[edge.src]
                            + edge.latency
                            - ii * edge.distance
                        )
                        if bound > estart:
                            estart = bound

                # Search an II-wide window for a contention-free slot
                # with one batched scan per alternative.  The lifetime
                # policy scans downward from the latest slot permitted
                # by already-scheduled consumers (when any exist),
                # shortening the lifetimes of this op's produced value.
                window = (estart, estart + ii, 1)
                if self.placement_policy == "lifetime":
                    deadline = None
                    for edge in graph.successors(name):
                        if edge.dst in times and edge.dst != name:
                            bound = (
                                times[edge.dst]
                                - edge.latency
                                + ii * edge.distance
                            )
                            deadline = (
                                bound
                                if deadline is None
                                else min(deadline, bound)
                            )
                    if deadline is not None and deadline >= estart:
                        upper = min(deadline, estart + ii - 1)
                        window = (estart, upper + 1, -1)
                slot, alternative = qm.first_free_with_alternatives(
                    opcode_of[name], *window
                )
                forced = slot is None
                blame = None
                window_blame: List[dict] = []
                if forced:
                    # Forced placement (Rau): earliest legal slot, but
                    # strictly after the previous placement when
                    # re-scheduling at the same spot, to guarantee
                    # forward progress.
                    previous = prev_time.get(name)
                    if previous is None or estart > previous:
                        slot = estart
                    else:
                        slot = previous + 1
                    alternative = self.machine.alternatives_of(
                        opcode_of[name]
                    )[0]
                    if ledger is not None:
                        # Provenance: name what blocks the forced slot
                        # and the exhausted window.  Read-only attributed
                        # probes — the placement trajectory is unchanged.
                        _free, slot_blame = qm.check_attributed(
                            alternative, slot
                        )
                        blame = (
                            slot_blame.to_dict()
                            if slot_blame is not None else None
                        )
                        scan: List[tuple] = []
                        qm.check_range(
                            alternative, window[0], window[1],
                            attribute=scan,
                        )
                        window_blame = [
                            cell.to_dict() for _cycle, cell in scan[:8]
                        ]

                checks_after = (
                    qm.work.calls[CHECK] + qm.work.calls[CHECK_RANGE]
                )
                check_counts[checks_after - checks_before] += 1
                token, evicted = qm.assign_free(alternative, slot)
                decisions += 1
                times[name] = slot
                prev_time[name] = slot
                tokens[name] = token
                token_owner[token.ident] = name
                chosen[name] = alternative
                if tracer is not None:
                    tracer.event(
                        "ims.force" if forced else "ims.place",
                        obs.CAT_SCHED,
                        op=name, opcode=alternative, cycle=slot, ii=ii,
                    )
                if ledger is not None:
                    record = {
                        "ii": ii, "op": name, "opcode": opcode_of[name],
                        "alternative": alternative, "cycle": slot,
                        "window": [window[0], window[1]],
                        "direction": window[2],
                        "decisions": decisions, "budget": budget,
                    }
                    if forced:
                        record["blame"] = blame
                        record["window_blame"] = window_blame
                    ledger.record(
                        obs_ledger.FORCE if forced else obs_ledger.PLACE,
                        record,
                    )

                for victim_token in evicted:
                    victim = token_owner.pop(victim_token.ident)
                    evict_resource += 1
                    if ledger is not None:
                        ledger.record(obs_ledger.EVICT, {
                            "ii": ii, "op": victim, "by": name,
                            "reason": "resource",
                            "cycle": times[victim],
                        })
                    del times[victim]
                    del tokens[victim]
                    unscheduled.add(victim)
                    if tracer is not None:
                        tracer.event(
                            "ims.evict_resource", obs.CAT_SCHED,
                            op=victim, by=name, ii=ii,
                        )

                # Unschedule successors whose dependences the placement
                # breaks.
                for edge in graph.successors(name):
                    succ = edge.dst
                    if succ == name or succ not in times:
                        continue
                    if (
                        times[name] + edge.latency - ii * edge.distance
                        > times[succ]
                    ):
                        victim_token = tokens.pop(succ)
                        token_owner.pop(victim_token.ident, None)
                        qm.free(victim_token)
                        evict_dependence += 1
                        if ledger is not None:
                            ledger.record(obs_ledger.EVICT, {
                                "ii": ii, "op": succ, "by": name,
                                "reason": "dependence",
                                "cycle": times[succ],
                            })
                        del times[succ]
                        unscheduled.add(succ)
                        if tracer is not None:
                            tracer.event(
                                "ims.evict_dependence", obs.CAT_SCHED,
                                op=succ, by=name, ii=ii,
                            )

            succeeded = not unscheduled
            attempt_span.set(
                decisions=decisions,
                evictions=evict_resource + evict_dependence,
                succeeded=succeeded,
            )
            if tracer is not None:
                tracer.count("sched.ims.decisions", decisions)
                if not succeeded:
                    tracer.event(
                        "ims.budget_exceeded", obs.CAT_SCHED,
                        loop=graph.name, ii=ii, budget=budget,
                    )
            if ledger is not None:
                ledger.record(obs_ledger.ATTEMPT, {
                    "ii": ii, "phase": "end", "loop": graph.name,
                    "succeeded": succeeded,
                    "budget_exceeded": not succeeded,
                    "decisions": decisions, "budget": budget,
                    "evictions_resource": evict_resource,
                    "evictions_dependence": evict_dependence,
                })
        work.merge(qm.work)
        stats = AttemptStats(
            ii=ii,
            decisions=decisions,
            evictions_resource=evict_resource,
            evictions_dependence=evict_dependence,
            budget=budget,
            succeeded=succeeded,
            budget_exceeded=not succeeded,
        )
        return self._Attempt(
            stats=stats, times=times, chosen=chosen,
            check_counts=check_counts,
        )

    # ------------------------------------------------------------------
    def _verify(self, result: ModuloScheduleResult) -> None:
        """Re-check the final schedule against dependences and resources."""
        result.graph.verify_schedule(result.times, ii=result.ii)
        reserved = {}
        for name, time in result.times.items():
            opcode = result.chosen_opcodes[name]
            for resource, cycle in self.machine.table(opcode).iter_usages():
                slot = (resource, (time + cycle) % result.ii)
                if slot in reserved:
                    raise ScheduleError(
                        "resource contention between %s and %s at MRT slot %s"
                        % (reserved[slot], name, slot),
                        ledger_tail=obs_ledger.active_tail(),
                    )
                reserved[slot] = name
