"""Corpus-scale batch scheduling: one compiled kernel, many loops.

The per-loop pipeline compiles a fresh query kernel for every loop (and,
inside IMS, for every II attempt), so scheduling the 1327-loop suite
pays the machine-level compilation over and over for the *same*
description.  This driver schedules a whole
:func:`~repro.workloads.loopgen.loop_suite` against one
:class:`~repro.query.batch.SharedCompilation` handle: every loop's
every II attempt draws :class:`~repro.query.batch.BatchQueryModule`
instances from shared per-II caches, ``compile`` is charged once per
machine digest, and window scans ride the columnar batch plane (one
``batch`` unit per scan instead of one collision bitset per live pair).

Degradation is loop-local, never corpus-fatal:

* a shared :class:`~repro.resilience.budget.Budget` is checkpointed at
  every loop boundary; once starved, remaining loops are recorded as
  failed outcomes and the corpus result is still served;
* with a :class:`~repro.resilience.fallback.FallbackPolicy`, each loop
  runs the full scheduling ladder (IMS escalation, then the flat list
  rung), so a hard loop degrades alone while its neighbours pipeline.

``processes > 1`` fans the suite out over a ``multiprocessing`` pool,
sharded deterministically; every worker rebuilds the shared compilation
for the parent's machine digest with compile charging suppressed, and
the parent charges the kernel build exactly once — so the query-path
work units (``check``/``check_range``/``first_free``/``batch``) are
identical serial vs parallel.  (Per-II *fold* compilation is re-done
per worker, so only the ``compile`` currency may differ in parallel
runs.)  Schedules are byte-identical across serial, parallel, numpy,
and pure-python runs — asserted by ``tests/test_corpus.py`` and the
fuzz oracle's ``batch`` differential stage.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.machine import MachineDescription
from repro.errors import BudgetExceeded, ScheduleError
from repro.obs import trace as obs
from repro.query.batch import SharedCompilation, batch_backend, machine_digest
from repro.query.modulo import BATCH, make_query_module
from repro.query.work import COMPILE, WorkCounters
from repro.resilience.budget import Budget
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.modulo import IterativeModuloScheduler

#: The IMS ladder rung name (``repro.resilience.fallback.RUNG_IMS``),
#: inlined because :mod:`repro.resilience.fallback` imports the
#: scheduler package — importing it here at module scope would make
#: ``import repro.resilience`` order-dependent.  Pinned by a test.
RUNG_IMS = "ims"

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from repro.resilience.fallback import FallbackPolicy

Signature = Tuple[
    int, Tuple[Tuple[str, int], ...], Tuple[Tuple[str, str], ...]
]


def schedule_signature(
    ii: int, times: Dict[str, int], chosen_opcodes: Dict[str, str]
) -> Signature:
    """Canonical ``(II, placements, alternatives)`` fingerprint.

    The corpus driver, the fuzz oracle's differential stages, and the
    corpus benchmarks all compare schedules through this one shape, so
    "byte-identical schedules" means the same thing everywhere.
    """
    return (
        ii,
        tuple(sorted(times.items())),
        tuple(sorted(chosen_opcodes.items())),
    )


@dataclass
class LoopOutcome:
    """One loop of a corpus run: its schedule, or why there is none."""

    name: str
    ops: int
    ii: Optional[int] = None
    mii: Optional[int] = None
    times: Optional[Dict[str, int]] = None
    chosen_opcodes: Optional[Dict[str, str]] = None
    #: Serving ladder rung (``"ims"`` / ``"list"``); ``None`` on failure.
    rung: Optional[str] = None
    error_type: Optional[str] = None
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error_type is not None

    @property
    def degraded(self) -> bool:
        return self.rung is not None and self.rung != RUNG_IMS

    @property
    def signature(self) -> Optional[Signature]:
        """The loop's :func:`schedule_signature`, ``None`` when failed."""
        if self.failed:
            return None
        return schedule_signature(self.ii, self.times, self.chosen_opcodes)


@dataclass
class CorpusResult:
    """A whole suite's outcomes plus merged work accounting."""

    machine_name: str
    digest: str
    representation: str
    backend: Optional[str]
    processes: int
    outcomes: List[LoopOutcome] = field(default_factory=list)
    work: WorkCounters = field(default_factory=WorkCounters)

    @property
    def scheduled(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.failed)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.failed)

    @property
    def degraded(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.degraded)

    def signatures(self) -> List[Optional[Signature]]:
        """Per-loop schedule fingerprints, in suite order."""
        return [outcome.signature for outcome in self.outcomes]


class CorpusScheduler:
    """Schedule an entire loop suite in one pass.

    Parameters
    ----------
    machine:
        Machine description every loop is scheduled against.
    representation:
        ``"batch"`` (default: shared compilation + columnar plane) or
        any per-loop representation (``"compiled"`` etc.), which runs
        the exact PR-5 per-loop path under the same driver — the two
        modes are the corpus differential's legs.
    word_cycles / budget_ratio / max_ii_slack:
        Forwarded to :class:`IterativeModuloScheduler` per loop.
    policy:
        Optional :class:`~repro.resilience.fallback.FallbackPolicy`;
        when set, each loop runs the verified scheduling ladder instead
        of bare IMS.
    processes:
        ``0``/``1`` for serial; ``> 1`` fans out over a process pool
        (ignored, with a counter, when a shared budget is supplied —
        cooperative budgets do not cross process boundaries).
    """

    def __init__(
        self,
        machine: MachineDescription,
        representation: str = BATCH,
        word_cycles: int = 1,
        budget_ratio: int = 6,
        max_ii_slack: int = 64,
        policy: Optional["FallbackPolicy"] = None,
        processes: int = 0,
    ):
        self.machine = machine
        self.representation = representation
        self.word_cycles = word_cycles
        self.budget_ratio = budget_ratio
        self.max_ii_slack = max_ii_slack
        self.policy = policy
        self.processes = processes

    # ------------------------------------------------------------------
    def schedule_suite(
        self,
        graphs: Sequence[DependenceGraph],
        budget: Optional[Budget] = None,
    ) -> CorpusResult:
        """Schedule every graph; never raises for a single loop's sake.

        ``budget`` is one cooperative allowance for the whole corpus,
        checkpointed (and charged each loop's work units) at every loop
        boundary: a starved run keeps going, recording the remaining
        loops as failed outcomes.
        """
        digest = machine_digest(self.machine)
        backend = batch_backend() if self.representation == BATCH else None
        result = CorpusResult(
            machine_name=self.machine.name,
            digest=digest,
            representation=self.representation,
            backend=backend,
            processes=self.processes,
        )
        processes = self.processes
        if processes > 1 and budget is not None:
            obs.count("corpus.serialized_for_budget")
            processes = 0
        with obs.span(
            "corpus.schedule", obs.CAT_SCHED,
            machine=self.machine.name, loops=len(graphs),
            representation=self.representation,
            processes=processes,
        ) as span:
            if processes > 1 and len(graphs) > 1:
                self._schedule_parallel(graphs, processes, digest, result)
            else:
                self._schedule_serial(graphs, budget, result)
            span.set(
                scheduled=result.scheduled,
                failed=result.failed,
                degraded=result.degraded,
            )
        return result

    # ------------------------------------------------------------------
    def _loop_config(self) -> dict:
        return {
            "representation": self.representation,
            "word_cycles": self.word_cycles,
            "budget_ratio": self.budget_ratio,
            "max_ii_slack": self.max_ii_slack,
        }

    def _schedule_serial(
        self,
        graphs: Sequence[DependenceGraph],
        budget: Optional[Budget],
        result: CorpusResult,
    ) -> None:
        shared = _make_shared(self.machine, self.representation)
        factory = _make_factory(self.machine, shared, self._loop_config())
        pending_units = 0
        for index, graph in enumerate(graphs):
            try:
                if budget is not None:
                    # Loop-boundary checkpoint: charge the previous
                    # loop's work, and let starvation land *between*
                    # loops so each remaining loop fails cleanly.
                    budget.checkpoint(
                        "corpus", units=pending_units, progress=index
                    )
                    pending_units = 0
                outcome, work = _schedule_one(
                    self.machine, graph, factory, self.policy,
                    self._loop_config(), budget,
                )
            except (BudgetExceeded, ScheduleError) as exc:
                result.outcomes.append(LoopOutcome(
                    name=graph.name,
                    ops=graph.num_operations,
                    error_type=type(exc).__name__,
                    error=str(exc),
                ))
                continue
            result.outcomes.append(outcome)
            result.work.merge(work)
            pending_units = work.total_units

    def _schedule_parallel(
        self,
        graphs: Sequence[DependenceGraph],
        processes: int,
        digest: str,
        result: CorpusResult,
    ) -> None:
        """Fan the suite out over a process pool, sharded round-robin.

        Workers verify they rebuilt the *same* compilation (by machine
        digest) and suppress compile charging; the parent charges the
        kernel build once, so serial and parallel runs agree on every
        query-path currency.
        """
        processes = min(processes, len(graphs))
        shards = []
        for rank in range(processes):
            indices = list(range(rank, len(graphs), processes))
            shards.append((
                self.machine,
                [graphs[i] for i in indices],
                indices,
                digest,
                self.policy,
                self._loop_config(),
            ))
        with multiprocessing.Pool(processes) as pool:
            shard_results = pool.map(_schedule_shard, shards)
        slots: List[Optional[LoopOutcome]] = [None] * len(graphs)
        for indices, outcomes, work in shard_results:
            for index, outcome in zip(indices, outcomes):
                slots[index] = outcome
            result.work.merge(work)
        result.outcomes.extend(slots)
        if self.representation == BATCH:
            # Workers suppressed kernel charging; account it here, once.
            kernel = SharedCompilation(self.machine).kernel
            result.work.charge(COMPILE, kernel.build_units)


# ----------------------------------------------------------------------
# Per-loop machinery (module-level so multiprocessing can pickle it)
# ----------------------------------------------------------------------
def _make_shared(
    machine: MachineDescription,
    representation: str,
    charge_compile: bool = True,
) -> Optional[SharedCompilation]:
    if representation != BATCH:
        return None
    return SharedCompilation(machine, charge_compile=charge_compile)


def _make_factory(
    machine: MachineDescription,
    shared: Optional[SharedCompilation],
    config: dict,
) -> Optional[Callable[[Optional[int]], object]]:
    """The per-II query-module factory corpus loops share.

    ``None`` for per-loop representations — the schedulers' default
    construction *is* the per-loop path, byte-for-byte.
    """
    if shared is None:
        return None

    def factory(modulo: Optional[int]):
        return make_query_module(
            machine, BATCH, modulo=modulo, shared=shared
        )

    return factory


def _schedule_one(
    machine: MachineDescription,
    graph: DependenceGraph,
    factory: Optional[Callable[[Optional[int]], object]],
    policy: Optional["FallbackPolicy"],
    config: dict,
    budget: Optional[Budget],
) -> Tuple[LoopOutcome, WorkCounters]:
    """Schedule one loop; raises only what the caller records."""
    if policy is not None:
        from repro.resilience.fallback import schedule_with_fallback

        outcome = schedule_with_fallback(
            machine, graph, policy,
            representation=config["representation"],
            word_cycles=config["word_cycles"],
            query_factory=factory,
        )
        work = outcome.work if outcome.work is not None else WorkCounters()
        return LoopOutcome(
            name=graph.name,
            ops=graph.num_operations,
            ii=outcome.ii,
            mii=outcome.mii,
            times=dict(outcome.times),
            chosen_opcodes=dict(outcome.chosen_opcodes),
            rung=outcome.rung,
        ), work
    scheduler = IterativeModuloScheduler(
        machine,
        representation=config["representation"],
        word_cycles=config["word_cycles"],
        budget_ratio=config["budget_ratio"],
        max_ii_slack=config["max_ii_slack"],
        query_factory=factory,
    )
    result = scheduler.schedule(graph, budget=budget)
    return LoopOutcome(
        name=graph.name,
        ops=graph.num_operations,
        ii=result.ii,
        mii=result.mii,
        times=dict(result.times),
        chosen_opcodes=dict(result.chosen_opcodes),
        rung=RUNG_IMS,
    ), result.work


def _schedule_shard(payload) -> Tuple[List[int], List[LoopOutcome], WorkCounters]:
    """One worker's share of the corpus (top-level for pickling)."""
    machine, graphs, indices, digest, policy, config = payload
    shared = _make_shared(
        machine, config["representation"], charge_compile=False
    )
    if shared is not None and shared.digest != digest:
        raise RuntimeError(
            "corpus shard rebuilt a different machine: %s != %s"
            % (shared.digest, digest)
        )
    factory = _make_factory(machine, shared, config)
    outcomes: List[LoopOutcome] = []
    work = WorkCounters()
    for graph in graphs:
        try:
            outcome, loop_work = _schedule_one(
                machine, graph, factory, policy, config, None
            )
        except (BudgetExceeded, ScheduleError) as exc:
            outcomes.append(LoopOutcome(
                name=graph.name,
                ops=graph.num_operations,
                error_type=type(exc).__name__,
                error=str(exc),
            ))
            continue
        outcomes.append(outcome)
        work.merge(loop_work)
    return indices, outcomes, work


__all__ = [
    "CorpusResult",
    "CorpusScheduler",
    "LoopOutcome",
    "schedule_signature",
]
