"""Schedulers driving the contention query modules.

* :class:`IterativeModuloScheduler` — Rau's software-pipelining scheduler
  (the paper's evaluation vehicle): arbitrary operation order, bounded
  backtracking via ``assign&free``.
* :class:`OperationDrivenScheduler` — critical-path-first acyclic scheduler
  in the style of the Cydra 5 compiler, with block-boundary support.
"""

from repro.scheduler.bundle import Bundling, InstructionWord, bundle, issue_unit
from repro.scheduler.boundaries import (
    TraceScheduleResult,
    TraceScheduler,
    dangling_requirements,
)
from repro.scheduler.corpus import (
    CorpusResult,
    CorpusScheduler,
    LoopOutcome,
    schedule_signature,
)
from repro.scheduler.ddg import Dependence, DependenceGraph, Operation, chain
from repro.scheduler.exhaustive import (
    SearchBudgetExceeded,
    find_schedule_at_ii,
    is_ii_feasible,
)
from repro.scheduler.expand import ExpandedSchedule, expand
from repro.scheduler.lifetimes import (
    ValueLifetime,
    lifetime_report,
    max_live,
    register_requirement,
    value_lifetimes,
)
from repro.scheduler import serialize
from repro.scheduler.list_scheduler import (
    BlockScheduleResult,
    OperationDrivenScheduler,
)
from repro.scheduler.mii import (
    mii_attribution,
    min_feasible_ii_for_op,
    min_ii,
    rec_mii,
    res_mii,
    res_mii_packed,
)
from repro.scheduler.modulo import (
    AttemptStats,
    IterativeModuloScheduler,
    ModuloScheduleResult,
    compute_heights,
)

__all__ = [
    "AttemptStats",
    "BlockScheduleResult",
    "Bundling",
    "CorpusResult",
    "CorpusScheduler",
    "LoopOutcome",
    "schedule_signature",
    "InstructionWord",
    "Dependence",
    "DependenceGraph",
    "ExpandedSchedule",
    "expand",
    "find_schedule_at_ii",
    "is_ii_feasible",
    "issue_unit",
    "lifetime_report",
    "max_live",
    "register_requirement",
    "serialize",
    "value_lifetimes",
    "IterativeModuloScheduler",
    "ModuloScheduleResult",
    "SearchBudgetExceeded",
    "Operation",
    "TraceScheduleResult",
    "TraceScheduler",
    "ValueLifetime",
    "OperationDrivenScheduler",
    "bundle",
    "chain",
    "compute_heights",
    "dangling_requirements",
    "mii_attribution",
    "min_feasible_ii_for_op",
    "min_ii",
    "rec_mii",
    "res_mii",
    "res_mii_packed",
]
