"""Textual machine description language (parser and writer)."""

from repro.mdl.format import dump_file, dumps, load_file, loads

__all__ = ["dump_file", "dumps", "load_file", "loads"]
