"""Textual machine description language (parser and writer)."""

from repro.mdl.format import (
    RawMachine,
    RawOperation,
    RawUsage,
    dump_file,
    dumps,
    load_file,
    loads,
    parse,
    parse_file,
)

__all__ = [
    "RawMachine",
    "RawOperation",
    "RawUsage",
    "dump_file",
    "dumps",
    "load_file",
    "loads",
    "parse",
    "parse_file",
]
