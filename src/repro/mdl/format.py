"""A small machine description language (MDL).

The paper motivates expressing resource requirements "in terms close to
the actual hardware structure of the target machine" and generating the
compiler's internal description automatically.  This module provides the
textual interchange format for that workflow::

    # comment
    machine mips-r3000

    resources iu.if iu.rd iu.ex iu.multdiv

    operation int_alu
        iu.if: 0
        iu.rd: 1
        iu.ex: 2

    operation div
        iu.if: 0
        iu.rd: 1
        iu.multdiv: 2-35        # ranges expand to every cycle

    alternatives mov = mov.0 mov.1
    latency div 35          # optional result-latency metadata

Cycle lists accept integers, comma/space separation, and ``a-b`` ranges.
``loads`` / ``dumps`` round-trip every :class:`MachineDescription`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ParseError


def _parse_cycles(text: str, line_no: int) -> List[int]:
    cycles: List[int] = []
    for chunk in text.replace(",", " ").split():
        if "-" in chunk[1:]:  # allow a leading minus only as an error path
            first_text, _, last_text = chunk.partition("-")
            try:
                first, last = int(first_text), int(last_text)
            except ValueError:
                raise ParseError("bad cycle range %r" % chunk, line_no)
            if last < first:
                raise ParseError(
                    "descending cycle range %r" % chunk, line_no
                )
            cycles.extend(range(first, last + 1))
        else:
            try:
                cycles.append(int(chunk))
            except ValueError:
                raise ParseError("bad cycle %r" % chunk, line_no)
    if not cycles:
        raise ParseError("empty cycle list", line_no)
    return cycles


def loads(text: str) -> MachineDescription:
    """Parse MDL text into a :class:`MachineDescription`."""
    name: Optional[str] = None
    resources: Optional[List[str]] = None
    operations: Dict[str, Dict[str, List[int]]] = {}
    alternatives: Dict[str, List[str]] = {}
    latencies: Dict[str, int] = {}
    current_op: Optional[str] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        keyword = words[0]
        if keyword == "machine":
            if len(words) != 2:
                raise ParseError("machine takes one name", line_no)
            name = words[1]
            current_op = None
        elif keyword == "resources":
            if len(words) < 2:
                raise ParseError("resources needs at least one name", line_no)
            if resources is None:
                resources = []
            resources.extend(words[1:])
            current_op = None
        elif keyword == "operation":
            if len(words) != 2:
                raise ParseError("operation takes one name", line_no)
            op = words[1]
            if op in operations:
                raise ParseError("duplicate operation %r" % op, line_no)
            operations[op] = {}
            current_op = op
        elif keyword == "latency":
            if len(words) != 3:
                raise ParseError("latency takes 'latency <op> <n>'", line_no)
            try:
                latencies[words[1]] = int(words[2])
            except ValueError:
                raise ParseError("bad latency %r" % words[2], line_no)
            current_op = None
        elif keyword == "alternatives":
            rest = line[len("alternatives"):].strip()
            base, eq, variants = rest.partition("=")
            if not eq:
                raise ParseError("alternatives needs 'base = v1 v2 ...'", line_no)
            base = base.strip()
            names = variants.split()
            if not base or not names:
                raise ParseError("alternatives needs a base and variants", line_no)
            alternatives[base] = names
            current_op = None
        elif ":" in line:
            if current_op is None:
                raise ParseError("usage line outside an operation", line_no)
            resource, _, cycles_text = line.partition(":")
            resource = resource.strip()
            if not resource:
                raise ParseError("missing resource name", line_no)
            usage = operations[current_op].setdefault(resource, [])
            usage.extend(_parse_cycles(cycles_text, line_no))
        else:
            raise ParseError("unrecognized line %r" % line, line_no)

    if name is None:
        raise ParseError("missing 'machine <name>' header")
    if not operations:
        raise ParseError("no operations defined")
    try:
        return MachineDescription(
            name,
            operations,
            resources=resources,
            alternatives=alternatives,
            latencies=latencies,
        )
    except Exception as exc:
        raise ParseError("invalid machine: %s" % exc)


def _format_cycles(cycles: Tuple[int, ...]) -> str:
    """Render a sorted cycle tuple compactly, collapsing runs to ranges."""
    parts: List[str] = []
    run_start = run_end = None
    for cycle in cycles:
        if run_start is None:
            run_start = run_end = cycle
        elif cycle == run_end + 1:
            run_end = cycle
        else:
            parts.append(
                str(run_start)
                if run_start == run_end
                else "%d-%d" % (run_start, run_end)
            )
            run_start = run_end = cycle
    if run_start is not None:
        parts.append(
            str(run_start)
            if run_start == run_end
            else "%d-%d" % (run_start, run_end)
        )
    return " ".join(parts)


def dumps(machine: MachineDescription) -> str:
    """Serialize a machine description to MDL text (parse round-trips)."""
    lines = ["machine %s" % machine.name, ""]
    if machine.resources:
        lines.append("resources " + " ".join(machine.resources))
    for op, table in machine.items():
        lines.append("")
        lines.append("operation %s" % op)
        for resource in table.resources:
            cycles = tuple(sorted(table.usage_set(resource)))
            lines.append("    %s: %s" % (resource, _format_cycles(cycles)))
    groups = machine.alternatives
    if groups:
        lines.append("")
        for base in sorted(groups):
            lines.append(
                "alternatives %s = %s" % (base, " ".join(groups[base]))
            )
    latencies = machine.latencies
    if latencies:
        lines.append("")
        for op in sorted(latencies):
            lines.append("latency %s %d" % (op, latencies[op]))
    return "\n".join(lines) + "\n"


def load_file(path: str) -> MachineDescription:
    """Parse an MDL file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dump_file(machine: MachineDescription, path: str) -> None:
    """Write a machine description to an MDL file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(machine))
