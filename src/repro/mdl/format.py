"""A small machine description language (MDL).

The paper motivates expressing resource requirements "in terms close to
the actual hardware structure of the target machine" and generating the
compiler's internal description automatically.  This module provides the
textual interchange format for that workflow::

    # comment
    machine mips-r3000

    resources iu.if iu.rd iu.ex iu.multdiv

    operation int_alu
        iu.if: 0
        iu.rd: 1
        iu.ex: 2

    operation div
        iu.if: 0
        iu.rd: 1
        iu.multdiv: 2-35        # ranges expand to every cycle

    alternatives mov = mov.0 mov.1
    latency div 35          # optional result-latency metadata

Cycle lists accept integers, comma/space separation, and ``a-b`` ranges.
``loads`` / ``dumps`` round-trip every :class:`MachineDescription`.

Parsing happens in two layers so that static analysis can see *where*
every construct came from:

* :func:`parse` performs the lenient syntactic scan and returns a
  :class:`RawMachine` — the parsed structure annotated with 1-based
  source line numbers.  Only outright syntax errors raise here.
* :meth:`RawMachine.build` validates the structure semantically and
  produces the immutable :class:`MachineDescription`.  Semantic errors
  (negative cycles, undeclared resources, ...) raise :class:`ParseError`
  carrying the offending line and token.

``repro lint`` uses the raw layer to attach real source locations to its
diagnostics and to audit files that are syntactically fine but fail
semantic validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._atomic import atomic_write_text
from repro.core.machine import MachineDescription
from repro.errors import MachineDescriptionError, ParseError


def _parse_cycles(
    text: str, line_no: int, source: Optional[str]
) -> List[int]:
    cycles: List[int] = []
    for chunk in text.replace(",", " ").split():
        if "-" in chunk[1:]:  # allow a leading minus only as an error path
            first_text, _, last_text = chunk.partition("-")
            try:
                first, last = int(first_text), int(last_text)
            except ValueError:
                raise ParseError(
                    "bad cycle range %r" % chunk,
                    line_no,
                    token=chunk,
                    source=source,
                )
            if last < first:
                raise ParseError(
                    "descending cycle range %r" % chunk,
                    line_no,
                    token=chunk,
                    source=source,
                )
            cycles.extend(range(first, last + 1))
        else:
            try:
                cycles.append(int(chunk))
            except ValueError:
                raise ParseError(
                    "bad cycle %r" % chunk,
                    line_no,
                    token=chunk,
                    source=source,
                )
    if not cycles:
        raise ParseError("empty cycle list", line_no, source=source)
    return cycles


@dataclass(frozen=True)
class RawUsage:
    """One ``(resource, cycle)`` usage with its source line."""

    resource: str
    cycle: int
    line: int


@dataclass
class RawOperation:
    """A parsed ``operation`` block with source locations."""

    name: str
    line: int
    usages: List[RawUsage] = field(default_factory=list)

    def usage_map(self) -> Dict[str, List[int]]:
        """The ``{resource: cycles}`` mapping used to build tables."""
        mapping: Dict[str, List[int]] = {}
        for usage in self.usages:
            mapping.setdefault(usage.resource, []).append(usage.cycle)
        return mapping


@dataclass
class RawMachine:
    """The lenient parse of one MDL document.

    Everything the text declared, in order, with 1-based line numbers.
    :meth:`build` turns it into a validated :class:`MachineDescription`;
    the lookup helpers (:meth:`operation_line`, :meth:`resource_line`,
    :meth:`usage_line`) let diagnostics point back into the source.
    """

    name: Optional[str] = None
    name_line: Optional[int] = None
    source: Optional[str] = None
    #: (resource name, declaration line) in declaration order; empty when
    #: the document has no ``resources`` directive.
    resource_decls: List[Tuple[str, int]] = field(default_factory=list)
    operations: Dict[str, RawOperation] = field(default_factory=dict)
    #: base -> (variant names, directive line)
    alternatives: Dict[str, Tuple[List[str], int]] = field(
        default_factory=dict
    )
    #: operation -> (latency value, directive line)
    latencies: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Source-location lookups (used by ``repro lint``)
    # ------------------------------------------------------------------
    def operation_line(self, operation: str) -> Optional[int]:
        """Line of an ``operation`` header, or ``None`` if unknown."""
        raw = self.operations.get(operation)
        return raw.line if raw is not None else None

    def resource_line(self, resource: str) -> Optional[int]:
        """Line where a resource was declared or first used."""
        for name, line in self.resource_decls:
            if name == resource:
                return line
        for raw in self.operations.values():
            for usage in raw.usages:
                if usage.resource == resource:
                    return usage.line
        return None

    def usage_line(
        self, operation: str, resource: str, cycle: int
    ) -> Optional[int]:
        """Line of the usage declaring ``resource: cycle``, if any."""
        raw = self.operations.get(operation)
        if raw is None:
            return None
        for usage in raw.usages:
            if usage.resource == resource and usage.cycle == cycle:
                return usage.line
        return None

    def iter_usages(self):
        """Yield every ``(operation, resource, cycle, line)`` quadruple."""
        for op in sorted(self.operations):
            for usage in self.operations[op].usages:
                yield op, usage.resource, usage.cycle, usage.line

    # ------------------------------------------------------------------
    # Semantic validation
    # ------------------------------------------------------------------
    def build(self) -> MachineDescription:
        """Validate and materialize the :class:`MachineDescription`.

        Raises :class:`ParseError` with the offending line and token on
        any semantic defect.
        """
        if self.name is None:
            raise ParseError(
                "missing 'machine <name>' header", source=self.source
            )
        if not self.operations:
            raise ParseError("no operations defined", source=self.source)

        seen_decls: Dict[str, int] = {}
        for resource, line in self.resource_decls:
            if resource in seen_decls:
                raise ParseError(
                    "duplicate resource %r (first declared on line %d)"
                    % (resource, seen_decls[resource]),
                    line,
                    token=resource,
                    source=self.source,
                )
            seen_decls[resource] = line

        declared = set(seen_decls)
        for op, resource, cycle, line in self.iter_usages():
            if cycle < 0:
                raise ParseError(
                    "negative cycle %d for resource %r of operation %r"
                    % (cycle, resource, op),
                    line,
                    token=str(cycle),
                    source=self.source,
                )
            if declared and resource not in declared:
                raise ParseError(
                    "operation %r uses undeclared resource %r"
                    % (op, resource),
                    line,
                    token=resource,
                    source=self.source,
                )

        for base, (variants, line) in self.alternatives.items():
            for variant in variants:
                if variant not in self.operations:
                    raise ParseError(
                        "alternative %r of %r is not an operation"
                        % (variant, base),
                        line,
                        token=variant,
                        source=self.source,
                    )

        for op, (value, line) in self.latencies.items():
            if op not in self.operations and op not in self.alternatives:
                raise ParseError(
                    "latency given for unknown operation %r" % op,
                    line,
                    token=op,
                    source=self.source,
                )
            if value < 0:
                raise ParseError(
                    "latency of %r must be non-negative" % op,
                    line,
                    token=str(value),
                    source=self.source,
                )

        try:
            return MachineDescription(
                self.name,
                {op: raw.usage_map() for op, raw in self.operations.items()},
                resources=(
                    [name for name, _ in self.resource_decls]
                    if self.resource_decls
                    else None
                ),
                alternatives={
                    base: variants
                    for base, (variants, _) in self.alternatives.items()
                },
                latencies={
                    op: value for op, (value, _) in self.latencies.items()
                },
            )
        except MachineDescriptionError as exc:
            raise ParseError(
                "invalid machine: %s" % exc, source=self.source
            ) from exc


def parse(text: str, source: Optional[str] = None) -> RawMachine:
    """Scan MDL text into a :class:`RawMachine` (lenient, syntax only).

    ``source`` names the originating file for error messages and is
    recorded on the result.  Semantic validation is deferred to
    :meth:`RawMachine.build`.
    """
    raw = RawMachine(source=source)
    current_op: Optional[RawOperation] = None

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        keyword = words[0]
        if keyword == "machine":
            if len(words) != 2:
                raise ParseError(
                    "machine takes one name", line_no, source=source
                )
            raw.name = words[1]
            raw.name_line = line_no
            current_op = None
        elif keyword == "resources":
            if len(words) < 2:
                raise ParseError(
                    "resources needs at least one name",
                    line_no,
                    source=source,
                )
            raw.resource_decls.extend(
                (name, line_no) for name in words[1:]
            )
            current_op = None
        elif keyword == "operation":
            if len(words) != 2:
                raise ParseError(
                    "operation takes one name", line_no, source=source
                )
            op = words[1]
            if op in raw.operations:
                raise ParseError(
                    "duplicate operation %r (first defined on line %d)"
                    % (op, raw.operations[op].line),
                    line_no,
                    token=op,
                    source=source,
                )
            current_op = RawOperation(op, line_no)
            raw.operations[op] = current_op
        elif keyword == "latency":
            if len(words) != 3:
                raise ParseError(
                    "latency takes 'latency <op> <n>'", line_no,
                    source=source,
                )
            try:
                value = int(words[2])
            except ValueError:
                raise ParseError(
                    "bad latency %r" % words[2],
                    line_no,
                    token=words[2],
                    source=source,
                )
            raw.latencies[words[1]] = (value, line_no)
            current_op = None
        elif keyword == "alternatives":
            rest = line[len("alternatives"):].strip()
            base, eq, variants = rest.partition("=")
            if not eq:
                raise ParseError(
                    "alternatives needs 'base = v1 v2 ...'",
                    line_no,
                    source=source,
                )
            base = base.strip()
            names = variants.split()
            if not base or not names:
                raise ParseError(
                    "alternatives needs a base and variants",
                    line_no,
                    source=source,
                )
            raw.alternatives[base] = (names, line_no)
            current_op = None
        elif ":" in line:
            if current_op is None:
                raise ParseError(
                    "usage line outside an operation", line_no,
                    source=source,
                )
            resource, _, cycles_text = line.partition(":")
            resource = resource.strip()
            if not resource:
                raise ParseError(
                    "missing resource name", line_no, source=source
                )
            for cycle in _parse_cycles(cycles_text, line_no, source):
                current_op.usages.append(
                    RawUsage(resource, cycle, line_no)
                )
        else:
            raise ParseError(
                "unrecognized line %r" % line,
                line_no,
                token=keyword,
                source=source,
            )

    return raw


def parse_file(path: str) -> RawMachine:
    """Scan an MDL file from disk into a :class:`RawMachine`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), source=path)


def loads(text: str) -> MachineDescription:
    """Parse MDL text into a :class:`MachineDescription`."""
    return parse(text).build()


def _format_cycles(cycles: Tuple[int, ...]) -> str:
    """Render a sorted cycle tuple compactly, collapsing runs to ranges."""
    parts: List[str] = []
    run_start = run_end = None
    for cycle in cycles:
        if run_start is None:
            run_start = run_end = cycle
        elif cycle == run_end + 1:
            run_end = cycle
        else:
            parts.append(
                str(run_start)
                if run_start == run_end
                else "%d-%d" % (run_start, run_end)
            )
            run_start = run_end = cycle
    if run_start is not None:
        parts.append(
            str(run_start)
            if run_start == run_end
            else "%d-%d" % (run_start, run_end)
        )
    return " ".join(parts)


def dumps(machine: MachineDescription) -> str:
    """Serialize a machine description to MDL text (parse round-trips)."""
    lines = ["machine %s" % machine.name, ""]
    if machine.resources:
        lines.append("resources " + " ".join(machine.resources))
    for op, table in machine.items():
        lines.append("")
        lines.append("operation %s" % op)
        for resource in table.resources:
            cycles = tuple(sorted(table.usage_set(resource)))
            lines.append("    %s: %s" % (resource, _format_cycles(cycles)))
    groups = machine.alternatives
    if groups:
        lines.append("")
        for base in sorted(groups):
            lines.append(
                "alternatives %s = %s" % (base, " ".join(groups[base]))
            )
    latencies = machine.latencies
    if latencies:
        lines.append("")
        for op in sorted(latencies):
            lines.append("latency %s %d" % (op, latencies[op]))
    return "\n".join(lines) + "\n"


def load_file(path: str) -> MachineDescription:
    """Parse an MDL file from disk."""
    return parse_file(path).build()


def dump_file(machine: MachineDescription, path: str) -> None:
    """Write a machine description to an MDL file (atomically)."""
    atomic_write_text(path, dumps(machine))
