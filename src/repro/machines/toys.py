"""Small machines for tests, docs, and property-based generators.

These are classical pipelined-machine structures from the reservation
table literature (Davidson et al.; Patel & Davidson): a single
partially pipelined unit, a machine with alternatives, a machine whose
operations use no shared resources, and degenerate corner cases.
"""

from __future__ import annotations

from repro.core.machine import MachineBuilder, MachineDescription


def single_op_machine() -> MachineDescription:
    """One operation on a classic 3-stage non-linear pipeline.

    The reservation table is Davidson's textbook example shape: a unit
    that revisits its first stage, giving forbidden self-latencies beyond
    the simple occupancy bound.
    """
    return MachineDescription(
        "single-op",
        {"X": {"s0": [0, 4], "s1": [1, 3], "s2": [2]}},
    )


def independent_ops_machine() -> MachineDescription:
    """Two operations sharing no resources: only self-contentions exist."""
    return MachineDescription(
        "independent",
        {"A": {"left": [0]}, "B": {"right": [0]}},
    )


def empty_op_machine() -> MachineDescription:
    """A machine with a no-resource operation (e.g. a pseudo-op/nop)."""
    return MachineDescription(
        "with-nop",
        {"A": {"alu": [0, 1]}, "NOP": {}},
    )


def alternatives_machine() -> MachineDescription:
    """A dual-pipe machine where ``mov`` can use either pipe (paper §3)."""
    b = MachineBuilder("dual-pipe")
    b.operation("add", {"pipe0": [0], "wb": [1]})
    b.operation("mul", {"pipe1": [0, 1], "wb": [2]})
    b.operation_with_alternatives(
        "mov", [{"pipe0": [0]}, {"pipe1": [0]}]
    )
    return b.build()


def dense_conflict_machine() -> MachineDescription:
    """Three ops over one heavily shared bus — worst case for selection."""
    return MachineDescription(
        "dense",
        {
            "P": {"bus": [0, 2]},
            "Q": {"bus": [1, 4]},
            "R": {"bus": [0, 3, 5]},
        },
    )


def issue_limited_machine(width: int = 2, kinds: int = 3) -> MachineDescription:
    """A ``width``-issue VLIW with ``kinds`` op kinds per slot group.

    Operation ``op<k>_<s>`` issues on slot ``s`` and runs a ``k+1``-cycle
    unit, so kinds differ in self-forbidden latencies while slots differ
    in cross conflicts — a parametric family used by property tests.
    """
    ops = {}
    for s in range(width):
        for k in range(kinds):
            ops["op%d_%d" % (k, s)] = {
                "slot%d" % s: [0],
                "unit%d_%d" % (k, s): list(range(1, k + 2)),
            }
    return MachineDescription("vliw-%dx%d" % (width, kinds), ops)
