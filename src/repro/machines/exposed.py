"""Buffered-PU exposed-datapath machine description.

Models the *exposed datapath* architectures of Dahlem, Bhagyanath and
Schneider (ASP scheduling; see PAPERS.md): processing units with input
and output buffers connected by a small set of shared transport buses.
The compiler — not hardware interlocks — moves operands over a bus into
a PU's input buffer, the PU fires, and the result lands in its output
buffer until a later move drains it.  Every move claims a bus for one
cycle, so bus contention is the dominant scheduling constraint and every
operation class carries *alternative* usages, one per bus.

Structure per processing unit ``X``: an input-buffer write port
(``X.in``), the function unit proper (``X.fu``), and an output-buffer
slot (``X.out``).  The rows are deliberately physical — in/fu/out of a
pipelined PU generate overlapping forbidden latencies, exactly the
redundancy the paper's reduction removes.
"""

from __future__ import annotations

from repro.core.machine import MachineBuilder, MachineDescription


def _triggered(bus_cycles, pu_usages):
    """Variant usages: the trigger move on one bus plus the PU's rows."""
    usages = {bus: list(cycles) for bus, cycles in bus_cycles.items()}
    usages.update({res: list(cycles) for res, cycles in pu_usages.items()})
    return usages


def buffered_pu() -> MachineDescription:
    """A two-bus, three-PU buffered exposed-datapath machine.

    Processing units: a pipelined single-cycle ALU, a non-pipelined
    three-cycle multiply-accumulate unit, and a two-cycle load/store
    unit.  Every operation is triggered by a move over one of the two
    transport buses, so each class has one alternative per bus.
    """
    b = MachineBuilder("buffered-pu")
    b.resource(
        "bus.0", "bus.1",
        "alu.in", "alu.fu", "alu.out",
        "mac.in", "mac.fu", "mac.out",
        "lsu.in", "lsu.fu", "lsu.out",
    )

    # Trigger move into the ALU: operand over a bus at cycle 0, the unit
    # fires the next cycle, result buffered the cycle after.
    alu_rows = {"alu.in": [0], "alu.fu": [1], "alu.out": [2]}
    b.operation_with_alternatives(
        "alu_op",
        [
            _triggered({"bus.0": [0]}, alu_rows),
            _triggered({"bus.1": [0]}, alu_rows),
        ],
        latency=2,
    )

    # The MAC unit is not pipelined: the function unit stays busy for
    # three cycles, forbidding back-to-back MAC issue at distances 1-2.
    mac_rows = {"mac.in": [0], "mac.fu": [1, 2, 3], "mac.out": [4]}
    b.operation_with_alternatives(
        "mac_op",
        [
            _triggered({"bus.0": [0]}, mac_rows),
            _triggered({"bus.1": [0]}, mac_rows),
        ],
        latency=4,
    )

    # Loads flow through the LSU port for two cycles and buffer a result;
    # stores claim the port for a single cycle and produce nothing.
    load_rows = {"lsu.in": [0], "lsu.fu": [1, 2], "lsu.out": [3]}
    b.operation_with_alternatives(
        "load",
        [
            _triggered({"bus.0": [0]}, load_rows),
            _triggered({"bus.1": [0]}, load_rows),
        ],
        latency=3,
    )
    store_rows = {"lsu.in": [0], "lsu.fu": [1]}
    b.operation_with_alternatives(
        "store",
        [
            _triggered({"bus.0": [0]}, store_rows),
            _triggered({"bus.1": [0]}, store_rows),
        ],
        latency=1,
    )

    # A result move drains an output buffer over either bus; it touches
    # no PU rows, so it contends only for transport bandwidth.
    b.operation_with_alternatives(
        "mov",
        [{"bus.0": [0]}, {"bus.1": [0]}],
        latency=1,
    )
    return b.build()
