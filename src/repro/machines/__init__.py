"""Machine descriptions: the paper's example, its three study machines,
and small toy machines used by tests and documentation."""

from repro.machines.alpha import alpha21064
from repro.machines.clustered import clustered_vliw
from repro.machines.cydra5 import SUBSET_OPERATIONS, cydra5, cydra5_subset
from repro.machines.example import example_machine
from repro.machines.exposed import buffered_pu
from repro.machines.mips import mips_r3000
from repro.machines.playdoh import PLAYDOH_LATENCIES, PLAYDOH_MIX, playdoh
from repro.machines.toys import (
    alternatives_machine,
    dense_conflict_machine,
    empty_op_machine,
    independent_ops_machine,
    issue_limited_machine,
    single_op_machine,
)

#: The paper's three study machines, keyed by short name.
STUDY_MACHINES = {
    "cydra5": cydra5,
    "cydra5-subset": cydra5_subset,
    "alpha21064": alpha21064,
    "mips-r3000": mips_r3000,
}

#: Modern machine families grown out of the fuzzing corpus (ROADMAP
#: item 4): exposed-datapath and clustered-VLIW shapes beyond the
#: paper's three study machines.
CORPUS_MACHINES = {
    "buffered-pu": buffered_pu,
    "clustered-vliw": clustered_vliw,
}

__all__ = [
    "CORPUS_MACHINES",
    "PLAYDOH_LATENCIES",
    "PLAYDOH_MIX",
    "STUDY_MACHINES",
    "SUBSET_OPERATIONS",
    "alpha21064",
    "alternatives_machine",
    "buffered_pu",
    "clustered_vliw",
    "cydra5",
    "cydra5_subset",
    "dense_conflict_machine",
    "empty_op_machine",
    "example_machine",
    "independent_ops_machine",
    "issue_limited_machine",
    "mips_r3000",
    "playdoh",
    "single_op_machine",
]
