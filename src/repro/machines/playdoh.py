"""HPL PlayDoh-flavoured research VLIW (Kathail, Schlansker & Rau 1994).

The paper cites PlayDoh as one of the research architectures the IMPACT
compiler's query module targeted.  This model follows the PlayDoh
architecture specification's canonical configuration: a wide EPIC-style
machine with clustered integer units, separate float/memory/branch units,
and explicit inter-cluster communication — useful here as a *fourth*
study machine exercising wider issue than the Cydra 5.

Structure (one cluster pair):

* 4 integer ALUs (``i0..i3``), fully pipelined, latency 1;
* 2 floating units running FMA-style ops at latency 4 (pipelined) plus a
  non-pipelined divide (hold 16/30);
* 2 memory ports, load latency 8, stores buffered;
* 1 branch unit with 2 delay-slot fetch bubbles;
* a pair of cross-cluster move buses.

Integer ops are 4-way alternatives (any ALU), loads/stores 2-way,
floating ops 2-way — a heavier alternative mix than the Cydra 5, which
stresses ``check_with_alternatives`` policies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.machine import MachineBuilder, MachineDescription


def _span(resource: str, first: int, last: int) -> Dict[str, List[int]]:
    return {resource: list(range(first, last + 1))}


def _merge(*parts: Dict[str, List[int]]) -> Dict[str, List[int]]:
    accum: Dict[str, List[int]] = {}
    for part in parts:
        for resource, cycles in part.items():
            accum.setdefault(resource, []).extend(cycles)
    return accum


def _unit_variants(
    prefix: str, count: int, usages: Dict[str, List[int]]
) -> Sequence[Dict[str, List[int]]]:
    """One variant per unit instance; "@" resources are per-unit."""
    variants = []
    for index in range(count):
        unit = "%s%d" % (prefix, index)
        renamed = {"%s.issue" % unit: [0]}
        for resource, cycles in usages.items():
            if resource.startswith("@"):
                renamed["%s.%s" % (unit, resource[1:])] = list(cycles)
            else:
                renamed.setdefault(resource, []).extend(cycles)
        variants.append(renamed)
    return variants


#: Result latencies for PlayDoh workloads (base opcode names).
PLAYDOH_LATENCIES: Dict[str, int] = {
    "ialu": 1,
    "icmpp": 2,
    "ishift": 2,
    "fma": 4,
    "fdiv_s": 18,
    "fdiv_d": 32,
    "ld": 8,
    "st": 1,
    "pbr": 1,
    "br": 1,
    "xmove": 2,
}


def playdoh() -> MachineDescription:
    """The PlayDoh-flavoured wide VLIW."""
    b = MachineBuilder("playdoh")

    # Integer ALUs: 4-way alternatives, latency 1, shared predicate bus
    # for compare-to-predicate ops.
    b.operation_with_alternatives(
        "ialu", _unit_variants("i", 4, {"@ex": [1]})
    )
    b.operation_with_alternatives(
        "icmpp", _unit_variants("i", 4, {"@ex": [1], "pred.wbus": [2]})
    )
    # Shifts take two ALU passes on the lower pair only.
    b.operation_with_alternatives(
        "ishift", _unit_variants("i", 2, {"@ex": [1, 2]})
    )

    # Floating units: pipelined FMA at latency 4; non-pipelined divides.
    b.operation_with_alternatives(
        "fma",
        _unit_variants(
            "f", 2, {"@m1": [1], "@m2": [2], "@add": [3], "@wb": [4]}
        ),
    )
    b.operation_with_alternatives(
        "fdiv_s",
        _unit_variants(
            "f", 2, _merge(_span("@divider", 1, 16), {"@wb": [18]})
        ),
    )
    b.operation_with_alternatives(
        "fdiv_d",
        _unit_variants(
            "f", 2, _merge(_span("@divider", 1, 30), {"@wb": [32]})
        ),
    )

    # Memory ports: latency-8 loads, buffered stores, shared tag array.
    b.operation_with_alternatives(
        "ld",
        _unit_variants(
            "m", 2, {"@agen": [1], "mem.tags": [2], "@data": [7], "@wb": [8]}
        ),
    )
    b.operation_with_alternatives(
        "st",
        _unit_variants(
            "m", 2, {"@agen": [1], "mem.tags": [2], "@wbuf": [3, 4]}
        ),
    )

    # Branch unit: prepare-to-branch plus the actual branch, which
    # bubbles the fetch stream for two cycles.
    b.operation("pbr", {"br.issue": [0], "br.target": [1]})
    b.operation(
        "br", {"br.issue": [0], "br.target": [1], "fetch.stream": [2, 3]}
    )

    # Cross-cluster moves ride a pair of shared buses.
    b.operation_with_alternatives(
        "xmove", _unit_variants("x", 2, {"@bus": [1, 2]})
    )

    for op, value in PLAYDOH_LATENCIES.items():
        b.latency(op, value)
    return b.build()


#: Opcode mix for PlayDoh basic blocks / loops.
PLAYDOH_MIX = (
    ("ialu", 30),
    ("fma", 25),
    ("ld", 20),
    ("xmove", 8),
    ("icmpp", 7),
    ("ishift", 5),
    ("st", 5),
)
