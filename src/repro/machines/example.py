"""The paper's introductory example machine (Figure 1).

Two operations over five resources:

* ``A`` models a fully pipelined functional unit: one stage per cycle
  through resources ``r0``, ``r1``, ``r2``.
* ``B`` models a partially pipelined unit: it enters at ``r1``/``r2`` one
  cycle behind A's stages, holds a multiply stage ``r3`` for four
  consecutive cycles and a rounding stage ``r4`` for two.

The paper's reduction shrinks this description from 5 resources and 11
usages (3 for A, 8 for B) to 2 synthesized resources with 1 usage for A and
4 for B (Figure 1d).
"""

from __future__ import annotations

from repro.core.machine import MachineDescription


def example_machine() -> MachineDescription:
    """The hypothetical machine of the paper's Figure 1a."""
    return MachineDescription(
        "paper-example",
        operations={
            "A": {"r0": [0], "r1": [1], "r2": [2]},
            "B": {"r1": [0], "r2": [1], "r3": [2, 3, 4, 5], "r4": [6, 7]},
        },
        resources=["r0", "r1", "r2", "r3", "r4"],
    )
