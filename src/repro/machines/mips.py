"""MIPS R3000/R3010 machine description.

Reconstructed from the published pipeline structure (Kane & Heinrich,
*MIPS RISC Architecture*) in the spirit of the description Proebsting and
Fraser used (15 operation classes, 428 forbidden latencies, all < 34).  The
R3000 integer unit is a classic five-stage pipeline (IF, RD, EX, MEM, WB);
integer multiply/divide ties up the autonomous HI/LO unit for many cycles
(divide ~34, the source of the largest forbidden latencies); the R3010
floating-point coprocessor has a two-cycle adder, a partially pipelined
multiplier, and a long non-pipelined divider, all sharing one result bus.

The description is deliberately written *structurally*: each operation
reserves every pipeline stage it flows through plus a redundant unit-busy
interlock row — the manual-reduction-prone redundancy the paper's algorithm
removes automatically.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.machine import MachineDescription


def _span(resource: str, first: int, last: int) -> Dict[str, List[int]]:
    """Usage of ``resource`` for every cycle in [first, last]."""
    return {resource: list(range(first, last + 1))}


def _merge(*parts: Dict[str, List[int]]) -> Dict[str, List[int]]:
    accum: Dict[str, List[int]] = {}
    for part in parts:
        for resource, cycles in part.items():
            accum.setdefault(resource, []).extend(cycles)
    return accum


_FRONT = {"iu.istream": [0], "iu.if": [0], "iu.rd": [1]}


def mips_r3000() -> MachineDescription:
    """The 15-operation-class MIPS R3000/R3010 description."""
    ops: Dict[str, Dict[str, List[int]]] = {}

    # ------------------------------------------------------------------
    # Integer unit (R3000)
    # ------------------------------------------------------------------
    ops["int_alu"] = _merge(
        _FRONT, {"iu.ex": [2], "iu.mem": [3], "iu.wb": [4]}
    )
    ops["load"] = _merge(
        _FRONT,
        {"iu.ex": [2], "iu.mem": [3], "iu.dcache": [3], "iu.dbus": [4], "iu.wb": [4]},
    )
    # Stores drain through a one-deep write buffer: the cache is busy for
    # two cycles and the data bus is claimed alongside the load return path.
    ops["store"] = _merge(
        _FRONT, {"iu.ex": [2], "iu.mem": [3], "iu.dcache": [3, 4], "iu.dbus": [4]}
    )
    # Taken control flow re-steers the fetch stream, bubbling it one cycle
    # (two for conditional branches, whose target resolves in EX).
    ops["branch"] = _merge(_FRONT, {"iu.ex": [2], "iu.istream": [2]})
    ops["jump"] = _merge(_FRONT, {"iu.istream": [1]})
    # Integer multiply: HI/LO unit busy 10 cycles, mirrored by the
    # coprocessor-0 busy interlock row (redundant on purpose).
    ops["mult"] = _merge(
        _FRONT,
        {"iu.ex": [2]},
        _span("iu.multdiv", 2, 11),
        _span("iu.mdbusy", 2, 11),
    )
    # Integer divide: HI/LO unit busy 34 cycles -> forbidden latencies up
    # to 33, the maximum of this machine (matching "all < 34").
    ops["div"] = _merge(
        _FRONT,
        {"iu.ex": [2]},
        _span("iu.multdiv", 2, 35),
        _span("iu.mdbusy", 2, 35),
    )
    ops["mfhilo"] = _merge(
        _FRONT, {"iu.ex": [2], "iu.multdiv": [2], "iu.wb": [4]}
    )

    # ------------------------------------------------------------------
    # Floating-point coprocessor (R3010)
    # ------------------------------------------------------------------
    ops["fadd"] = _merge(
        _FRONT,
        {"fp.decode": [1]},
        _span("fp.add", 2, 3),
        _span("fp.busy", 2, 3),
        {"fp.bus": [4]},
    )
    ops["fmul_s"] = _merge(
        _FRONT,
        {"fp.decode": [1]},
        _span("fp.mul", 2, 3),
        {"fp.acc": [4]},
        _span("fp.busy", 2, 4),
        {"fp.bus": [6]},
    )
    ops["fmul_d"] = _merge(
        _FRONT,
        {"fp.decode": [1]},
        _span("fp.mul", 2, 4),
        {"fp.acc": [5]},
        _span("fp.busy", 2, 5),
        {"fp.bus": [7]},
    )
    ops["fdiv_s"] = _merge(
        _FRONT,
        {"fp.decode": [1]},
        _span("fp.div", 2, 12),
        _span("fp.busy", 2, 12),
        {"fp.bus": [14]},
    )
    ops["fdiv_d"] = _merge(
        _FRONT,
        {"fp.decode": [1]},
        _span("fp.div", 2, 19),
        _span("fp.busy", 2, 19),
        {"fp.bus": [21]},
    )
    ops["fcmp"] = _merge(
        _FRONT,
        {"fp.decode": [1], "fp.add": [2], "fp.cc": [3]},
    )
    ops["fmov"] = _merge(
        _FRONT,
        {"iu.ex": [2], "fp.decode": [1], "fp.bus": [3]},
    )

    resources = [
        "iu.istream",
        "iu.if",
        "iu.rd",
        "iu.ex",
        "iu.mem",
        "iu.dcache",
        "iu.dbus",
        "iu.wb",
        "iu.multdiv",
        "iu.mdbusy",
        "fp.decode",
        "fp.add",
        "fp.mul",
        "fp.acc",
        "fp.div",
        "fp.busy",
        "fp.cc",
        "fp.bus",
    ]
    latencies = {
        "int_alu": 1, "load": 2, "store": 1, "branch": 1, "jump": 1,
        "mult": 10, "div": 35, "mfhilo": 2,
        "fadd": 2, "fmul_s": 4, "fmul_d": 5, "fdiv_s": 12, "fdiv_d": 19,
        "fcmp": 2, "fmov": 2,
    }
    return MachineDescription(
        "mips-r3000", ops, resources=resources, latencies=latencies
    )
