"""DEC Alpha 21064 machine description.

Reconstructed from the DECchip 21064 hardware reference manual in the
spirit of the description Bala and Rubin used (12 operation classes, 293
forbidden latencies, all < 58).  The 21064 is dual-issue: one instruction
per cycle into the integer side (EBOX / ABOX / BBOX) and one into the
floating-point side (FBOX).  The FP add and multiply pipelines are fully
pipelined with 6-cycle latency; the divider is *not* pipelined and holds
for ~34 (single) or ~58 (double) cycles — the source of the machine's
largest forbidden latencies.  Divide results drain through the add
pipeline's final stage, so divides structurally hazard against adds but
not multiplies.  Integer multiply occupies a non-pipelined multiplier for
~19 cycles.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.machine import MachineDescription


def _span(resource: str, first: int, last: int) -> Dict[str, List[int]]:
    return {resource: list(range(first, last + 1))}


def _merge(*parts: Dict[str, List[int]]) -> Dict[str, List[int]]:
    accum: Dict[str, List[int]] = {}
    for part in parts:
        for resource, cycles in part.items():
            accum.setdefault(resource, []).extend(cycles)
    return accum


# Integer-side ops contend for the lower issue slot, FP ops for the
# upper; the fetch stream itself delivers both per cycle, so ``ib.istream``
# is claimed only by control flow, which bubbles it while re-steering.
_ILOWER = {"ib.lower": [0]}
_IUPPER = {"ib.upper": [0]}


def alpha21064() -> MachineDescription:
    """The 12-operation-class DEC Alpha 21064 description."""
    ops: Dict[str, Dict[str, List[int]]] = {}

    # ------------------------------------------------------------------
    # EBOX (integer execute)
    # ------------------------------------------------------------------
    ops["int_alu"] = _merge(
        _ILOWER, {"e.stage1": [1], "e.wport": [2]}
    )
    # The barrel shifter takes two passes for double-width shifts.
    ops["shift"] = _merge(
        _ILOWER, {"e.stage1": [1, 2], "e.shifter": [1, 2], "e.wport": [3]}
    )
    # Integer multiply occupies a non-pipelined multiplier ~19 cycles.
    ops["imul"] = _merge(
        _ILOWER,
        {"e.stage1": [1]},
        _span("e.imul", 1, 19),
        {"e.wport": [21]},
    )

    # ------------------------------------------------------------------
    # ABOX (load/store)
    # ------------------------------------------------------------------
    ops["load"] = _merge(
        _ILOWER,
        {"a.agen": [1], "a.dcache": [2], "a.dbus": [3], "e.wport": [3]},
    )
    ops["store"] = _merge(
        _ILOWER,
        {"a.agen": [1], "a.dcache": [2, 3], "a.wbuf": [3, 4]},
    )

    # ------------------------------------------------------------------
    # BBOX (control flow)
    # ------------------------------------------------------------------
    ops["branch"] = _merge(_ILOWER, {"b.cond": [1], "ib.istream": [1]})
    ops["jsr"] = _merge(_ILOWER, {"b.calc": [1], "ib.istream": [1, 2]})

    # ------------------------------------------------------------------
    # FBOX (floating point)
    # ------------------------------------------------------------------
    ops["fadd"] = _merge(
        _IUPPER,
        {"f.rport": [0], "f.add1": [1], "f.add2": [2], "f.add3": [3], "f.round": [4, 5],
         "f.wport": [6]},
    )
    ops["fmul"] = _merge(
        _IUPPER,
        {"f.rport": [0], "f.mul1": [1], "f.mul2": [2], "f.mul3": [3], "f.mround": [4, 5],
         "f.wport": [6]},
    )
    # Divides hold the non-pipelined divider, then retire through the add
    # pipeline's final stage and the FP write port.
    ops["fdiv_s"] = _merge(
        _IUPPER,
        {"f.rport": [0]},
        _span("f.div", 1, 30),
        {"f.add3": [31], "f.round": [32], "f.wport": [33]},
    )
    ops["fdiv_d"] = _merge(
        _IUPPER,
        {"f.rport": [0]},
        _span("f.div", 1, 58),
        {"f.add3": [59], "f.round": [60], "f.wport": [61]},
    )
    # FP-conditional branches read the FP register file, contending for
    # its read port with the FBOX ops issued the same cycle.
    ops["fbranch"] = _merge(_ILOWER, {"f.rport": [0], "f.cc": [1], "ib.istream": [1]})

    resources = [
        "ib.istream",
        "ib.lower",
        "ib.upper",
        "e.stage1",
        "e.shifter",
        "e.imul",
        "e.wport",
        "a.agen",
        "a.dcache",
        "a.dbus",
        "a.wbuf",
        "b.cond",
        "b.calc",
        "f.add1",
        "f.add2",
        "f.add3",
        "f.round",
        "f.mul1",
        "f.mul2",
        "f.mul3",
        "f.mround",
        "f.div",
        "f.wport",
        "f.cc",
        "f.rport",
    ]
    latencies = {
        "int_alu": 1, "shift": 2, "imul": 21, "load": 3, "store": 1,
        "branch": 1, "jsr": 1, "fadd": 6, "fmul": 6,
        "fdiv_s": 34, "fdiv_d": 63, "fbranch": 1,
    }
    return MachineDescription(
        "alpha-21064", ops, resources=resources, latencies=latencies
    )
