"""Clustered-VLIW machine description.

A two-cluster VLIW in the TI C6x / HP Lx mould: each cluster owns an
issue slot, an ALU, a memory port, and a register-file write port; the
clusters exchange values over a single shared crossbar.  Every symmetric
operation class is declared with one *alternative* per cluster, so the
scheduler's alternative-selection machinery (paper Section 3) decides
the cluster assignment, and the crossbar row makes cross-cluster copies
a first-class scheduling constraint.
"""

from __future__ import annotations

from repro.core.machine import MachineBuilder, MachineDescription


def _per_cluster(rows):
    """Expand ``{"alu": [...]}``-style rows to one variant per cluster."""
    variants = []
    for cluster in ("c0", "c1"):
        variants.append(
            {
                "%s.%s" % (cluster, unit): list(cycles)
                for unit, cycles in rows.items()
            }
        )
    return variants


def clustered_vliw() -> MachineDescription:
    """A two-cluster VLIW with a shared inter-cluster crossbar."""
    b = MachineBuilder("clustered-vliw")
    b.resource(
        "c0.issue", "c0.alu", "c0.mem", "c0.wb",
        "c1.issue", "c1.alu", "c1.mem", "c1.wb",
        "xbar",
    )

    b.operation_with_alternatives(
        "add",
        _per_cluster({"issue": [0], "alu": [0], "wb": [1]}),
        latency=1,
    )
    # The multiplier shares the cluster ALU and occupies it for two
    # cycles (partially pipelined), raising ResMII for multiply loops.
    b.operation_with_alternatives(
        "mul",
        _per_cluster({"issue": [0], "alu": [0, 1], "wb": [2]}),
        latency=2,
    )
    b.operation_with_alternatives(
        "load",
        _per_cluster({"issue": [0], "mem": [0, 1], "wb": [2]}),
        latency=2,
    )
    b.operation_with_alternatives(
        "store",
        _per_cluster({"issue": [0], "mem": [0]}),
        latency=1,
    )

    # Cross-cluster copy: issue on the source cluster, one crossbar beat,
    # write into the *other* cluster's register file.
    b.operation_with_alternatives(
        "xmov",
        [
            {"c0.issue": [0], "xbar": [1], "c1.wb": [2]},
            {"c1.issue": [0], "xbar": [1], "c0.wb": [2]},
        ],
        latency=2,
    )

    # Control flow lives on cluster 0 only: no alternatives.
    b.operation("branch", {"c0.issue": [0], "c0.alu": [0]}, latency=1)
    return b.build()
