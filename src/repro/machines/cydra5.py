"""Cydra 5 machine description (full model and benchmark subset).

The Cydra 5 numeric processor (Beck, Yen & Anderson; Dehnert & Towle) is a
VLIW with seven functional units: two memory ports, two address-generation
units, one floating-point adder, one floating-point multiplier, and one
branch unit.  Its Fortran77 compiler used a manually optimized description
with 56 resources and 52 operation classes producing 10223 forbidden
latencies (all < 41); the 1327-loop benchmark exercised a 12-class subset
(39 resources, 132 usages, 166 forbidden latencies, all < 21).

This reconstruction follows the same structure, at a somewhat smaller
scale (see EXPERIMENTS.md for the side-by-side accounting):

* duplicated memory and address units are exposed as *alternative
  operations* (``load_s.0`` issues on port 0, ``load_s.1`` on port 1) —
  in the paper's benchmark 21% of operations had exactly one alternative;
* memory has a long (~17 cycle) latency and returns data through a single
  crossbar that address traffic also crosses, generating the subset's
  large (but < 21) forbidden latencies;
* the adder unit runs integer, compare, shift, predicate and FP
  add/convert ops at different latencies through shared stages and buses;
* the multiplier unit runs multiplies plus the long non-pipelined divide,
  square-root and remainder ops that produce latencies up to 40;
* every unit carries redundant busy/predicate-port rows written close to
  the hardware — the redundancy the automated reduction removes;
* ``mov`` can execute on either the adder or the multiplier — the paper's
  example of alternatives beyond replicated hardware.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.machine import MachineBuilder, MachineDescription


def _span(resource: str, first: int, last: int) -> Dict[str, List[int]]:
    return {resource: list(range(first, last + 1))}


def _merge(*parts: Dict[str, List[int]]) -> Dict[str, List[int]]:
    accum: Dict[str, List[int]] = {}
    for part in parts:
        for resource, cycles in part.items():
            accum.setdefault(resource, []).extend(cycles)
    return accum


def _adder(usages: Dict[str, List[int]], hold: int = 1) -> Dict[str, List[int]]:
    """An op issued on the FP adder: issue slot, predicate read port, and a
    redundant unit-busy row spanning its occupancy."""
    return _merge(
        {"fa.issue": [0], "fa.prp": [0]},
        _span("fa.busy", 1, max(1, hold)),
        usages,
    )


def _multiplier(usages: Dict[str, List[int]], hold: int = 1) -> Dict[str, List[int]]:
    return _merge(
        {"fm.issue": [0], "fm.prp": [0]},
        _span("fm.busy", 1, max(1, hold)),
        usages,
    )


def _per_port(prefix: str, usages: Dict[str, List[int]]) -> Dict[str, List[int]]:
    """Rename "@name" resources to "<prefix>.name" (per-unit resources)."""
    renamed = {}
    for resource, cycles in usages.items():
        if resource.startswith("@"):
            renamed[prefix + "." + resource[1:]] = cycles
        else:
            renamed[resource] = cycles
    return renamed


def _mem_variants(usages: Dict[str, List[int]]) -> Sequence[Dict[str, List[int]]]:
    return [
        _merge({"m%d.issue" % port: [0]}, _per_port("m%d" % port, usages))
        for port in (0, 1)
    ]


def _addr_variants(usages: Dict[str, List[int]]) -> Sequence[Dict[str, List[int]]]:
    return [
        _merge({"a%d.issue" % unit: [0]}, _per_port("a%d" % unit, usages))
        for unit in (0, 1)
    ]


def cydra5() -> MachineDescription:
    """The full Cydra 5 description."""
    b = MachineBuilder("cydra5")

    # ------------------------------------------------------------------
    # Memory ports (alternatives: port 0 / port 1).  Loads return data at
    # cycle ~17 through the single shared crossbar; address-generation
    # traffic crosses the same crossbar at cycle 2, so loads and address
    # ops structurally hazard ~15 cycles apart.
    # ------------------------------------------------------------------
    # Loads flow through the port pipeline at rate 1 (each stage used for
    # a single cycle); stores enter the same stages at *different* offsets
    # and drive the port data bus at issue time, while loads drive it only
    # when data returns — the staggered shared stages produce the subset's
    # long cross-operation forbidden latencies (up to ~17 cycles) without
    # throttling port throughput.  Double-width ops hold stages two cycles.
    b.operation_with_alternatives(
        "load_s",
        _mem_variants(
            {"@mar": [1], "@ctl": [2], "@bank": [3], "@dbus": [16],
             "mem.xbar": [17], "rf.wm": [18]}
        ),
    )
    b.operation_with_alternatives(
        "load_d",
        _mem_variants(
            {"@mar": [1], "@ctl": [2], "@bank": [3, 4], "@dbus": [16, 17],
             "mem.xbar": [17, 18], "rf.wm": [18, 19]}
        ),
    )
    b.operation_with_alternatives(
        "store_s",
        _mem_variants(
            {"@dbus": [0], "@mar": [1], "@wbuf": [2], "@ctl": [4],
             "@bank": [6]}
        ),
    )
    b.operation_with_alternatives(
        "store_d",
        _mem_variants(
            {"@dbus": [0, 1], "@mar": [1], "@wbuf": [2, 3], "@ctl": [4],
             "@bank": [6, 7]}
        ),
    )

    # ------------------------------------------------------------------
    # Address generation units (alternatives: unit 0 / unit 1); generated
    # addresses are forwarded over the shared address bus to the ports.
    # ------------------------------------------------------------------
    b.operation_with_alternatives(
        "addr_gen", _addr_variants({"@alu": [1], "@bus": [2], "mem.abus": [2]})
    )
    b.operation_with_alternatives(
        "addr_inc", _addr_variants({"@alu": [1, 2], "@bus": [2], "mem.abus": [3]})
    )

    # ------------------------------------------------------------------
    # FP adder unit.
    # ------------------------------------------------------------------
    b.operation("iadd", _adder({"fa.s1": [1], "fa.busi": [1], "rf.wai": [2]}))
    b.operation("icmp", _adder({"fa.s1": [1], "pred.bus": [1]}))
    b.operation("pred_or", _adder({"fa.s1": [1], "pred.bus": [2]}))
    b.operation("ishift", _adder({"fa.sh": [1, 2], "fa.busi": [2], "rf.wai": [3]}, hold=2))
    b.operation(
        "extract", _adder({"fa.sh": [1], "fa.s1": [1], "fa.busi": [2], "rf.wai": [3]})
    )
    b.operation(
        "fadd_s",
        _adder({"fa.s1": [1], "fa.s2": [2], "fa.s3": [3], "fa.s4": [4],
                "fa.bus": [4], "rf.wa": [5]}),
    )
    b.operation(
        "fadd_d",
        _adder({"fa.s1": [1], "fa.s2": [2, 3], "fa.s3": [4], "fa.s4": [5],
                "fa.bus": [5], "rf.wa": [6]}, hold=2),
    )
    b.operation(
        "fminmax", _adder({"fa.s1": [1], "fa.s2": [2], "fa.bus": [2], "rf.wa": [3]})
    )
    b.operation("cvt_fx", _adder({"fa.s1": [1], "fa.s4": [2], "fa.busi": [2], "rf.wai": [3]}))
    b.operation("cvt_xf", _adder({"fa.s1": [1], "fa.s3": [2], "fa.busi": [2], "rf.wai": [3]}))
    b.operation(
        "cvt_fd",
        _adder({"fa.s1": [1], "fa.s2": [2], "fa.s4": [3], "fa.bus": [3], "rf.wa": [4]}),
    )
    b.operation(
        "fcmp_s",
        _adder({"fa.s1": [1], "fa.s2": [2], "fa.s3": [3], "pred.bus": [3]}),
    )
    b.operation(
        "fcmp_d",
        _adder({"fa.s1": [1], "fa.s2": [2, 3], "fa.s3": [4], "pred.bus": [4]},
               hold=2),
    )

    # ------------------------------------------------------------------
    # FP multiplier unit.  Divide, square root and remainder iterate on
    # the non-pipelined divide array: holds of 16..38 cycles generate the
    # machine's largest forbidden latencies (all < 41).
    # ------------------------------------------------------------------
    b.operation(
        "imul", _multiplier({"fm.s1": [1], "fm.s2": [2], "fm.bus": [3], "rf.wm": [4]})
    )
    b.operation(
        "fmul_s",
        _multiplier({"fm.s1": [1], "fm.s2": [2], "fm.acc": [3], "fm.bus": [4], "rf.wm": [5]}),
    )
    b.operation(
        "fmul_d",
        _multiplier(
            {"fm.s1": [1, 2], "fm.s2": [3], "fm.acc": [4], "fm.bus": [5],
             "rf.wm": [6]},
            hold=2,
        ),
    )
    b.operation(
        "div_s",
        _multiplier(
            _merge(_span("fm.div", 1, 16), {"fm.acc": [17], "fm.bus": [18], "rf.wm": [19]}),
            hold=16,
        ),
    )
    b.operation(
        "div_d",
        _multiplier(
            _merge(_span("fm.div", 1, 30), {"fm.acc": [31], "fm.bus": [32], "rf.wm": [33]}),
            hold=30,
        ),
    )
    b.operation(
        "rem_s",
        _multiplier(
            _merge(_span("fm.div", 1, 18), {"fm.bus": [20], "rf.wm": [21]}), hold=18
        ),
    )
    b.operation(
        "rem_d",
        _multiplier(
            _merge(_span("fm.div", 1, 32), {"fm.bus": [34], "rf.wm": [35]}), hold=32
        ),
    )
    b.operation(
        "sqrt_s",
        _multiplier(
            _merge(_span("fm.div", 1, 24), {"fm.bus": [26], "rf.wm": [27]}), hold=24
        ),
    )
    b.operation(
        "sqrt_d",
        _multiplier(
            _merge(_span("fm.div", 1, 38), {"fm.bus": [40]}), hold=38
        ),
    )

    # ------------------------------------------------------------------
    # Branch unit: branches, the brtop loop-control op, control-register
    # access (returning values over the adder's result bus) and predicate
    # clears (sharing the predicate write bus with the compares).
    # ------------------------------------------------------------------
    b.operation(
        "branch", {"br.issue": [0], "br.cond": [1], "br.istream": [2, 3]}
    )
    b.operation(
        "brtop",
        {"br.issue": [0], "br.cond": [1, 2], "br.icp": [2], "br.istream": [3]},
    )
    b.operation(
        "ldcr", {"br.issue": [0], "br.ccr": [1, 2], "fa.bus": [3]}
    )
    b.operation("pred_clear", {"br.issue": [0], "pred.bus": [1]})

    # ------------------------------------------------------------------
    # Register moves execute on either the adder or the multiplier —
    # alternatives beyond replicated hardware (paper Section 7).
    # ------------------------------------------------------------------
    b.operation_with_alternatives(
        "mov",
        [
            _adder({"fa.s1": [1], "fa.busi": [1], "rf.wai": [2]}),
            _multiplier({"fm.s1": [1], "fm.bus": [3], "rf.wm": [4]}),
        ],
    )

    # Result-latency metadata (consumed by workloads and schedulers;
    # resource semantics stay in the reservation tables above).
    for op, value in {
        "load_s": 18, "load_d": 19, "store_s": 1, "store_d": 1,
        "addr_gen": 2, "addr_inc": 2,
        "iadd": 2, "icmp": 2, "pred_or": 3, "ishift": 3, "extract": 3,
        "fadd_s": 5, "fadd_d": 6, "fminmax": 3, "cvt_fx": 3, "cvt_xf": 3,
        "cvt_fd": 4, "fcmp_s": 4, "fcmp_d": 5,
        "imul": 4, "fmul_s": 5, "fmul_d": 6,
        "div_s": 19, "div_d": 33, "rem_s": 21, "rem_d": 35,
        "sqrt_s": 27, "sqrt_d": 41,
        "branch": 1, "brtop": 1, "ldcr": 4, "pred_clear": 1, "mov": 2,
    }.items():
        b.latency(op, value)
    return b.build()


#: Operation classes exercised by the software-pipelined loop benchmark:
#: single-precision memory traffic, address arithmetic, FP add/multiply,
#: integer add/compare and loop control — no divide or square root, which
#: is why the subset's forbidden latencies all stay below 21.
SUBSET_OPERATIONS = (
    "load_s.0",
    "load_s.1",
    "store_s.0",
    "store_s.1",
    "addr_gen.0",
    "addr_gen.1",
    "iadd",
    "icmp",
    "fadd_s",
    "fmul_s",
    "mov.0",
    "brtop",
)


def cydra5_subset() -> MachineDescription:
    """The benchmark subset of the Cydra 5 description.

    Resources never used by the subset's operations are dropped, mirroring
    the paper's separate accounting for the subset (39 of 56 resources).
    """
    full = cydra5().with_operations(SUBSET_OPERATIONS, name="cydra5-subset")
    used = set()
    for _op, table in full.items():
        used.update(table.resources)
    resources = [r for r in full.resources if r in used]
    operations = {op: table for op, table in full.items()}
    return MachineDescription(
        "cydra5-subset", operations, resources=resources,
        alternatives=full.alternatives, latencies=full.latencies,
    )
